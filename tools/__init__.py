"""Repo tooling: static analysis (:mod:`tools.janalyze`) and doc checks."""
