"""``python -m tools.janalyze`` — the CI entry point."""

from tools.janalyze.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
