"""Findings, fingerprints and the baseline file.

A :class:`Finding` is one checker hit: a location plus a message.  Its
*fingerprint* deliberately excludes the line number — baselines must
survive unrelated edits that renumber a file — and hashes the checker
id, the repo-relative path, the enclosing symbol (``Class.method`` where
the checker knows it) and the message text.

The baseline file grandfathers known findings: entries are fingerprints
plus a human-readable echo of the finding they suppress.  ``--strict``
additionally fails when a baseline entry no longer matches anything —
a stale suppression is a lie about the codebase and must be pruned.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["Finding", "Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One static-analysis hit."""

    checker: str  # checker id, e.g. "lock-discipline"
    path: str  # repo-relative posix path
    line: int  # 1-based; 0 when the finding is file- or project-level
    message: str
    symbol: str = ""  # "Class.method" / "function" context when known

    @property
    def fingerprint(self) -> str:
        raw = "\x1f".join((self.checker, self.path, self.symbol, self.message))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        context = f" ({self.symbol})" if self.symbol else ""
        return f"{where}: [{self.checker}] {self.message}{context}"

    def to_wire(self) -> dict:
        wire = asdict(self)
        wire["fingerprint"] = self.fingerprint
        return wire


@dataclass
class Baseline:
    """Grandfathered fingerprints loaded from / saved to JSON."""

    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{payload.get('version')!r}"
            )
        return cls(
            entries={e["fingerprint"]: e for e in payload.get("findings", [])}
        )

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries={f.fingerprint: f.to_wire() for f in findings})

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": sorted(
                self.entries.values(),
                key=lambda e: (e.get("path", ""), e.get("fingerprint", "")),
            ),
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict]]:
        """``(new, suppressed, stale_entries)`` for one run's findings."""
        seen: set[str] = set()
        new, suppressed = [], []
        for finding in findings:
            if finding.fingerprint in self.entries:
                seen.add(finding.fingerprint)
                suppressed.append(finding)
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in seen
        ]
        return new, suppressed, stale
