"""janalyze — repo-specific static analysis for the janus codebase.

An AST-based, project-aware linter enforcing the cross-cutting
invariants the runtime tests only spot-check:

* **lock-discipline** — ``# guarded-by: <lock>`` attributes are only
  touched inside ``with self.<lock>:`` in their owning class.
* **determinism** — no wall-clock/entropy calls or set-order-dependent
  iteration in the byte-identity paths (``core/``, ``sat/``,
  ``engine/wire.py``, ``engine/signature.py``).
* **pickle-boundary** — every type reachable from the process-pool seam
  is module-level, slots-or-dataclass, and picklable.
* **wire-schema** — wire fields, ``EVENT_KINDS`` and error statuses are
  exhaustive and documented (absorbs ``tools/check_docs.py``).
* **broad-except** — ``except Exception`` requires a justified
  ``# janalyze: allow-broad-except <reason>`` pragma.
* **doc-links** — relative markdown links in ``docs/`` resolve.

Run it as ``python -m tools.janalyze`` or ``janus lint``; see
``docs/static-analysis.md`` for the checker catalog, pragma syntax and
baseline workflow.  Analysis is pure text + :mod:`ast`: project code is
never imported, so the tool runs with no PYTHONPATH and no third-party
dependencies.
"""

from tools.janalyze.findings import Baseline, Finding
from tools.janalyze.project import Project, SourceFile
from tools.janalyze.runner import find_repo_root, main, run

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "SourceFile",
    "find_repo_root",
    "main",
    "run",
]
