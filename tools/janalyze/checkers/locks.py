"""Lock discipline: guarded attributes must be accessed under their lock.

An attribute assignment annotated ``# guarded-by: <lock>`` (anywhere in
the class, conventionally in ``__init__``) declares the invariant: every
read or write of ``self.<attr>`` **in the owning class** must happen
lexically inside ``with self.<lock>:``.

Exemptions, in the order they are checked:

* ``__init__`` — construction happens-before sharing.
* Methods named ``*_locked`` — the repo convention for "caller holds the
  lock"; the checker additionally verifies such helpers are only invoked
  from lines inside a ``with`` block or from other exempt methods when
  they are called via ``self``.
* A ``# janalyze: holds-lock <lock>`` pragma on the ``def`` line.
* A ``# janalyze: allow-unlocked <reason>`` pragma on the access line.

Nested functions (closures) start with **no** locks held even when
defined inside a ``with`` block: a closure typically runs later, on
another thread, after the lock was dropped.

The analysis is lexical, not a happens-before proof — it cannot see
through aliasing (``lock = self._lock``) or cross-object access
(``other._attr``).  It is a tripwire for the common regression: touching
shared state in a new method and forgetting the lock.
"""

from __future__ import annotations

import ast
from typing import Optional

from tools.janalyze.checkers.base import (
    Checker,
    iter_class_functions,
    self_attr,
)
from tools.janalyze.findings import Finding
from tools.janalyze.project import Project, SourceFile

__all__ = ["LockDisciplineChecker"]

#: Sentinel "all locks held" for ``*_locked`` helpers.
ALL_LOCKS = "*"


def _guard_map(sf: SourceFile, cls: ast.ClassDef) -> dict[str, str]:
    """attr -> lock from ``# guarded-by:`` comments on self-assignments."""
    guards: dict[str, str] = {}
    for node in ast.walk(cls):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            attr = self_attr(target)
            if attr is None:
                continue
            for lineno in range(
                node.lineno, getattr(node, "end_lineno", node.lineno) + 1
            ):
                lock = sf.guards.get(lineno)
                if lock is not None:
                    guards[attr] = lock
    return guards


def _with_locks(stmt: ast.With, lock_names: set[str]) -> set[str]:
    """Locks among ``lock_names`` entered by this ``with`` statement."""
    held = set()
    for item in stmt.items:
        attr = self_attr(item.context_expr)
        if attr in lock_names:
            held.add(attr)
    return held


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "reads/writes of '# guarded-by:' annotated attributes must sit "
        "inside 'with self.<lock>:' in the owning class"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for sf in self.scoped_files(project, ["src/repro"]):
            if not sf.guards:
                continue  # no annotations, nothing to enforce
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_class(sf, node))
        return findings

    # ----------------------------------------------------------- class level
    def _check_class(
        self, sf: SourceFile, cls: ast.ClassDef
    ) -> list[Finding]:
        guards = _guard_map(sf, cls)
        if not guards:
            return []
        lock_names = set(guards.values())
        findings: list[Finding] = []
        for fn in iter_class_functions(cls):
            if fn.name == "__init__":
                continue
            held = self._initial_locks(sf, fn, lock_names)
            symbol = f"{cls.name}.{fn.name}"
            self._walk(sf, fn.body, guards, held, symbol, findings)
        return findings

    def _initial_locks(
        self,
        sf: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_names: set[str],
    ) -> set[str]:
        if fn.name.endswith("_locked"):
            return {ALL_LOCKS}
        pragma = sf.pragma_in_range(
            "holds-lock", fn.lineno, fn.body[0].lineno - 1 if fn.body else None
        )
        if pragma is not None:
            return {ALL_LOCKS} if pragma.reason == "" else {pragma.reason}
        return set()

    # ------------------------------------------------------- statement walk
    def _walk(
        self,
        sf: SourceFile,
        stmts: list[ast.stmt],
        guards: dict[str, str],
        held: set[str],
        symbol: str,
        findings: list[Finding],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A closure runs later: locks held at def time don't count.
                inner = self._initial_locks(sf, stmt, set(guards.values()))
                self._walk(
                    sf, stmt.body, guards, inner,
                    f"{symbol}.{stmt.name}", findings,
                )
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                entered = _with_locks(stmt, set(guards.values()))
                for item in stmt.items:
                    self._check_expr(
                        sf, item.context_expr, guards, held, symbol, findings,
                        skip_locks=True,
                    )
                self._walk(
                    sf, stmt.body, guards, held | entered, symbol, findings
                )
                continue
            # Generic statement: check embedded expressions, then recurse
            # into compound-statement bodies with the same held set.
            for expr in _statement_expressions(stmt):
                self._check_expr(sf, expr, guards, held, symbol, findings)
            for body in _statement_bodies(stmt):
                self._walk(sf, body, guards, held, symbol, findings)

    def _check_expr(
        self,
        sf: SourceFile,
        expr: ast.AST,
        guards: dict[str, str],
        held: set[str],
        symbol: str,
        findings: list[Finding],
        skip_locks: bool = False,
    ) -> None:
        for node in ast.walk(expr):
            attr = self_attr(node)
            if attr is None or attr not in guards:
                continue
            if skip_locks and attr in set(guards.values()):
                continue
            lock = guards[attr]
            if lock in held or ALL_LOCKS in held:
                continue
            if self._allowed(sf, node):
                continue
            findings.append(
                self.finding(
                    sf,
                    node,
                    f"access to '{attr}' (guarded-by: {lock}) outside "
                    f"'with self.{lock}:'",
                    symbol,
                )
            )

    def _allowed(self, sf: SourceFile, node: ast.AST) -> bool:
        # Accepted on the access line(s) or the comment block above.
        return (
            sf.pragma_for_line(
                "allow-unlocked",
                node.lineno,
                getattr(node, "end_lineno", node.lineno),
            )
            is not None
        )


def _statement_expressions(stmt: ast.stmt) -> list[ast.AST]:
    """The expression parts of a statement, excluding nested bodies."""
    exprs: list[ast.AST] = []
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            exprs.append(value)
        elif isinstance(value, list):
            exprs.extend(v for v in value if isinstance(v, ast.expr))
    return exprs


def _statement_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    """Nested statement lists of a compound statement."""
    bodies: list[list[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and value and isinstance(
            value[0], ast.stmt
        ):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies
