"""Determinism lint for the byte-identity paths.

The engine's core guarantee — serial, parallel, incremental and cached
runs produce byte-identical ``SynthesisResult`` wire forms — only holds
if the scoped modules never consult ambient nondeterminism.  This
checker forbids, in the configured paths:

* **wall-clock and entropy calls** — ``time.time`` / ``time.time_ns``,
  ``random.*``, ``numpy.random.*``, ``os.urandom``, ``secrets.*``,
  ``uuid.uuid1``/``uuid.uuid4``.  The sanctioned seams survive untouched:
  ``time.monotonic``/``time.perf_counter`` are allowed because they feed
  only the volatile ``wall_time`` field (excluded from byte-identity
  comparisons), and *referencing* a forbidden name without calling it —
  e.g. a ``now=time.time`` injection parameter — is fine because the
  caller controls the injection.
* **set iteration into serialization** — iterating a set expression
  (set literal, set comprehension, ``set(...)``/``frozenset(...)`` call)
  in a ``for`` loop, comprehension, or ``list``/``tuple``/``".join"``
  conversion.  Set order is salted per process; sort first.

``# janalyze: allow-determinism <reason>`` on the line suppresses a hit.
"""

from __future__ import annotations

import ast
from typing import Optional

from tools.janalyze.checkers.base import Checker, dotted_name, import_aliases
from tools.janalyze.findings import Finding
from tools.janalyze.project import Project, SourceFile

__all__ = ["DeterminismChecker"]

DEFAULT_PATHS = [
    "src/repro/core",
    "src/repro/sat",
    "src/repro/engine/wire.py",
    "src/repro/engine/signature.py",
    "src/repro/gen",
]

#: Exact dotted callables that inject wall-clock time or entropy.
FORBIDDEN_CALLS = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Any call under these prefixes is forbidden.
FORBIDDEN_PREFIXES = ("random.", "secrets.", "numpy.random.")

#: Monotonic timers are sanctioned: they feed only the volatile
#: ``wall_time`` field, which byte-identity comparisons exclude.
ALLOWED_CALLS = {"time.monotonic", "time.perf_counter"}

#: RNG constructors that are fine *when seeded*: the generators in
#: ``repro.gen`` build their streams from explicit seed tuples, which is
#: the whole reproducibility contract.  Called with no arguments they
#: fall back to OS entropy and are treated like any other entropy call.
SEEDED_CONSTRUCTORS = {"random.Random", "numpy.random.default_rng"}


def _is_set_expr(node: ast.AST, aliases: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "no wall-clock/entropy calls or set-order-dependent iteration in "
        "the byte-identity paths"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        cfg = self.config(project)
        forbidden = set(cfg.get("forbidden_calls", FORBIDDEN_CALLS))
        prefixes = tuple(cfg.get("forbidden_prefixes", FORBIDDEN_PREFIXES))
        allowed = set(cfg.get("allowed_calls", ALLOWED_CALLS))
        seeded = set(cfg.get("seeded_constructors", SEEDED_CONSTRUCTORS))
        for sf in self.scoped_files(project, DEFAULT_PATHS):
            aliases = import_aliases(sf.tree)
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.Call):
                    hit = self._forbidden_call(
                        node, aliases, forbidden, prefixes, allowed, seeded
                    )
                    if hit and not self._allowed(sf, node):
                        name, unseeded = hit
                        message = (
                            f"unseeded {name}() falls back to OS entropy "
                            "— pass an explicit seed"
                            if unseeded
                            else f"call to {name}() injects nondeterminism "
                            "into a byte-identity path"
                        )
                        findings.append(self.finding(sf, node, message))
                for iter_node, how in self._set_iterations(node, aliases):
                    if not self._allowed(sf, iter_node):
                        findings.append(
                            self.finding(
                                sf,
                                iter_node,
                                f"{how} iterates a set — order is salted "
                                "per process; sort before iterating",
                            )
                        )
        return findings

    # -------------------------------------------------------------- helpers
    def _forbidden_call(
        self,
        node: ast.Call,
        aliases: dict[str, str],
        forbidden: set[str],
        prefixes: tuple[str, ...],
        allowed: set[str],
        seeded: set[str] = frozenset(),
    ) -> Optional[tuple[str, bool]]:
        """The resolved forbidden name and whether it was an *unseeded*
        RNG constructor, or ``None`` when the call is fine."""
        name = dotted_name(node.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        resolved = aliases.get(head, head) + ("." + rest if rest else "")
        if resolved in allowed:
            return None
        # Seeded-RNG constructors are checked before the prefixes that
        # would otherwise swallow them: with any argument the caller
        # injected the seed, without one the RNG seeds from OS entropy.
        if resolved in seeded:
            if node.args or node.keywords:
                return None
            return resolved, True
        if resolved in forbidden:
            return resolved, False
        if resolved.startswith(prefixes):
            return resolved, False
        return None

    def _set_iterations(
        self, node: ast.AST, aliases: dict[str, str]
    ) -> list[tuple[ast.AST, str]]:
        hits: list[tuple[ast.AST, str]] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, aliases):
                hits.append((node.iter, "for loop"))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, aliases):
                    hits.append((gen.iter, "comprehension"))
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            is_join = isinstance(node.func, ast.Attribute) and (
                node.func.attr == "join"
            )
            if name in ("list", "tuple") or is_join:
                for arg in node.args:
                    if _is_set_expr(arg, aliases):
                        label = "join" if is_join else name
                        hits.append((arg, f"{label}() conversion"))
        return hits

    def _allowed(self, sf: SourceFile, node: ast.AST) -> bool:
        # Accepted on the statement's line(s) or the comment block above.
        return (
            sf.pragma_for_line(
                "allow-determinism",
                node.lineno,
                getattr(node, "end_lineno", node.lineno),
            )
            is not None
        )
