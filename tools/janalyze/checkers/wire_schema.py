"""Wire-schema exhaustiveness: code and docs must agree on the schema.

This generalizes the field-sync pass that used to live in
``tools/check_docs.py`` (which now delegates here) and adds the coverage
checks the ad-hoc script never had:

1. **Field sync** — every field name re-derived from the wire sources
   (dict literals in ``engine/wire.py``, ``to_wire`` methods in
   ``api/schema.py``, the event dataclasses, ``EngineStats``) must be
   mentioned in ``docs/wire-schema.md``.
2. **EVENT_KINDS exhaustiveness** — every ``EngineEvent`` subclass in
   ``engine/events.py`` must be registered in ``EVENT_KINDS``; every
   registered tag must be documented; no event class may declare a field
   named ``event`` (it would collide with the wire tag injected by
   ``event_to_wire`` and break ``event_from_wire`` round-trips).
3. **Error-envelope statuses** — every HTTP status produced by
   ``server/protocol.py`` (``status_for_exception`` returns) and
   ``server/core.py``/``server/app.py`` (``http_status`` assignments)
   must appear in ``docs/server.md``.

All sources are parsed with :mod:`ast` — never imported — so the check
needs no PYTHONPATH and cannot be fooled by import-time side effects.
"""

from __future__ import annotations

import ast
import re

from tools.janalyze.checkers.base import Checker
from tools.janalyze.findings import Finding
from tools.janalyze.project import Project

__all__ = ["WireSchemaChecker", "expected_fields"]

WIRE = "src/repro/engine/wire.py"
SCHEMA = "src/repro/api/schema.py"
EVENTS = "src/repro/engine/events.py"
PARALLEL = "src/repro/engine/parallel.py"
PROTOCOL = "src/repro/server/protocol.py"
APP = "src/repro/server/app.py"
CORE = "src/repro/server/core.py"
WIRE_DOC = "docs/wire-schema.md"
SERVER_DOC = "docs/server.md"

EVENT_BASE = "EngineEvent"


# --------------------------------------------------------- field harvesting
def _dict_keys_in_function(tree: ast.AST, function: str) -> set[str]:
    """String keys of every dict literal inside one module-level function."""
    keys: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == function:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    for key in sub.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.add(key.value)
    return keys


def _method_dict_keys(tree: ast.AST, cls: str, method: str) -> set[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls:
            return _dict_keys_in_function(node, method)
    return set()


def _dataclass_fields(tree: ast.AST, cls: str) -> set[str]:
    fields: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls:
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.add(stmt.target.id)
    return fields


def _event_classes(tree: ast.Module) -> dict[str, set[str]]:
    """``{class name: field names}`` for every EngineEvent subclass."""
    classes: dict[str, set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name == EVENT_BASE:
            continue
        bases = {
            base.id for base in node.bases if isinstance(base, ast.Name)
        }
        if EVENT_BASE in bases:
            classes[node.name] = _dataclass_fields(tree, node.name)
    return classes


def _event_kinds(tree: ast.Module) -> dict[str, str]:
    """``{wire tag: class name}`` from the EVENT_KINDS dict literal."""
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == "EVENT_KINDS"
            and isinstance(value, ast.Dict)
        ):
            kinds: dict[str, str] = {}
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(
                    val, ast.Name
                ):
                    kinds[key.value] = val.id
            return kinds
    return {}


def expected_fields(project: Project) -> dict[str, set[str]]:
    """``{source label: field names}`` re-derived from the code.

    The public shape ``tools/check_docs.py`` historically exposed; kept
    importable for the shim and the tests.
    """
    wire = project.source(WIRE).tree
    schema = project.source(SCHEMA).tree
    events = project.source(EVENTS).tree
    parallel = project.source(PARALLEL).tree

    event_fields: set[str] = _dataclass_fields(events, EVENT_BASE)
    for fields in _event_classes(events).values():
        event_fields |= fields

    return {
        f"{WIRE} attempt_to_wire": _dict_keys_in_function(
            wire, "attempt_to_wire"
        ),
        f"{WIRE} assignment_to_wire": _dict_keys_in_function(
            wire, "assignment_to_wire"
        ),
        f"{WIRE} spec_snapshot": _dict_keys_in_function(wire, "spec_snapshot"),
        f"{WIRE} solver_config_to_wire": _dict_keys_in_function(
            wire, "solver_config_to_wire"
        ),
        f"{SCHEMA} RequestOptions.to_wire": _method_dict_keys(
            schema, "RequestOptions", "to_wire"
        ),
        f"{SCHEMA} SynthesisRequest.to_wire": _method_dict_keys(
            schema, "SynthesisRequest", "to_wire"
        ),
        f"{SCHEMA} SynthesisResponse.to_wire": _method_dict_keys(
            schema, "SynthesisResponse", "to_wire"
        ),
        f"{SCHEMA} BatchRequest.to_wire": _method_dict_keys(
            schema, "BatchRequest", "to_wire"
        ),
        f"{SCHEMA} BatchResponse.to_wire": _method_dict_keys(
            schema, "BatchResponse", "to_wire"
        ),
        f"{EVENTS} EVENT_KINDS": set(_event_kinds(events)),
        f"{EVENTS} event fields": event_fields,
        f"{PARALLEL} EngineStats": _dataclass_fields(parallel, "EngineStats"),
    }


def _status_literals(tree: ast.Module) -> set[int]:
    """HTTP statuses a server module produces.

    ``return <int>`` inside ``status_for_exception`` plus every
    ``http_status = <int>`` class attribute (the routing-error classes).
    """
    statuses: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and (
            node.name == "status_for_exception"
        ):
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Return)
                    and isinstance(sub.value, ast.Constant)
                    and isinstance(sub.value.value, int)
                ):
                    statuses.add(sub.value.value)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "http_status"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    statuses.add(node.value.value)
    return statuses


class WireSchemaChecker(Checker):
    name = "wire-schema"
    description = (
        "wire fields, EVENT_KINDS and error statuses must be exhaustive "
        "and documented"
    )

    def check(self, project: Project) -> list[Finding]:
        missing = [
            rel
            for rel in (WIRE, SCHEMA, EVENTS, PARALLEL, WIRE_DOC)
            if not project.exists(rel)
        ]
        if missing:
            return [
                Finding(
                    self.name, rel, 0,
                    "wire-schema source missing — update tools/janalyze "
                    "config if it moved",
                )
                for rel in missing
            ]
        findings: list[Finding] = []
        findings.extend(self._check_field_sync(project))
        findings.extend(self._check_event_kinds(project))
        findings.extend(self._check_statuses(project))
        return findings

    # ----------------------------------------------------------- field sync
    def _check_field_sync(self, project: Project) -> list[Finding]:
        doc = project.read(WIRE_DOC)
        # Whole-word harvest over the page (tables, prose and JSON
        # examples alike): a field counts as documented when its exact
        # name appears anywhere.  The gate is "nobody adds a wire field
        # without touching the doc", not prose quality.
        documented = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", doc))
        findings = []
        for source, fields in sorted(expected_fields(project).items()):
            if not fields:
                findings.append(
                    Finding(
                        self.name, WIRE_DOC, 0,
                        f"found no fields in {source} — the checker's "
                        "parser is out of date",
                    )
                )
                continue
            for field in sorted(fields):
                if field not in documented:
                    findings.append(
                        Finding(
                            self.name, WIRE_DOC, 0,
                            f"{source} field {field!r} is not documented "
                            f"in {WIRE_DOC}",
                        )
                    )
        return findings

    # ---------------------------------------------------------- EVENT_KINDS
    def _check_event_kinds(self, project: Project) -> list[Finding]:
        sf = project.source(EVENTS)
        tree = sf.tree
        classes = _event_classes(tree)
        kinds = _event_kinds(tree)
        registered = set(kinds.values())
        doc_words = set(
            re.findall(r"[A-Za-z_][A-Za-z0-9_]*", project.read(WIRE_DOC))
        )
        findings: list[Finding] = []
        for cls_name in sorted(classes):
            if cls_name not in registered:
                findings.append(
                    Finding(
                        self.name, EVENTS, 0,
                        f"event class {cls_name} is not registered in "
                        "EVENT_KINDS — it cannot cross the wire",
                        symbol=cls_name,
                    )
                )
            if "event" in classes[cls_name]:
                findings.append(
                    Finding(
                        self.name, EVENTS, 0,
                        f"event class {cls_name} declares a field named "
                        "'event' — collides with the wire tag and breaks "
                        "event_to_wire/event_from_wire round-trips",
                        symbol=cls_name,
                    )
                )
        for tag, cls_name in sorted(kinds.items()):
            if cls_name not in classes:
                findings.append(
                    Finding(
                        self.name, EVENTS, 0,
                        f"EVENT_KINDS tag {tag!r} maps to {cls_name}, "
                        "which is not an EngineEvent subclass",
                    )
                )
            if tag not in doc_words:
                findings.append(
                    Finding(
                        self.name, WIRE_DOC, 0,
                        f"EVENT_KINDS tag {tag!r} is not documented in "
                        f"{WIRE_DOC}",
                    )
                )
        return findings

    # -------------------------------------------------------- error statuses
    def _check_statuses(self, project: Project) -> list[Finding]:
        statuses: set[int] = set()
        for rel in (PROTOCOL, APP, CORE):
            if project.exists(rel):
                statuses |= _status_literals(project.source(rel).tree)
        if not statuses or not project.exists(SERVER_DOC):
            return []  # no server layer in this tree (fixture projects)
        documented = set(
            int(m) for m in re.findall(r"\b[1-5]\d\d\b", project.read(SERVER_DOC))
        )
        return [
            Finding(
                self.name, SERVER_DOC, 0,
                f"error status {status} produced by the server is not "
                f"documented in {SERVER_DOC}",
            )
            for status in sorted(statuses - documented)
        ]
