"""Broad-except audit: ``except Exception`` needs a justified pragma.

Swallowing ``Exception`` (or everything, with a bare ``except:``) hides
bugs in exactly the code this repo stakes its correctness on — silent
fallbacks in the byte-identity paths would *mask* divergence instead of
surfacing it.  Each broad handler must either narrow its exception list
or carry ``# janalyze: allow-broad-except <reason>`` on the ``except``
line; a pragma without a reason is itself a finding.

``except BaseException`` is treated the same (it is broader still); a
re-``raise`` inside the handler body exempts the site, since the
exception keeps propagating.
"""

from __future__ import annotations

import ast

from tools.janalyze.checkers.base import Checker
from tools.janalyze.findings import Finding
from tools.janalyze.project import Project

__all__ = ["BroadExceptChecker"]

BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    if isinstance(handler.type, ast.Name):
        return handler.type.id in BROAD_NAMES
    if isinstance(handler.type, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in BROAD_NAMES
            for el in handler.type.elts
        )
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises the caught exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


class BroadExceptChecker(Checker):
    name = "broad-except"
    description = (
        "'except Exception' requires '# janalyze: allow-broad-except "
        "<reason>' (or a narrower exception list)"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for sf in self.scoped_files(project, ["src/repro"]):
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _is_broad(node) or _reraises(node):
                    continue
                # The pragma may sit on the except line or in the comment
                # block above it (long justifications read better there).
                pragma = sf.pragma_for_line(
                    "allow-broad-except", node.lineno
                )
                if pragma is None:
                    what = (
                        "bare 'except:'"
                        if node.type is None
                        else "'except Exception'"
                    )
                    findings.append(
                        self.finding(
                            sf, node,
                            f"{what} without '# janalyze: "
                            "allow-broad-except <reason>' — narrow it or "
                            "justify it",
                        )
                    )
                elif not pragma.reason:
                    findings.append(
                        self.finding(
                            sf, node,
                            "allow-broad-except pragma has no reason — "
                            "an unexplained suppression is not a "
                            "justification",
                        )
                    )
        return findings
