"""Pickle-boundary audit for types crossing the process pool.

The engine ships work to ``ProcessPoolExecutor`` workers as dataclass
instances (``LmRequest``, ``SolveRequest``, bound-request tuples); every
type reachable from those payloads must survive pickling.  Starting from
the configured seam roots, the checker resolves field-annotation types
transitively through the project's own classes and verifies each reached
class is

* **module-level** — nested classes pickle by qualname and fail at the
  worker,
* **slots-or-dataclass** — the repo's convention for value types with a
  stable, reviewable pickled form, and
* **free of unpicklables** — no ``lambda`` defaults, no fields annotated
  as callables (``Callable``, function types) or open handles
  (``IO``/``TextIO``/``BinaryIO``/file objects), no locks/conditions
  (``threading.*``) in the payload.

Annotation resolution is name-based: builtin containers and typing forms
are traversed into, unknown external names are ignored, and any name
matching a project class continues the walk.  ``# janalyze: allow-pickle
<reason>`` on the ``class`` line exempts one class.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from tools.janalyze.checkers.base import Checker, dotted_name
from tools.janalyze.findings import Finding
from tools.janalyze.project import Project, SourceFile

__all__ = ["PickleBoundaryChecker"]

DEFAULT_ROOTS = [
    "src/repro/engine/worker.py:LmRequest",
    "src/repro/sat/solver.py:SolveRequest",
]

DEFAULT_SCAN_PATHS = ["src/repro"]

#: Annotation names that mark a field unpicklable at the pool boundary.
UNPICKLABLE_NAMES = {
    "Callable",
    "IO",
    "TextIO",
    "BinaryIO",
    "FunctionType",
    "LambdaType",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Queue",
}

#: Names never followed into (builtins / typing plumbing).
_SKIP_NAMES = {
    "int", "float", "str", "bool", "bytes", "complex", "object", "None",
    "list", "tuple", "dict", "set", "frozenset",
    "Optional", "Union", "Any", "Sequence", "Mapping", "Iterable",
    "Iterator", "ClassVar", "Final", "Literal", "Annotated", "type",
}


@dataclass
class _ClassInfo:
    sf: SourceFile
    node: ast.ClassDef
    module_level: bool


class PickleBoundaryChecker(Checker):
    name = "pickle-boundary"
    description = (
        "types crossing the process-pool seam must be module-level, "
        "slots-or-dataclass, and free of lambdas/callables/handles"
    )

    def check(self, project: Project) -> list[Finding]:
        cfg = self.config(project)
        roots = cfg.get("roots", DEFAULT_ROOTS)
        scan_paths = cfg.get("paths", DEFAULT_SCAN_PATHS)
        index = self._class_index(project, scan_paths)

        findings: list[Finding] = []
        queue: list[str] = []
        for root in roots:
            rel, _, cls_name = root.partition(":")
            if not project.exists(rel):
                findings.append(
                    Finding(self.name, rel, 0,
                            f"seam root file missing for {cls_name!r} — "
                            "update tools/janalyze config")
                )
                continue
            if cls_name not in index:
                findings.append(
                    Finding(self.name, rel, 0,
                            f"seam root class {cls_name!r} not found — "
                            "update tools/janalyze config")
                )
                continue
            queue.append(cls_name)

        seen: set[str] = set()
        while queue:
            cls_name = queue.pop()
            if cls_name in seen:
                continue
            seen.add(cls_name)
            info = index.get(cls_name)
            if info is None:
                continue  # external / builtin name: not ours to audit
            findings.extend(self._check_class(info))
            for referenced in self._field_type_names(info.node):
                if referenced not in seen and referenced not in _SKIP_NAMES:
                    queue.append(referenced)
        return findings

    # ---------------------------------------------------------------- index
    def _class_index(
        self, project: Project, scan_paths: list[str]
    ) -> dict[str, _ClassInfo]:
        index: dict[str, _ClassInfo] = {}
        for sf in project.python_files(scan_paths):
            if sf.syntax_error is not None:
                continue
            for stmt in sf.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    index.setdefault(
                        stmt.name, _ClassInfo(sf, stmt, module_level=True)
                    )
            # Nested classes still need to be *findable* so the checker
            # can flag them as non-module-level when referenced.
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.ClassDef) and node.name not in index:
                    index[node.name] = _ClassInfo(sf, node, module_level=False)
        return index

    # ---------------------------------------------------------- class audit
    def _check_class(self, info: _ClassInfo) -> list[Finding]:
        sf, node = info.sf, info.node
        symbol = node.name
        if sf.pragma_in_range("allow-pickle", node.lineno, node.lineno):
            return []
        findings: list[Finding] = []

        if not info.module_level:
            findings.append(
                self.finding(
                    sf, node,
                    f"class {node.name} crosses the process-pool seam but "
                    "is not module-level (pickles by qualname)",
                    symbol,
                )
            )
        if not self._is_dataclass(node) and not self._has_slots(node):
            findings.append(
                self.finding(
                    sf, node,
                    f"class {node.name} crosses the process-pool seam but "
                    "is neither a dataclass nor __slots__-defined",
                    symbol,
                )
            )
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign):
                findings.extend(
                    self._check_field(sf, stmt, symbol)
                )
        return findings

    def _check_field(
        self, sf: SourceFile, stmt: ast.AnnAssign, symbol: str
    ) -> list[Finding]:
        findings: list[Finding] = []
        field_name = (
            stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
        )
        for ann_node in ast.walk(stmt.annotation):
            name = dotted_name(ann_node)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if leaf in UNPICKLABLE_NAMES:
                findings.append(
                    self.finding(
                        sf, stmt,
                        f"field {field_name!r} is annotated {name} — "
                        "unpicklable at the process-pool boundary",
                        symbol,
                    )
                )
        if stmt.value is not None:
            for default_node in ast.walk(stmt.value):
                if isinstance(default_node, ast.Lambda):
                    findings.append(
                        self.finding(
                            sf, stmt,
                            f"field {field_name!r} has a lambda default — "
                            "lambdas do not pickle",
                            symbol,
                        )
                    )
        return findings

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            name = dotted_name(
                deco.func if isinstance(deco, ast.Call) else deco
            )
            if name and name.split(".")[-1] == "dataclass":
                return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False

    def _field_type_names(self, node: ast.ClassDef) -> set[str]:
        names: set[str] = set()
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            for ann_node in ast.walk(stmt.annotation):
                name = dotted_name(ann_node)
                if name is not None:
                    names.add(name.split(".")[-1])
            # String annotations ("TargetSpec") hide names in constants.
            for const in ast.walk(stmt.annotation):
                if isinstance(const, ast.Constant) and isinstance(
                    const.value, str
                ):
                    for token in _identifier_tokens(const.value):
                        names.add(token)
        return names


def _identifier_tokens(text: str) -> list[str]:
    import re

    return re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text)
