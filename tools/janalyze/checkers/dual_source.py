"""Dual-source drift: the two solver cores must stay importable twins.

The solver keeps two implementations of one hot path — the pure-Python
:class:`~repro.sat.core_pure.PurePythonCore` and the optional C
extension ``repro.sat._native._kernel`` — behind the ``CORE_INTERFACE``
seam in ``repro/sat/solver.py``.  That design only holds up under four
invariants, each of which is easy to break silently in review:

1. **Fallback importability** — ``core_pure.py`` (and the solver driver
   transitively) must never import the ``_native`` package's extension
   module directly; a checkout without a compiler must still solve.
2. **One import seam** — the only module allowed to import
   ``repro.sat._native._kernel`` is ``repro/sat/_native/__init__.py``,
   and there the import must sit inside a ``try/except ImportError`` so
   a missing ``.so`` degrades to the pure core instead of crashing.
3. **Interface completeness** — every method named in
   ``CORE_INTERFACE`` must be defined on ``PurePythonCore`` and appear
   (as a quoted method-table string) in ``_kernel.c``.  A method added
   to one twin but not the other is exactly the drift this checker is
   named after.
4. **Parity coverage** — the parity suite must keep exercising both
   core names, otherwise byte-identity rots unobserved.

Everything is checked statically (``ast`` for Python, substring scan
for the C source) — the extension is never imported, so the checker
runs identically whether or not the kernel is built.
"""

from __future__ import annotations

import ast
import re

from tools.janalyze.checkers.base import Checker
from tools.janalyze.findings import Finding
from tools.janalyze.project import Project

__all__ = ["DualSourceDriftChecker"]

SOLVER = "src/repro/sat/solver.py"
PURE = "src/repro/sat/core_pure.py"
SEAM = "src/repro/sat/_native/__init__.py"
KERNEL_C = "src/repro/sat/_native/_kernel.c"
PARITY_TEST = "tests/sat/test_native_parity.py"

_KERNEL_MODULE = "repro.sat._native._kernel"


def _kernel_imports(tree: ast.Module) -> list[ast.stmt]:
    """Import statements that bind the compiled kernel module."""
    hits: list[ast.stmt] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.startswith(_KERNEL_MODULE) for a in node.names):
                hits.append(node)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith(_KERNEL_MODULE):
                hits.append(node)
            elif module == "repro.sat._native" and any(
                a.name == "_kernel" for a in node.names
            ):
                hits.append(node)
            elif node.level and any(a.name == "_kernel" for a in node.names):
                # relative ``from . import _kernel`` inside the package
                hits.append(node)
    return hits


def _guarded_by_import_error(tree: ast.Module, stmt: ast.stmt) -> bool:
    """True when ``stmt`` sits in a try whose handlers catch ImportError."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        in_body = any(
            sub is stmt for s in node.body for sub in ast.walk(s)
        )
        if not in_body:
            continue
        for handler in node.handlers:
            names = []
            if isinstance(handler.type, ast.Name):
                names = [handler.type.id]
            elif isinstance(handler.type, ast.Tuple):
                names = [
                    e.id for e in handler.type.elts if isinstance(e, ast.Name)
                ]
            if any(n in ("ImportError", "ModuleNotFoundError") for n in names):
                return True
    return False


def _core_interface(tree: ast.Module) -> list[str]:
    """The CORE_INTERFACE name tuple from the solver module, or []."""
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == "CORE_INTERFACE"
            and isinstance(value, (ast.Tuple, ast.List))
        ):
            return [
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
    return []


def _class_methods(tree: ast.Module, cls_name: str) -> set[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls_name:
            return {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    return set()


class DualSourceDriftChecker(Checker):
    name = "dual-source-drift"
    description = (
        "pure and native solver cores must stay importable, "
        "interface-complete twins"
    )

    def check(self, project: Project) -> list[Finding]:
        cfg = self.config(project)
        solver_rel = cfg.get("solver", SOLVER)
        pure_rel = cfg.get("pure", PURE)
        seam_rel = cfg.get("seam", SEAM)
        kernel_rel = cfg.get("kernel", KERNEL_C)
        parity_rel = cfg.get("parity_test", PARITY_TEST)
        scan_paths = cfg.get("paths", ["src/repro", "benchmarks", "tools"])

        missing = [
            rel
            for rel in (solver_rel, pure_rel, seam_rel)
            if not project.exists(rel)
        ]
        if missing:
            return [
                Finding(
                    self.name, rel, 0,
                    "dual-source seam file missing — update tools/janalyze "
                    "config if it moved",
                )
                for rel in missing
            ]

        findings: list[Finding] = []

        # 1 + 2: the kernel import exists exactly once, in the seam,
        # guarded; nothing else in scope touches the extension module.
        seam_tree = project.source(seam_rel).tree
        seam_imports = _kernel_imports(seam_tree)
        if not seam_imports:
            findings.append(
                Finding(
                    self.name, seam_rel, 0,
                    "the seam never imports repro.sat._native._kernel — "
                    "native detection cannot work",
                )
            )
        for stmt in seam_imports:
            if not _guarded_by_import_error(seam_tree, stmt):
                findings.append(
                    self.finding(
                        project.source(seam_rel), stmt,
                        "kernel import must be guarded by try/except "
                        "ImportError — a missing .so must degrade to the "
                        "pure core",
                    )
                )
        for sf in self.scoped_files(project, scan_paths):
            if sf.rel == seam_rel:
                continue
            for stmt in _kernel_imports(sf.tree):
                findings.append(
                    self.finding(
                        sf, stmt,
                        "direct import of repro.sat._native._kernel outside "
                        f"the seam ({seam_rel}) — go through the package's "
                        "NativeCore/native_available() instead",
                    )
                )
        pure_tree = project.source(pure_rel).tree
        for stmt in ast.walk(pure_tree):
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                names = [a.name for a in stmt.names]
                if isinstance(stmt, ast.ImportFrom):
                    names.append(stmt.module or "")
                if any("_native" in n for n in names):
                    findings.append(
                        self.finding(
                            project.source(pure_rel), stmt,
                            "core_pure must not import the _native package "
                            "— it is the always-available fallback",
                        )
                    )

        # 3: CORE_INTERFACE completeness on both twins.
        interface = _core_interface(project.source(solver_rel).tree)
        if not interface:
            findings.append(
                Finding(
                    self.name, solver_rel, 0,
                    "found no CORE_INTERFACE tuple — the checker's parser "
                    "is out of date",
                )
            )
        pure_methods = _class_methods(pure_tree, "PurePythonCore")
        for method in interface:
            if method not in pure_methods:
                findings.append(
                    Finding(
                        self.name, pure_rel, 0,
                        f"CORE_INTERFACE method {method!r} is missing from "
                        "PurePythonCore",
                        symbol=method,
                    )
                )
        if project.exists(kernel_rel):
            kernel_src = project.read(kernel_rel)
            for method in interface:
                if f'"{method}"' not in kernel_src:
                    findings.append(
                        Finding(
                            self.name, kernel_rel, 0,
                            f"CORE_INTERFACE method {method!r} is missing "
                            "from the native kernel's method table",
                            symbol=method,
                        )
                    )
        else:
            findings.append(
                Finding(
                    self.name, kernel_rel, 0,
                    "native kernel source missing — update tools/janalyze "
                    "config if it moved",
                )
            )

        # 4: the parity suite keeps both cores in its matrix.
        if not project.exists(parity_rel):
            findings.append(
                Finding(
                    self.name, parity_rel, 0,
                    "parity suite missing — byte-identity between the "
                    "cores is unpoliced",
                )
            )
        else:
            words = set(
                re.findall(r"[A-Za-z_][A-Za-z0-9_]*", project.read(parity_rel))
            )
            for core in ("pure", "native"):
                if core not in words:
                    findings.append(
                        Finding(
                            self.name, parity_rel, 0,
                            f"parity suite never names the {core!r} core — "
                            "the matrix no longer covers both twins",
                        )
                    )
        return findings
