"""Checker interface and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.janalyze.findings import Finding
from tools.janalyze.project import Project, SourceFile

__all__ = [
    "Checker",
    "dotted_name",
    "import_aliases",
    "iter_class_functions",
    "self_attr",
]


class Checker:
    """One analysis pass.  Subclasses set ``name``/``description`` and
    implement :meth:`check`."""

    #: Stable checker id (also the ``--only`` and baseline key).
    name: str = ""
    #: One-line summary shown by ``--list``.
    description: str = ""

    def check(self, project: Project) -> list[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------- utilities
    def scoped_files(
        self, project: Project, default_paths: list[str]
    ) -> Iterator[SourceFile]:
        paths = self.config(project).get("paths", default_paths)
        for sf in project.python_files(paths):
            if sf.syntax_error is None:
                yield sf

    def config(self, project: Project) -> dict:
        return project.checker_config(self.name)

    def finding(
        self, sf: SourceFile, node: ast.AST, message: str, symbol: str = ""
    ) -> Finding:
        return Finding(
            checker=self.name,
            path=sf.rel,
            line=getattr(node, "lineno", 0),
            message=message,
            symbol=symbol,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    ``import time`` -> ``{"time": "time"}``; ``import numpy as np`` ->
    ``{"np": "numpy"}``; ``from os import urandom as rnd`` ->
    ``{"rnd": "os.urandom"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def iter_class_functions(
    cls: ast.ClassDef,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Methods defined directly in the class body."""
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
