"""Relative markdown links in docs/ and README.md must resolve.

Absorbed from ``tools/check_docs.py``.  External ``http(s)://`` /
``mailto:`` and pure ``#anchor`` links are skipped; ``path#anchor``
forms are checked for the path part only.
"""

from __future__ import annotations

import re
from pathlib import Path

from tools.janalyze.checkers.base import Checker
from tools.janalyze.findings import Finding
from tools.janalyze.project import Project

__all__ = ["DocLinksChecker"]

#: markdown inline links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DEFAULT_PAGES = ["docs", "README.md"]


class DocLinksChecker(Checker):
    name = "doc-links"
    description = "every relative markdown link in docs/ and README resolves"

    def check(self, project: Project) -> list[Finding]:
        pages: list[Path] = []
        for scope in self.config(project).get("pages", DEFAULT_PAGES):
            base = project.root / scope
            if base.is_dir():
                pages.extend(sorted(base.glob("*.md")))
            elif base.is_file():
                pages.append(base)
        findings: list[Finding] = []
        for page in pages:
            rel = page.relative_to(project.root).as_posix()
            for lineno, line in enumerate(
                page.read_text(encoding="utf-8").splitlines(), start=1
            ):
                for target in _LINK_RE.findall(line):
                    if target.startswith(
                        ("http://", "https://", "mailto:", "#")
                    ):
                        continue
                    path = target.split("#", 1)[0]
                    if not path:
                        continue
                    if not (page.parent / path).resolve().exists():
                        findings.append(
                            Finding(
                                self.name, rel, lineno,
                                f"broken link -> {target}",
                            )
                        )
        return findings
