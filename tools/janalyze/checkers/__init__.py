"""Checker registry.

Adding a checker: subclass :class:`~tools.janalyze.checkers.base.Checker`
in a new module here, give it a unique ``name``, and append it to
:data:`ALL_CHECKERS`.  See ``docs/static-analysis.md`` for the full
walkthrough (config, fixtures, baseline interplay).
"""

from __future__ import annotations

from tools.janalyze.checkers.base import Checker
from tools.janalyze.checkers.broad_except import BroadExceptChecker
from tools.janalyze.checkers.determinism import DeterminismChecker
from tools.janalyze.checkers.doc_links import DocLinksChecker
from tools.janalyze.checkers.dual_source import DualSourceDriftChecker
from tools.janalyze.checkers.locks import LockDisciplineChecker
from tools.janalyze.checkers.pickles import PickleBoundaryChecker
from tools.janalyze.checkers.wire_schema import WireSchemaChecker

__all__ = ["ALL_CHECKERS", "Checker", "checker_by_name"]

#: Every registered checker, in report order.
ALL_CHECKERS: list[type[Checker]] = [
    LockDisciplineChecker,
    DeterminismChecker,
    PickleBoundaryChecker,
    WireSchemaChecker,
    DualSourceDriftChecker,
    BroadExceptChecker,
    DocLinksChecker,
]


def checker_by_name(name: str) -> type[Checker]:
    for cls in ALL_CHECKERS:
        if cls.name == name:
            return cls
    known = ", ".join(cls.name for cls in ALL_CHECKERS)
    raise KeyError(f"unknown checker {name!r} (known: {known})")
