"""Source-comment pragmas understood by janalyze.

Two comment grammars, both line-anchored (a pragma applies to the
statement whose source range covers its line):

``# guarded-by: <lock>``
    On an attribute assignment inside a class (conventionally in
    ``__init__``): declares that every read/write of that attribute in
    the owning class must happen inside ``with self.<lock>:``.

``# janalyze: <directive> [reason...]``
    Checker escape hatches, written on the flagged line or anywhere in
    the contiguous comment block directly above it (long justifications
    read better as their own comment).  Every ``allow-*`` directive
    **requires** a reason — an unexplained suppression is itself a
    finding:

    * ``allow-broad-except <reason>`` — permits ``except Exception`` /
      bare ``except`` on this line.
    * ``allow-unlocked <reason>`` — permits one access to a guarded
      attribute outside its lock.
    * ``allow-determinism <reason>`` — permits a forbidden
      nondeterminism source on this line.
    * ``allow-pickle <reason>`` — exempts a class from the
      pickle-boundary rules.
    * ``holds-lock <lock>`` — on a ``def`` line: the method is only
      ever called with ``<lock>`` already held (the ``*_locked`` naming
      convention implies the same for every lock).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Pragma", "parse_pragmas", "parse_guards", "PRAGMA_DIRECTIVES"]

_PRAGMA_RE = re.compile(r"#\s*janalyze:\s*([a-z-]+)(?:\s+(.*?))?\s*$")
_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

PRAGMA_DIRECTIVES = frozenset(
    {
        "allow-broad-except",
        "allow-unlocked",
        "allow-determinism",
        "allow-pickle",
        "holds-lock",
    }
)


@dataclass(frozen=True)
class Pragma:
    line: int
    directive: str
    reason: str  # free text; the lock name for holds-lock


def parse_pragmas(lines: list[str]) -> dict[int, Pragma]:
    """``{line: pragma}`` for every ``# janalyze:`` comment (1-based)."""
    pragmas: dict[int, Pragma] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            directive, reason = match.group(1), match.group(2) or ""
            pragmas[lineno] = Pragma(lineno, directive, reason.strip())
    return pragmas


def parse_guards(lines: list[str]) -> dict[int, str]:
    """``{line: lock name}`` for every ``# guarded-by:`` comment."""
    guards: dict[int, str] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _GUARD_RE.search(text)
        if match:
            guards[lineno] = match.group(1)
    return guards
