"""Project configuration for janalyze.

One dict, checked into the repo next to the code it describes.  Checkers
read their section via ``project.checker_config(name)`` and fall back to
the defaults baked into each checker module, so a fixture project in the
tests can run a single checker with a two-line config.

Keys:

``paths``
    Default scan scope (repo-relative files or directories) for checkers
    that don't override it.

``checkers.<name>.paths``
    Per-checker scan scope.  The determinism scope is deliberately the
    byte-identity surface only — the server layer legitimately reads
    wall clocks.

``checkers.<name>.roots`` (pickle-boundary)
    ``"path.py:ClassName"`` seam roots the transitive audit starts from.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["DEFAULT_CONFIG", "BASELINE_NAME", "default_baseline_path"]

BASELINE_NAME = "baseline.json"

DEFAULT_CONFIG: dict = {
    "paths": ["src/repro"],
    "checkers": {
        "lock-discipline": {
            "paths": ["src/repro"],
        },
        "determinism": {
            "paths": [
                "src/repro/core",
                "src/repro/sat",
                "src/repro/engine/wire.py",
                "src/repro/engine/signature.py",
                "src/repro/gen",
            ],
        },
        "pickle-boundary": {
            "paths": ["src/repro"],
            "roots": [
                "src/repro/engine/worker.py:LmRequest",
                "src/repro/sat/solver.py:SolveRequest",
            ],
        },
        "wire-schema": {},
        "dual-source-drift": {
            "paths": ["src/repro", "benchmarks", "tools"],
        },
        "broad-except": {
            "paths": ["src/repro"],
        },
        "doc-links": {
            "pages": ["docs", "README.md"],
        },
    },
}


def default_baseline_path(root: Path) -> Path:
    return root / "tools" / "janalyze" / BASELINE_NAME
