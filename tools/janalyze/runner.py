"""Run the checkers, apply the baseline, format the report.

Exit codes (CI gates on them):

* ``0`` — clean: zero non-baselined findings (and, under ``--strict``,
  zero stale baseline entries).
* ``1`` — findings (or stale baseline entries under ``--strict``).
* ``2`` — usage or configuration error (unknown checker, bad baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from tools.janalyze.checkers import ALL_CHECKERS, checker_by_name
from tools.janalyze.config import DEFAULT_CONFIG, default_baseline_path
from tools.janalyze.findings import Baseline, Finding
from tools.janalyze.project import Project

__all__ = ["main", "run", "build_parser", "find_repo_root"]


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Walk up from ``start`` (default: this file) to the repo root —
    the directory containing ``tools/janalyze``."""
    here = (start or Path(__file__).resolve()).resolve()
    for candidate in [here, *here.parents]:
        if (candidate / "tools" / "janalyze" / "__init__.py").is_file():
            return candidate
    raise FileNotFoundError(
        f"no tools/janalyze found above {start or Path(__file__)}"
    )


def run(
    project: Project, only: Optional[Sequence[str]] = None
) -> list[Finding]:
    """All findings from the selected checkers, plus parse failures."""
    names = list(only) if only else [cls.name for cls in ALL_CHECKERS]
    findings: list[Finding] = []
    for name in names:
        checker = checker_by_name(name)()
        findings.extend(checker.check(project))
    # Surface files the checkers had to skip: a syntax error in scope
    # means the analysis was incomplete, which must not pass silently.
    for sf in project._cache.values():
        if sf.syntax_error is not None:
            findings.append(
                Finding(
                    "parse", sf.rel, 0,
                    f"file could not be parsed ({sf.syntax_error}); "
                    "checkers skipped it",
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.checker, f.message))
    return findings


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="janalyze",
        description="repo-specific static analysis (also: janus lint)",
    )
    parser.add_argument(
        "--root", default=None, help="repo root (default: auto-detected)"
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated checker names to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: tools/janalyze/baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered checkers"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        for cls in ALL_CHECKERS:
            print(f"{cls.name:18} {cls.description}")
        return 0

    try:
        root = (
            Path(args.root).resolve() if args.root else find_repo_root()
        )
    except FileNotFoundError as exc:
        print(f"janalyze: error: {exc}", file=sys.stderr)
        return 2
    project = Project(root=root, config=DEFAULT_CONFIG)

    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        try:
            for name in only:
                checker_by_name(name)
        except KeyError as exc:
            print(f"janalyze: error: {exc.args[0]}", file=sys.stderr)
            return 2

    findings = run(project, only=only)

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path(root)
    )
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"janalyze: wrote {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    try:
        baseline = Baseline.load(
            baseline_path if baseline_path.exists() else None
        )
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"janalyze: error: bad baseline: {exc}", file=sys.stderr)
        return 2
    new, suppressed, stale = baseline.split(findings)

    failed = bool(new) or (args.strict and bool(stale))
    if args.json:
        report = {
            "version": 1,
            "root": str(root),
            "checkers": only or [cls.name for cls in ALL_CHECKERS],
            "findings": [f.to_wire() for f in new],
            "baselined": len(suppressed),
            "stale_baseline": stale,
            "ok": not failed,
        }
        print(json.dumps(report, indent=2, sort_keys=True))
        return 1 if failed else 0

    for finding in new:
        print(f"FAIL: {finding.render()}")
    if args.strict:
        for entry in stale:
            print(
                "STALE: baseline entry no longer fires — prune it: "
                f"{entry.get('path')}: [{entry.get('checker')}] "
                f"{entry.get('message')}"
            )
    ran = only or [cls.name for cls in ALL_CHECKERS]
    summary = (
        f"janalyze: {len(new)} finding(s), {len(suppressed)} baselined, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
        f"across {len(ran)} checker(s)"
    )
    print(summary, file=sys.stderr if failed else sys.stdout)
    return 1 if failed else 0
