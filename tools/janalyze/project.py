"""The project model: a source tree parsed once, shared by all checkers.

Everything is derived from text + :mod:`ast`; project code is **never
imported or executed**, so janalyze needs no PYTHONPATH, no third-party
dependencies, and cannot be fooled by import-time side effects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Iterator, Optional

from tools.janalyze.pragmas import Pragma, parse_guards, parse_pragmas

__all__ = ["SourceFile", "Project"]


@dataclass
class SourceFile:
    """One parsed Python source file."""

    rel: str  # repo-relative posix path
    text: str
    syntax_error: Optional[str] = None

    @cached_property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    @cached_property
    def tree(self) -> ast.Module:
        return ast.parse(self.text)

    @cached_property
    def pragmas(self) -> dict[int, Pragma]:
        return parse_pragmas(self.lines)

    @cached_property
    def guards(self) -> dict[int, str]:
        return parse_guards(self.lines)

    def pragma_in_range(
        self, directive: str, first: int, last: Optional[int]
    ) -> Optional[Pragma]:
        """The first ``directive`` pragma on lines ``first..last``."""
        for lineno in range(first, (last or first) + 1):
            pragma = self.pragmas.get(lineno)
            if pragma is not None and pragma.directive == directive:
                return pragma
        return None

    def statement_pragma(
        self, directive: str, node: ast.AST
    ) -> Optional[Pragma]:
        """``directive`` pragma anywhere in ``node``'s source range."""
        return self.pragma_in_range(
            directive, node.lineno, getattr(node, "end_lineno", node.lineno)
        )

    def pragma_for_line(
        self, directive: str, first: int, last: Optional[int] = None
    ) -> Optional[Pragma]:
        """Pragma on lines ``first..last`` or in the contiguous comment
        block directly above ``first`` (multi-line justifications)."""
        pragma = self.pragma_in_range(directive, first, last)
        if pragma is not None:
            return pragma
        lineno = first - 1
        while 1 <= lineno <= len(self.lines):
            if not self.lines[lineno - 1].strip().startswith("#"):
                break
            pragma = self.pragmas.get(lineno)
            if pragma is not None and pragma.directive == directive:
                return pragma
            lineno -= 1
        return None


@dataclass
class Project:
    """A source tree rooted at ``root``, with per-checker config."""

    root: Path
    config: dict = field(default_factory=dict)
    _cache: dict = field(default_factory=dict, repr=False)

    def checker_config(self, name: str) -> dict:
        return self.config.get("checkers", {}).get(name, {})

    # ------------------------------------------------------------------ files
    def exists(self, rel: str) -> bool:
        return (self.root / rel).exists()

    def read(self, rel: str) -> str:
        return (self.root / rel).read_text(encoding="utf-8")

    def source(self, rel: str) -> SourceFile:
        """The parsed source file at ``rel`` (cached)."""
        cached = self._cache.get(rel)
        if cached is not None:
            return cached
        sf = SourceFile(rel=rel, text=self.read(rel))
        try:
            sf.tree  # parse eagerly; checkers must skip files that fail
        except SyntaxError as exc:
            sf.syntax_error = f"line {exc.lineno}: {exc.msg}"
        self._cache[rel] = sf
        return sf

    def python_files(self, scopes: list[str]) -> Iterator[SourceFile]:
        """Parsed sources under the given paths (files or directories).

        Scopes are repo-relative; missing ones are skipped silently so
        one config serves both the real repo and test fixtures.
        """
        seen: set[str] = set()
        for scope in scopes:
            base = self.root / scope
            if base.is_file():
                candidates = [base]
            elif base.is_dir():
                candidates = sorted(base.rglob("*.py"))
            else:
                continue
            for path in candidates:
                rel = path.relative_to(self.root).as_posix()
                if rel in seen or "__pycache__" in rel:
                    continue
                seen.add(rel)
                yield self.source(rel)
