#!/usr/bin/env python
"""Compatibility shim: the docs checks moved into ``tools/janalyze``.

The link check lives in the ``doc-links`` checker and the wire-schema
field sync (now also covering ``EVENT_KINDS`` exhaustiveness and the
error-status table) in the ``wire-schema`` checker.  This entry point
remains so ``python tools/check_docs.py`` keeps working for anyone's
muscle memory; CI runs the full suite via ``python -m tools.janalyze
--strict`` instead.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.janalyze.runner import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--only", "doc-links,wire-schema", *sys.argv[1:]]))
