#!/usr/bin/env python
"""Documentation checks: intra-repo links + wire-schema field sync.

Run from the repository root (CI's ``docs`` job does)::

    python tools/check_docs.py

Two independent checks, both must pass:

1. **Links** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must point at a file or directory that exists (external
   ``http(s)://`` and ``#anchor`` links are skipped; ``path#anchor``
   forms are checked for the path part only).

2. **Wire-schema sync** — ``docs/wire-schema.md`` documents every field
   of the v1 JSON schema.  This check re-derives the field names from
   the *source of truth* — the dict literals in
   ``src/repro/engine/wire.py`` (attempt / assignment / spec-snapshot
   payloads), the ``to_wire`` methods in ``src/repro/api/schema.py``,
   the event dataclasses and ``EVENT_KINDS`` tags in
   ``src/repro/engine/events.py``, and the ``EngineStats`` fields in
   ``src/repro/engine/parallel.py`` — and fails if any of them is not
   mentioned (in backticks) in the doc.  Add a field to the code without
   documenting it and CI goes red.

The sources are parsed with :mod:`ast` (never imported/executed), so
the check needs no PYTHONPATH and cannot be fooled by import-time
side effects.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: markdown inline links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


# ------------------------------------------------------------------- links
def check_links() -> list[str]:
    errors = []
    pages = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]
    for page in pages:
        text = page.read_text(encoding="utf-8")
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{page.relative_to(ROOT)}: broken link -> {target}"
                )
    return errors


# ------------------------------------------------------- schema field names
def _dict_keys_in_function(tree: ast.AST, function: str) -> set[str]:
    """String keys of every dict literal inside one module-level function."""
    keys: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == function:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    for key in sub.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.add(key.value)
    return keys


def _method_dict_keys(tree: ast.AST, cls: str, method: str) -> set[str]:
    """Same, for a method of a class."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls:
            return _dict_keys_in_function(node, method)
    return set()


def _dataclass_fields(tree: ast.AST, cls: str) -> set[str]:
    """Annotated field names of one (data)class."""
    fields: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls:
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.add(stmt.target.id)
    return fields


def _event_kinds(tree: ast.AST) -> set[str]:
    """The string keys of the module-level EVENT_KINDS dict literal."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ) and node.target.id == "EVENT_KINDS" and isinstance(
            node.value, ast.Dict
        ):
            return {
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant)
            }
    return set()


def expected_fields() -> dict[str, set[str]]:
    """``{source label: field names}`` re-derived from the code."""
    wire = ast.parse(
        (ROOT / "src/repro/engine/wire.py").read_text(encoding="utf-8")
    )
    schema = ast.parse(
        (ROOT / "src/repro/api/schema.py").read_text(encoding="utf-8")
    )
    events = ast.parse(
        (ROOT / "src/repro/engine/events.py").read_text(encoding="utf-8")
    )
    parallel = ast.parse(
        (ROOT / "src/repro/engine/parallel.py").read_text(encoding="utf-8")
    )

    event_fields: set[str] = set()
    for cls in (
        "EngineEvent",
        "ProbeStarted",
        "ProbeFinished",
        "BoundComputed",
        "CacheEvent",
        "SynthesisStarted",
        "SynthesisFinished",
    ):
        event_fields |= _dataclass_fields(events, cls)

    return {
        "engine/wire.py attempt_to_wire": _dict_keys_in_function(
            wire, "attempt_to_wire"
        ),
        "engine/wire.py assignment_to_wire": _dict_keys_in_function(
            wire, "assignment_to_wire"
        ),
        "engine/wire.py spec_snapshot": _dict_keys_in_function(
            wire, "spec_snapshot"
        ),
        "api/schema.py RequestOptions.to_wire": _method_dict_keys(
            schema, "RequestOptions", "to_wire"
        ),
        "api/schema.py SynthesisRequest.to_wire": _method_dict_keys(
            schema, "SynthesisRequest", "to_wire"
        ),
        "api/schema.py SynthesisResponse.to_wire": _method_dict_keys(
            schema, "SynthesisResponse", "to_wire"
        ),
        "api/schema.py BatchRequest.to_wire": _method_dict_keys(
            schema, "BatchRequest", "to_wire"
        ),
        "api/schema.py BatchResponse.to_wire": _method_dict_keys(
            schema, "BatchResponse", "to_wire"
        ),
        "engine/events.py EVENT_KINDS": _event_kinds(events),
        "engine/events.py event fields": event_fields,
        "engine/parallel.py EngineStats": _dataclass_fields(
            parallel, "EngineStats"
        ),
    }


def check_wire_schema_doc() -> list[str]:
    doc = (ROOT / "docs" / "wire-schema.md").read_text(encoding="utf-8")
    # Whole-word harvest over the page (tables, prose and JSON examples
    # alike): a field counts as documented when its exact name appears
    # anywhere.  That is deliberately lenient about *where* — the gate
    # this check provides is "nobody adds a wire field without touching
    # the doc", not prose quality.
    documented = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", doc))

    errors = []
    for source, fields in sorted(expected_fields().items()):
        if not fields:
            errors.append(
                f"wire-schema sync: found no fields in {source} — "
                "the checker's parser is out of date"
            )
            continue
        for field in sorted(fields):
            if field not in documented:
                errors.append(
                    f"wire-schema sync: {source} field {field!r} is not "
                    "documented in docs/wire-schema.md"
                )
    return errors


def main() -> int:
    errors = check_links() + check_wire_schema_doc()
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    sources = expected_fields()
    total = sum(len(v) for v in sources.values())
    print(
        f"docs OK: links verified, {total} wire-schema fields from "
        f"{len(sources)} sources all documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
