#!/usr/bin/env python3
"""End-to-end file workflow: PLA in, minimized lattice out, BLIF archive.

The LGSynth91 instances the paper benchmarks arrive as PLA files.  This
example runs the full tool-chain a user with their own benchmark files
would run:

1. write a small multi-output PLA (a 2-bit multiplier) to disk;
2. read it back, minimize each output with the espresso loop and
   compare against the exact minimizer;
3. synthesize every output on its own minimal lattice with JANUS and on
   one shared lattice with JANUS-MF;
4. archive the functions as a structural BLIF netlist and verify the
   netlist against the PLA by SAT equivalence on a miter.

Run:  python examples/pla_workflow.py
"""

import pathlib
import tempfile

from repro import make_spec
from repro.aig import Aig, BlifModel, equivalent_sat, read_blif, write_blif
from repro.api import RequestOptions, Session
from repro.boolf import TruthTable, espresso, exact_min_sop, read_pla
from repro.core import synthesize_multi


def multiplier_pla() -> str:
    """2x2-bit multiplier as PLA text (4 inputs a1 a0 b1 b0 -> 4 outputs)."""
    rows = []
    for a in range(4):
        for b in range(4):
            inputs = f"{a:02b}{b:02b}"
            product = a * b
            rows.append(f"{inputs} {product:04b}")
    header = ".i 4\n.o 4\n.ilb a1 a0 b1 b0\n.ob p3 p2 p1 p0\n"
    return header + "\n".join(rows) + "\n.e\n"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        pla_path = pathlib.Path(tmp) / "mult2.pla"
        pla_path.write_text(multiplier_pla())

        with open(pla_path) as fh:
            pla = read_pla(fh)
        print(f"read {pla_path.name}: {len(pla.input_names)} inputs, "
              f"{len(pla.output_names)} outputs")

        options = RequestOptions(max_conflicts=40_000)
        tables: dict[str, TruthTable] = {}
        # One session for every per-output synthesis (facade + shared
        # engine config); JANUS-MF below stays on the core multi API.
        with Session() as session:
            for index, name in enumerate(pla.output_names):
                tt = pla.output_truthtable(index)
                tables[name] = tt
                heuristic = espresso(tt, names=pla.input_names)
                exact = exact_min_sop(tt, names=pla.input_names)
                print(f"\n{name}: espresso {len(heuristic)} products, "
                      f"exact minimum {len(exact)} products")
                if tt.is_zero():
                    print("  constant 0 - no lattice needed")
                    continue
                response = session.synthesize(
                    make_spec(tt, name=name), options=options
                )
                print(f"  lattice: {response.shape} = "
                      f"{response.size} switches")

        # One shared lattice for the non-constant outputs (JANUS-MF).
        active = {k: v for k, v in tables.items() if not v.is_zero()}
        multi = synthesize_multi(
            list(active.values()), options=options.to_janus_options()
        )
        print(f"\nJANUS-MF shared lattice: {multi.rows}x{multi.cols} "
              f"= {multi.size} switches for {len(active)} outputs")

        # Archive as BLIF and verify by SAT.
        aig = Aig(len(pla.input_names))
        outputs = {
            name: aig.from_truthtable(tt) for name, tt in tables.items()
        }
        model = BlifModel("mult2", aig, list(pla.input_names), outputs)
        blif_path = pathlib.Path(tmp) / "mult2.blif"
        with open(blif_path, "w") as fh:
            write_blif(model, fh)
        with open(blif_path) as fh:
            reread = read_blif(fh)
        for name, tt in tables.items():
            check = reread.aig
            lhs = reread.output_lit(name)
            rhs = check.from_truthtable(tt)
            eq, _ = equivalent_sat(check, lhs, rhs)
            assert eq, f"{name} BLIF mismatch"
        print(f"\nBLIF archive verified by SAT miters "
              f"({blif_path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
