#!/usr/bin/env python3
"""Testing a synthesized lattice: stuck-switch faults and test vectors.

Nano-crossbar switching lattices are defect-prone, and the survey the
paper cites ([4]) pairs every synthesis technique with a testing story.
This example closes that loop for JANUS solutions:

1. synthesize the paper's Fig. 4 function onto its minimal 3x4 lattice;
2. enumerate every single stuck-ON / stuck-OFF fault;
3. classify faults as testable or redundant (a redundant fault never
   changes the realized function — the lattice tolerates it);
4. compute a small test set detecting every testable fault, and report
   the coverage a naive "all onset vectors" strategy would reach.

Run:  python examples/fault_analysis.py
"""

from repro import make_spec
from repro.api import RequestOptions, synthesize
from repro.lattice import (
    fault_coverage,
    fault_table,
    minimal_test_set,
    render_ascii,
)


def main() -> None:
    spec = make_spec("cd + c'd' + abe + a'b'e'", name="fig4")
    response = synthesize(
        spec, options=RequestOptions(max_conflicts=60_000)
    )
    result = response.result
    lattice = result.assignment
    print(f"lattice under test: {result.shape} = {result.size} switches\n")
    print(render_ascii(lattice))

    report = fault_table(lattice)
    print(f"\nsingle-fault universe : {report.num_faults} faults")
    print(f"  testable            : {len(report.testable)}")
    print(f"  redundant (tolerated): {len(report.redundant)}")
    for fault in report.redundant[:5]:
        print(f"    e.g. {fault}")

    tests = minimal_test_set(report)
    print(f"\nminimal test set ({len(tests)} vectors, "
          f"vs {1 << spec.num_inputs} exhaustive):")
    names = spec.names or tuple(
        chr(ord('a') + i) for i in range(spec.num_inputs)
    )
    header = " ".join(reversed([str(n) for n in names[: spec.num_inputs]]))
    print(f"    {header}")
    for vec in tests:
        bits = format(vec, f"0{spec.num_inputs}b")
        print(f"    {' '.join(bits)}")
    assert fault_coverage(report, tests) == 1.0

    onset = spec.tt.onset()
    naive = fault_coverage(report, onset)
    print(f"\ncoverage of the {len(onset)} onset vectors alone: "
          f"{100 * naive:.0f}% (misses stuck-ON faults that only show "
          "on off-set vectors)")


if __name__ == "__main__":
    main()
