#!/usr/bin/env python3
"""Reproduce the paper's Fig. 1(c)/(d) figures: synthesize and render.

The paper illustrates lattice mapping with f = abcd + a'b'cd' realized
on the 3x3 lattice (Fig. 1(c), with the conducting path for abcd = 0111
shaded) and on the minimum-size 4x2 lattice (Fig. 1(d)).  This example
synthesizes the function, prints both lattices as framed ASCII art with
the conducting cells starred, and writes SVG figures next to the script.

Run:  python examples/lattice_rendering.py
"""

import pathlib

from repro import make_spec, solve_lm
from repro.api import RequestOptions, synthesize
from repro.lattice import render_ascii, render_svg


def main() -> None:
    # See DESIGN.md: the camera-ready PDF drops the overbars; the
    # extracted literal set pins the function as abcd + a'b'cd'.
    spec = make_spec("abcd + a'b'cd'", name="fig1")
    options = RequestOptions(max_conflicts=60_000)

    # Fig. 1(c): a (non-minimal) realization on the fixed 3x3 lattice.
    outcome = solve_lm(spec, 3, 3, options.to_janus_options())
    assert outcome.assignment is not None, "3x3 should be feasible"
    on_3x3 = outcome.assignment

    # The paper shades the conducting path for an onset vector; with our
    # reconstruction the all-ones vector abcd = 1111 is in the onset.
    minterm = 0b1111
    assert spec.tt.evaluate(minterm)
    print("Fig. 1(c): f on the 3x3 lattice "
          "(* = conducting cells at abcd = 1111)\n")
    print(render_ascii(on_3x3, minterm=minterm))

    # Fig. 1(d): the minimum-size lattice via the full JANUS search,
    # through the one-shot facade entry point.
    response = synthesize(spec, options=options)
    result = response.result
    print(f"\nFig. 1(d): minimum lattice found by JANUS: {response.shape} "
          f"= {response.size} switches\n")
    print(render_ascii(result.assignment))

    out_dir = pathlib.Path(__file__).resolve().parent
    for name, lattice, mark in (
        ("fig1c.svg", on_3x3, minterm),
        ("fig1d.svg", result.assignment, None),
    ):
        path = out_dir / name
        path.write_text(render_svg(lattice, minterm=mark))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
