#!/usr/bin/env python3
"""Compare plain JANUS with the decomposition baselines ([8], [10]).

The related-work section of the paper surveys synthesis flows that
decompose the target before touching a lattice:

* **autosymmetry** ([10], Bernasconi et al.): factor out the linear
  space L_f, synthesize the smaller restriction, feed the lattice
  through EXOR gates;
* **D-reducibility** ([8]): when the onset lives in a proper affine
  subspace, synthesize only the projection onto that subspace.

Both trade lattice area for external gates — the JANUS paper notes the
extra wires "may not be desirable".  This example quantifies the trade
on a function engineered to favour decomposition:

    f = (a ^ b) (c ^ d) e

It is 2-autosymmetric *and* D-reducible, so all three flows apply.

Run:  python examples/decomposition_methods.py
"""

import numpy as np

from repro import make_spec
from repro.api import RequestOptions, synthesize
from repro.boolf import TruthTable
from repro.core import (
    autosymmetry_degree,
    is_dreducible,
    synthesize_autosymmetric,
    synthesize_dreducible,
)


def target() -> TruthTable:
    values = np.zeros(32, dtype=bool)
    for m in range(32):
        a, b, c, d, e = (m >> i & 1 for i in range(5))
        values[m] = bool((a ^ b) and (c ^ d) and e)
    return TruthTable(values, 5)


def main() -> None:
    tt = target()
    spec = make_spec(tt, name="axb_cxd_e")
    request_options = RequestOptions(max_conflicts=60_000)
    options = request_options.to_janus_options()

    print("target: f = (a^b)(c^d)e")
    print(f"  minimized cover: {spec.isop.to_string()} "
          f"({spec.num_products} products)")
    print(f"  autosymmetry degree k = {autosymmetry_degree(tt)}")
    print(f"  D-reducible: {is_dreducible(tt)}")

    plain = synthesize(spec, options=request_options)
    print(f"\nplain JANUS        : {plain.shape} = {plain.size} switches, "
          f"no external gates")

    auto = synthesize_autosymmetric(tt, options=options)
    print(f"autosymmetric [10] : {auto.synthesis.shape} = "
          f"{auto.lattice_size} switches + {auto.num_exor_gates} EXOR gates "
          f"(restriction over "
          f"{auto.reduction.restriction.num_vars} vars)")

    dred = synthesize_dreducible(tt, options=options)
    print(f"D-reducible [8]    : {dred.synthesis.shape} = "
          f"{dred.lattice_size} switches + {dred.num_exor_gates} EXOR "
          f"constraints (hull dimension {dred.reduction.hull.dimension})")

    assert auto.realized_truthtable() == tt
    assert dred.realized_truthtable() == tt
    print("\nboth decompositions verified against the target "
          "on all 32 input vectors")


if __name__ == "__main__":
    main()
