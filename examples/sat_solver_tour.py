#!/usr/bin/env python3
"""Tour of the SAT substrate: the CDCL solver behind JANUS.

The paper delegates its LM instances to glucose 4.1; this library ships
its own CDCL solver.  The tour shows the pieces JANUS uses:

* building CNF with named variables and exactly-one constraints,
* solving, decoding models through the variable pool,
* conflict budgets (how JANUS emulates the paper's 1200 s SAT timeout),
* DIMACS export for cross-checking with external solvers.

Run:  python examples/sat_solver_tour.py
"""

from repro.sat import Cnf, exactly_one, solve_cnf, write_dimacs


def main() -> None:
    # A toy placement problem in the LM encoding's style: three cells,
    # each assigned exactly one of three labels, adjacent cells differing.
    cnf = Cnf()
    cells, labels = 3, 3
    var = {
        (c, l): cnf.pool.var(("assign", c, l))
        for c in range(cells)
        for l in range(labels)
    }
    for c in range(cells):
        exactly_one(cnf, [var[(c, l)] for l in range(labels)])
    for c in range(cells - 1):
        for l in range(labels):
            cnf.add([-var[(c, l)], -var[(c + 1, l)]])

    print(f"CNF: {cnf.num_vars} variables, {cnf.num_clauses} clauses "
          f"(complexity {cnf.complexity})")

    result = solve_cnf(cnf)
    print(f"status: {result.status} in {result.wall_time * 1000:.1f} ms, "
          f"{result.stats.conflicts} conflicts, "
          f"{result.stats.propagations} propagations")

    assignment = {
        c: l
        for (c, l), v in var.items()
        if result.value(v)
    }
    print(f"decoded assignment: {assignment}")

    # Conflict budgets: a pigeonhole instance the solver cannot finish in
    # 50 conflicts comes back "unknown" — JANUS then treats the lattice
    # candidate as unrealizable, exactly like the paper's SAT timeout.
    php = Cnf()
    holes, pigeons = 6, 7
    p = [[php.pool.var((i, j)) for j in range(holes)] for i in range(pigeons)]
    for i in range(pigeons):
        php.add(p[i])
    for j in range(holes):
        for i in range(pigeons):
            for k in range(i + 1, pigeons):
                php.add([-p[i][j], -p[k][j]])

    budgeted = solve_cnf(php, max_conflicts=50)
    full = solve_cnf(php)
    print(f"\npigeonhole(7,6) with 50-conflict budget: {budgeted.status}")
    print(f"pigeonhole(7,6) unbounded: {full.status} "
          f"after {full.stats.conflicts} conflicts")

    # DIMACS round trip for external cross-checking.
    text = write_dimacs(cnf, comment="toy placement instance")
    print(f"\nDIMACS export ({len(text.splitlines())} lines), header:")
    print("\n".join(text.splitlines()[:3]))


if __name__ == "__main__":
    main()
