#!/usr/bin/env python3
"""Tour of the ROBDD engine on lattice functions.

Lattice functions blow up fast (Table I: the 8x8 lattice function has
797,048 products), which is exactly the regime BDDs were invented for.
This example:

1. builds the 4x4 lattice function both as an SOP (path enumeration) and
   as a BDD, and checks they agree;
2. counts satisfying assignments (how many switch configurations make
   the lattice conduct);
3. extracts an irredundant SOP back out of the BDD with the
   Minato-Morreale procedure;
4. shows variable reordering: a function with an unfortunate input
   order shrinks under sifting.

Run:  python examples/bdd_tour.py
"""

from repro.bdd import Bdd, bdd_isop, sift
from repro.lattice import Grid, lattice_function


def main() -> None:
    grid = Grid(4, 4)
    sop = lattice_function(grid.rows, grid.cols)
    print(f"f_4x4 as an SOP: {sop.num_products} products, "
          f"{sop.num_literals} literals")

    mgr = Bdd(grid.size)
    node = mgr.from_sop(sop)
    print(f"f_4x4 as a BDD : {mgr.dag_size(node)} nodes")

    tt = sop.to_truthtable()
    assert mgr.to_truthtable(node) == tt, "representations disagree!"

    conducting = mgr.satcount(node)
    print(f"\nconducting switch configurations: {conducting} / {1 << grid.size}"
          f"  ({100 * conducting / (1 << grid.size):.1f}%)")

    _, cubes = bdd_isop(mgr, node, node)
    print(f"Minato-Morreale ISOP from the BDD: {len(cubes)} cubes "
          f"(path enumeration found {sop.num_products})")

    # Reordering demo: interleaved AND pairs with a bad order.
    print("\nsifting demo: f = a0*b0 + a1*b1 + a2*b2 + a3*b3")
    bad = Bdd(8, var_order=[0, 1, 2, 3, 4, 5, 6, 7])
    f = bad.disjoin(bad.and_(bad.var(i), bad.var(i + 4)) for i in range(4))
    print(f"  order a0 a1 a2 a3 b0 b1 b2 b3: {bad.dag_size(f)} nodes")
    better, (g,) = sift(bad, [f])
    order = ", ".join(f"x{v}" for v in better.var_order)
    print(f"  after sifting ({order}): {better.dag_size(g)} nodes")
    assert better.to_truthtable(g) == bad.to_truthtable(f)
    print("  functions verified equal")


if __name__ == "__main__":
    main()
