#!/usr/bin/env python3
"""Realize a multi-output arithmetic block on one shared lattice (JANUS-MF).

The paper's Table III evaluates multi-output synthesis on LGSynth91
benchmarks; the nicest fully-reconstructible one is ``squar5``: the output
bits of a 5-bit squarer.  This example synthesizes a 4-bit squarer's
non-trivial output bits (a smaller sibling, so it runs in seconds) with

* the *straight-forward method*: one JANUS lattice per output, stacked
  side by side behind constant-0 isolation columns, and
* *JANUS-MF*: the same followed by the row-shrinking refinement.

It then reads each output back out of its column band and verifies it
against the arithmetic truth table.

Run:  python examples/arithmetic_multi_output.py
"""

import numpy as np

from repro import JanusOptions, TruthTable
from repro.core import TargetSpec, merge_straightforward, synthesize_multi


def squarer_outputs(bits: int) -> list[TruthTable]:
    """Truth tables for the interesting bits of x**2, x a `bits`-bit input.

    Bit 0 equals x0 and bit 1 is constant 0, so real benchmarks (squar5)
    drop them; we do the same.
    """
    outs = []
    for k in range(2, 2 * bits):
        values = np.array(
            [(x * x) >> k & 1 == 1 for x in range(1 << bits)], dtype=bool
        )
        outs.append(TruthTable(values, bits))
    return outs


def main() -> None:
    bits = 4
    tables = squarer_outputs(bits)
    specs = [
        TargetSpec.from_truthtable(tt, name=f"sq{bits}_bit{k + 2}")
        for k, tt in enumerate(tables)
    ]
    print(f"{bits}-bit squarer: {len(specs)} non-trivial output bits")
    for spec in specs:
        print(f"  {spec.name}: #pi={spec.num_products}, degree={spec.degree}")

    options = JanusOptions(max_conflicts=40_000)

    straightforward = merge_straightforward(specs, options)
    print(f"\nstraight-forward merge : {straightforward.shape} "
          f"= {straightforward.size} switches")

    mf = synthesize_multi(specs, options=options)
    print(f"JANUS-MF               : {mf.shape} = {mf.size} switches")
    gain = 100 * (1 - mf.size / straightforward.size)
    print(f"gain                   : {gain:.0f}% "
          f"(the paper reports up to 32% on Table III)")

    # Read each output back out of its column band and verify it.
    for index, spec in enumerate(mf.specs):
        band = mf.output_band(index)
        assert band.realizes(spec.tt), spec.name
        start, end = mf.column_ranges[index]
        print(f"  {spec.name}: columns [{start}, {end}) verified")

    print("\nshared lattice:")
    print(mf.assignment.to_text())


if __name__ == "__main__":
    main()
