#!/usr/bin/env python3
"""Compare JANUS against the baseline LS algorithms (a mini Table II).

Runs the five algorithms the paper compares — JANUS, the exact and
approximate methods of Gange et al. [6], the shape heuristic of Morgul &
Altun [11] and a p-circuit-style decomposition baseline [9] — on a few
reconstructed benchmark slices, printing solution sizes and run times,
with the paper's published values alongside.

Every algorithm is addressed *by registry name* through the stable
public API: one :class:`repro.api.Session` serves all runs, and swapping
algorithms is just a different ``backend=`` string.

Run:  python examples/algorithm_comparison.py
"""

from repro.api import RequestOptions, Session
from repro.bench import PAPER_TABLE2, build_instance

INSTANCES = ["b12_03", "c17_01", "dc1_00", "clpl_00", "misex1_00"]

BACKENDS = [
    ("JANUS", "janus"),
    ("exact [6]", "exact"),
    ("approx [6]", "approx"),
    ("heuristic [11]", "heuristic"),
    ("p-circuit [9]", "pcircuit"),
]


def main() -> None:
    options = RequestOptions(max_conflicts=40_000)
    paper = {row.name: row for row in PAPER_TABLE2}

    with Session() as session:
        for name in INSTANCES:
            spec = build_instance(name)
            row = paper[name]
            print(f"\n{name}  (#in={spec.num_inputs}, #pi={spec.num_products}, "
                  f"degree={spec.degree})  "
                  f"[paper: JANUS {row.sol_janus}, exact {row.sol_exact}]")
            for label, backend in BACKENDS:
                response = session.synthesize(
                    spec, backend=backend, options=options
                )
                assert response.result.assignment.realizes(spec.tt)
                marker = (
                    " <- minimum proven" if response.provably_minimum else ""
                )
                print(f"  {label:<15} {response.shape:>6} = "
                      f"{response.size:>3} switches "
                      f"in {response.wall_time:6.2f}s{marker}")

    print("\nNote: instances are reconstructed from the published "
          "(#in, #pi, degree) signatures, so absolute sizes differ from "
          "the paper; the ordering JANUS <= baselines is the reproduced claim.")


if __name__ == "__main__":
    main()
