#!/usr/bin/env python3
"""Compare JANUS against the baseline LS algorithms (a mini Table II).

Runs the five algorithms the paper compares — JANUS, the exact and
approximate methods of Gange et al. [6], the shape heuristic of Morgul &
Altun [11] and a p-circuit-style decomposition baseline [9] — on a few
reconstructed benchmark slices, printing solution sizes and run times,
with the paper's published values alongside.

Run:  python examples/algorithm_comparison.py
"""

from repro import JanusOptions
from repro.bench import PAPER_TABLE2, build_instance
from repro.core import (
    approx_restricted,
    decompose_pcircuit,
    exact_search,
    heuristic_candidates,
    synthesize,
)

INSTANCES = ["b12_03", "c17_01", "dc1_00", "clpl_00", "misex1_00"]

ALGORITHMS = [
    ("JANUS", synthesize),
    ("exact [6]", exact_search),
    ("approx [6]", approx_restricted),
    ("heuristic [11]", heuristic_candidates),
    ("p-circuit [9]", decompose_pcircuit),
]


def main() -> None:
    options = JanusOptions(max_conflicts=40_000)
    paper = {row.name: row for row in PAPER_TABLE2}

    for name in INSTANCES:
        spec = build_instance(name)
        row = paper[name]
        print(f"\n{name}  (#in={spec.num_inputs}, #pi={spec.num_products}, "
              f"degree={spec.degree})  "
              f"[paper: JANUS {row.sol_janus}, exact {row.sol_exact}]")
        for label, algorithm in ALGORITHMS:
            result = algorithm(spec, options=options)
            assert result.assignment.realizes(spec.tt)
            marker = " <- minimum proven" if result.is_provably_minimum else ""
            print(f"  {label:<15} {result.shape:>6} = {result.size:>3} switches "
                  f"in {result.wall_time:6.2f}s{marker}")

    print("\nNote: instances are reconstructed from the published "
          "(#in, #pi, degree) signatures, so absolute sizes differ from "
          "the paper; the ordering JANUS <= baselines is the reproduced claim.")


if __name__ == "__main__":
    main()
