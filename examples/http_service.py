"""Serve the synthesis API over HTTP and drive it with repro.client.

Starts an in-process ``janus serve`` instance on an ephemeral loopback
port (exactly what the CLI command runs), then exercises the whole
surface: single requests, the warm-cache property observed through the
served counters, an asynchronous batch with a live progress-event
stream, and structured errors.

Run with: PYTHONPATH=src python examples/http_service.py
"""

from repro.api import RequestOptions, SynthesisRequest
from repro.client import ServerError, ServiceClient
from repro.server import make_server

OPTIONS = RequestOptions(max_conflicts=20_000)


def main() -> None:
    with make_server(port=0, pool=2) as server:
        server.serve_background()
        host, port = server.address
        client = ServiceClient(host, port)
        print(f"serving on http://{host}:{port}")
        print(f"health: {client.health()['status']}, "
              f"backends: {', '.join(client.backends())}")

        # --- one request, then the same request again (served warm) ---
        request = SynthesisRequest.from_target("ab + a'b'c", options=OPTIONS)
        response = client.synthesize(request)
        print(f"\ncold : {response.name} -> {response.shape} = "
              f"{response.size} switches")
        response = client.synthesize(request)
        stats = client.cache_stats()["engine"]
        print(f"warm : same answer, served from the suite cache "
              f"(suite_hits={stats['suite_hits']}, "
              f"solver_calls={stats['solver_calls']} — no new SAT work)")

        # --- an async batch with a live progress stream ---
        job_id = client.submit_batch(
            [SynthesisRequest.from_target(e, options=OPTIONS)
             for e in ("ab + cd", "a'b + ab' + c", "abc + a'b'c'")]
        )
        print(f"\nasync batch {job_id}:")
        for page in client.iter_events(job_id):
            for event in page["events"]:
                if event["event"] in ("synthesis_started",
                                      "synthesis_finished"):
                    detail = (f" {event['rows']}x{event['cols']}"
                              if event["event"] == "synthesis_finished"
                              else "")
                    print(f"  {event['event']}{detail}")
        batch = client.wait_batch(job_id)
        print(f"  -> {len(batch)} responses: "
              f"{[r.size for r in batch]} switches")

        # --- structured errors ---
        try:
            client.synthesize(request, backend="no-such-backend")
        except ServerError as exc:
            print(f"\nerror envelope: status={exc.status} "
                  f"type={exc.payload['type']}")


if __name__ == "__main__":
    main()
