#!/usr/bin/env python3
"""Quickstart: synthesize a Boolean function onto a minimal switching lattice.

This walks the full JANUS pipeline on the paper's Fig. 4 worked example:

1. parse a sum-of-products expression into a target spec (minimized cover
   plus the cover of its dual);
2. inspect the six initial upper-bound constructions and the structural
   lower bound;
3. run the dichotomic SAT search;
4. print the resulting switch grid and double-check it with the
   independent connectivity checker.

Run:  python examples/quickstart.py
"""

from repro import JanusOptions, make_spec, synthesize
from repro.core import best_upper_bound, structural_lower_bound, ub_ds


def main() -> None:
    # The paper's Section III-B example; published optimum: 3x4.
    expression = "cd + c'd' + abe + a'b'e'"
    spec = make_spec(expression, name="fig4")

    print(f"target function : {expression}")
    print(f"minimized cover : {spec.isop.to_string()}  "
          f"(#pi={spec.num_products}, degree={spec.degree})")
    print(f"dual cover      : {spec.dual_isop.to_string()}  "
          f"(#pi={spec.num_dual_products}, degree={spec.dual_degree})")

    lb = structural_lower_bound(spec)
    print(f"\nstructural lower bound: {lb} switches")

    options = JanusOptions(max_conflicts=60_000)
    _best, bounds = best_upper_bound(spec)
    bounds["ds"] = ub_ds(spec, options)
    print("initial upper bounds:")
    for method, result in sorted(bounds.items()):
        print(f"  {method:>5}: {result.rows}x{result.cols} = {result.size} switches")

    result = synthesize(spec, options=options)
    print(f"\nJANUS solution: {result.shape} = {result.size} switches "
          f"({'provably minimum' if result.is_provably_minimum else 'approximate'})")
    print(f"LM problems solved along the way: {len(result.attempts)}")

    print("\nswitch assignment (rows connect the top plate to the bottom plate):")
    print(result.assignment.to_text())

    # Independent verification: flood-fill connectivity over all 2^r inputs.
    assert result.assignment.realizes(spec.tt), "checker disagrees!"
    print("\nverified: the lattice realizes the target on every input vector")


if __name__ == "__main__":
    main()
