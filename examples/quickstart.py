#!/usr/bin/env python3
"""Quickstart: synthesize a Boolean function onto a minimal switching lattice.

This walks the full JANUS pipeline on the paper's Fig. 4 worked example,
through the stable public API (:mod:`repro.api`):

1. parse a sum-of-products expression into a target spec (minimized cover
   plus the cover of its dual);
2. inspect the six initial upper-bound constructions and the structural
   lower bound;
3. run the dichotomic SAT search in a :class:`repro.api.Session`;
4. print the resulting switch grid, show the JSON wire form, and
   double-check the lattice with the independent connectivity checker.

Run:  python examples/quickstart.py
"""

from repro import make_spec
from repro.api import RequestOptions, Session, SynthesisResponse
from repro.core import best_upper_bound, structural_lower_bound, ub_ds


def main() -> None:
    # The paper's Section III-B example; published optimum: 3x4.
    expression = "cd + c'd' + abe + a'b'e'"
    spec = make_spec(expression, name="fig4")

    print(f"target function : {expression}")
    print(f"minimized cover : {spec.isop.to_string()}  "
          f"(#pi={spec.num_products}, degree={spec.degree})")
    print(f"dual cover      : {spec.dual_isop.to_string()}  "
          f"(#pi={spec.num_dual_products}, degree={spec.dual_degree})")

    lb = structural_lower_bound(spec)
    print(f"\nstructural lower bound: {lb} switches")

    options = RequestOptions(max_conflicts=60_000)
    _best, bounds = best_upper_bound(spec)
    bounds["ds"] = ub_ds(spec, options.to_janus_options())
    print("initial upper bounds:")
    for method, result in sorted(bounds.items()):
        print(f"  {method:>5}: {result.rows}x{result.cols} = {result.size} switches")

    with Session() as session:
        response = session.synthesize(spec, options=options)
    print(f"\nJANUS solution: {response.shape} = {response.size} switches "
          f"({'provably minimum' if response.provably_minimum else 'approximate'})")
    print(f"LM problems solved along the way: {len(response.attempts)}")

    print("\nswitch assignment (rows connect the top plate to the bottom plate):")
    result = response.result
    print(result.assignment.to_text())

    # The response round-trips through its canonical JSON wire form —
    # what a synthesis service would send back over HTTP.
    wire = response.to_json()
    assert SynthesisResponse.from_json(wire).to_json() == wire
    print(f"\nwire form round-trips ({len(wire)} bytes of canonical JSON)")

    # Independent verification: flood-fill connectivity over all 2^r inputs.
    assert result.assignment.realizes(spec.tt), "checker disagrees!"
    print("verified: the lattice realizes the target on every input vector")


if __name__ == "__main__":
    main()
