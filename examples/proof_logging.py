#!/usr/bin/env python3
"""Certified infeasibility: DRUP proofs for impossible lattice mappings.

When the LM SAT probe answers "unsat", the dichotomic search trusts the
solver and raises the lower bound.  With proof logging on, that trust
becomes checkable: the solver emits a DRUP refutation that an
independent checker (sharing no code with the solver) validates.

This example encodes the claim "f = abcd + a'b'c'd' fits on a 3x3
lattice" — provably false: every top-bottom path of length >= 4 in a
3x3 lattice crosses the centre switch, so the two disjoint 4-literal
products cannot both be realized.  The solver refutes the encoding and
the checker certifies the refutation.

Run:  python examples/proof_logging.py
"""

import io

from repro import make_spec
from repro.core import EncodeOptions, best_encoding
from repro.sat import CdclSolver, check_refutation, write_drat


def main() -> None:
    spec = make_spec("abcd + a'b'c'd'", name="hard")
    encoding, _all_sides = best_encoding(spec, 3, 3, EncodeOptions())
    assert encoding is not None, "structural check should pass on 3x3"
    cnf = encoding.cnf
    print(f"LM encoding: {cnf.num_vars} variables, "
          f"{cnf.num_clauses} clauses ({encoding.side} side)")

    solver = CdclSolver(proof=True)
    for clause in cnf:
        solver.add_clause(clause)
    result = solver.solve()
    print(f"solver verdict: {result.status} "
          f"({result.stats.conflicts} conflicts, "
          f"{result.stats.learned} learnt clauses)")
    assert result.is_unsat, "3x3 must be infeasible for this function"

    proof = solver.proof
    additions = sum(1 for kind, _ in proof if kind == "a")
    deletions = len(proof) - additions
    print(f"proof: {additions} lemmas, {deletions} deletions")

    check = check_refutation(cnf, proof)
    print(f"independent check: {'VALID' if check.valid else check.reason}")
    assert check.valid

    buf = io.StringIO()
    write_drat(proof, buf)
    text = buf.getvalue()
    print(f"\nDRAT file size: {len(text)} bytes; first lines:")
    for line in text.splitlines()[:5]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
