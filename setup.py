"""Build glue for the optional native solver core.

The repository is a plain ``PYTHONPATH=src`` layout and needs no
installation step; this file exists solely to compile the C extension
``repro.sat._native._kernel`` in place::

    python setup.py build_ext --inplace

(or ``make native``).  With ``package_dir = {"": "src"}`` the built
``.so`` lands next to ``src/repro/sat/_native/__init__.py``, where the
auto-detect seam picks it up on the next interpreter start.  Everything
works without it — the pure-Python core is the reference
implementation — so no part of the toolchain requires this to succeed.

The extension is deliberately built WITHOUT ``-ffast-math`` or any
other flag that changes IEEE-754 semantics: the parity guarantee
(byte-identical trajectories between cores) relies on C doubles
behaving exactly like CPython floats.  ``-fexcess-precision=standard``
makes that explicit on targets where the default FPU keeps excess
precision (i386/x87): without it, activity comparisons like ``pa > a``
could see 80-bit intermediates and diverge from the Python twin.  On
x86-64 (SSE2 doubles) the flag is a no-op.
"""

from setuptools import Extension, setup

setup(
    name="repro-native-kernel",
    version="1.5.0",
    package_dir={"": "src"},
    packages=[],
    ext_modules=[
        Extension(
            "repro.sat._native._kernel",
            sources=["src/repro/sat/_native/_kernel.c"],
            extra_compile_args=[
                "-O2",
                "-std=c99",
                # pin double rounding to IEEE-754 on x87 targets; see
                # the module docstring for the parity rationale
                "-fexcess-precision=standard",
            ],
        )
    ],
)
