PYTHON ?= python

.PHONY: native test lint bench clean

# Compile the optional C solver core in place (src/repro/sat/_native/).
# Everything works without it; see docs/architecture.md "Native core".
native:
	$(PYTHON) setup.py build_ext --inplace

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint:
	PYTHONPATH=src:. $(PYTHON) -m tools.janalyze --strict

bench:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_sat.py --throughput --reps 2

clean:
	rm -rf build
	find src -name '*.so' -delete
	find . -name __pycache__ -type d -exec rm -rf {} +
