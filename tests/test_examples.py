"""Smoke tests for the example scripts.

Each example is compiled and its module executed up to (but not
including) ``main()`` — full runs are exercised manually / in benches.
The quickstart's full pipeline *is* executed because it doubles as the
README contract.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")
    assert '"""' in source  # every example carries a docstring header
    assert "def main()" in source


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[[p.name for p in EXAMPLES].index("quickstart.py")])],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "JANUS solution: 3x4" in result.stdout
    assert "verified" in result.stdout


def test_bdd_tour_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[[p.name for p in EXAMPLES].index("bdd_tour.py")])],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "Minato-Morreale ISOP from the BDD: 36 cubes" in result.stdout
    assert "functions verified equal" in result.stdout
