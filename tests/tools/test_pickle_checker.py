"""Pickle-boundary checker: the process-pool seam audit."""

from __future__ import annotations

import textwrap

from tools.janalyze.checkers.pickles import PickleBoundaryChecker


def run(make_project, source: str, roots=None):
    project = make_project(
        {"seam.py": textwrap.dedent(source)},
        config={
            "checkers": {
                "pickle-boundary": {
                    "paths": ["seam.py"],
                    "roots": roots or ["seam.py:Request"],
                }
            }
        },
    )
    return PickleBoundaryChecker().check(project)


GOOD = """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Payload:
        bits: bytes
        rows: int

    @dataclass(frozen=True)
    class Request:
        key: str
        payload: Payload
"""


def test_clean_dataclass_chain_is_quiet(make_project):
    assert run(make_project, GOOD) == []


def test_slots_class_is_accepted(make_project):
    findings = run(
        make_project,
        """\
        class Request:
            __slots__ = ("key",)

            def __init__(self, key):
                self.key = key
        """,
    )
    assert findings == []


def test_plain_class_fires(make_project):
    findings = run(
        make_project,
        """\
        class Request:
            def __init__(self, key):
                self.key = key
        """,
    )
    assert len(findings) == 1
    assert "neither a dataclass nor __slots__" in findings[0].message


def test_callable_field_fires_transitively(make_project):
    # The bad field sits on a class *referenced* by the root, proving
    # the audit follows annotations through the project's own types.
    findings = run(
        make_project,
        """\
        from dataclasses import dataclass
        from typing import Callable

        @dataclass
        class Hook:
            fn: Callable[[int], int]

        @dataclass
        class Request:
            hook: Hook
        """,
    )
    assert len(findings) == 1
    assert "Callable" in findings[0].message
    assert findings[0].symbol == "Hook"


def test_string_annotation_is_followed(make_project):
    findings = run(
        make_project,
        """\
        from dataclasses import dataclass

        class Inner:
            def __init__(self):
                self.x = 1

        @dataclass
        class Request:
            inner: "Inner"
        """,
    )
    assert len(findings) == 1
    assert findings[0].symbol == "Inner"


def test_lambda_default_fires(make_project):
    findings = run(
        make_project,
        """\
        from dataclasses import dataclass

        @dataclass
        class Request:
            key: str = "x"
            pick: object = lambda: 1
        """,
    )
    assert any("lambda" in f.message for f in findings)


def test_nested_class_fires(make_project):
    findings = run(
        make_project,
        """\
        from dataclasses import dataclass

        def factory():
            @dataclass
            class Local:
                x: int
            return Local

        @dataclass
        class Request:
            payload: "Local"
        """,
    )
    assert any("module-level" in f.message for f in findings)


def test_allow_pickle_pragma_exempts(make_project):
    findings = run(
        make_project,
        """\
        class Request:  # janalyze: allow-pickle legacy seam, audited by hand
            def __init__(self, key):
                self.key = key
        """,
    )
    assert findings == []


def test_missing_root_is_a_config_finding(make_project):
    findings = run(make_project, GOOD, roots=["absent.py:Nope"])
    assert len(findings) == 1
    assert "missing" in findings[0].message


def test_real_seam_is_clean(repo_root):
    from tools.janalyze.config import DEFAULT_CONFIG
    from tools.janalyze.project import Project

    project = Project(root=repo_root, config=DEFAULT_CONFIG)
    assert PickleBoundaryChecker().check(project) == []
