"""Lock-discipline checker: true positives and true negatives."""

from __future__ import annotations

import textwrap

from tools.janalyze.checkers.locks import LockDisciplineChecker


def run(make_project, source: str):
    project = make_project(
        {"mod.py": textwrap.dedent(source)},
        config={"checkers": {"lock-discipline": {"paths": ["mod.py"]}}},
    )
    return LockDisciplineChecker().check(project)


CLASS_HEADER = """\
    import threading

    class Pool:
        def __init__(self):
            self._lock = threading.Lock()
            self._closed = False  # guarded-by: _lock
"""


def test_unlocked_access_fires(make_project):
    findings = run(
        make_project,
        CLASS_HEADER
        + """
        def poke(self):
            return self._closed
    """,
    )
    assert len(findings) == 1
    assert "_closed" in findings[0].message
    assert findings[0].symbol == "Pool.poke"


def test_access_under_lock_is_quiet(make_project):
    findings = run(
        make_project,
        CLASS_HEADER
        + """
        def poke(self):
            with self._lock:
                return self._closed
    """,
    )
    assert findings == []


def test_init_is_exempt(make_project):
    # CLASS_HEADER itself assigns _closed in __init__ without the lock.
    findings = run(make_project, CLASS_HEADER)
    assert findings == []


def test_locked_suffix_convention_is_exempt(make_project):
    findings = run(
        make_project,
        CLASS_HEADER
        + """
        def _poke_locked(self):
            return self._closed
    """,
    )
    assert findings == []


def test_holds_lock_pragma_exempts(make_project):
    findings = run(
        make_project,
        CLASS_HEADER
        + """
        def poke(self):  # janalyze: holds-lock _lock
            return self._closed
    """,
    )
    assert findings == []


def test_allow_unlocked_pragma_exempts_one_access(make_project):
    findings = run(
        make_project,
        CLASS_HEADER
        + """
        def poke(self):
            # janalyze: allow-unlocked approximate read for repr only
            return self._closed
    """,
    )
    assert findings == []


def test_closure_resets_held_locks(make_project):
    # A function defined inside the with-block runs later, without the
    # lock: its access must still be flagged.
    findings = run(
        make_project,
        CLASS_HEADER
        + """
        def poke(self):
            with self._lock:
                def later():
                    return self._closed
                return later
    """,
    )
    assert len(findings) == 1
    assert findings[0].symbol == "Pool.poke.later"


def test_write_outside_lock_fires(make_project):
    findings = run(
        make_project,
        CLASS_HEADER
        + """
        def close(self):
            self._closed = True
    """,
    )
    assert len(findings) == 1
    assert findings[0].symbol == "Pool.close"


def test_unannotated_attributes_are_ignored(make_project):
    findings = run(
        make_project,
        """\
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._free = 0

            def poke(self):
                return self._free
        """,
    )
    assert findings == []
