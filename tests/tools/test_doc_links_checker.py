"""Doc-links checker (absorbed from tools/check_docs.py)."""

from __future__ import annotations

from tools.janalyze.checkers.doc_links import DocLinksChecker


def run(make_project, files):
    project = make_project(
        files, config={"checkers": {"doc-links": {"pages": ["docs"]}}}
    )
    return DocLinksChecker().check(project)


def test_broken_relative_link_fires(make_project):
    findings = run(
        make_project, {"docs/index.md": "see [here](missing.md)\n"}
    )
    assert len(findings) == 1
    assert "missing.md" in findings[0].message
    assert findings[0].line == 1


def test_resolving_link_and_anchors_are_quiet(make_project):
    findings = run(
        make_project,
        {
            "docs/index.md": (
                "[other](other.md) [anchored](other.md#sec) "
                "[ext](https://example.com) [frag](#local)\n"
            ),
            "docs/other.md": "content\n",
        },
    )
    assert findings == []


def test_directory_targets_resolve(make_project):
    findings = run(
        make_project,
        {"docs/index.md": "[src](../pkg)\n", "pkg/mod.py": "x = 1\n"},
    )
    assert findings == []


def test_real_docs_have_no_broken_links(repo_root):
    from tools.janalyze.config import DEFAULT_CONFIG
    from tools.janalyze.project import Project

    project = Project(root=repo_root, config=DEFAULT_CONFIG)
    assert DocLinksChecker().check(project) == []
