"""Runner exit codes, the baseline workflow, and the CLI entry points."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.janalyze import runner

BAD_SOURCE = textwrap.dedent(
    """\
    def f():
        try:
            return 1
        except Exception:
            return None
    """
)


@pytest.fixture
def violating_root(tmp_path) -> Path:
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "bad.py").write_text(BAD_SOURCE)
    return tmp_path


def lint(root: Path, *extra: str) -> int:
    return runner.main(
        ["--root", str(root), "--only", "broad-except", *extra]
    )


def test_findings_exit_1(violating_root, capsys):
    assert lint(violating_root) == 1
    out = capsys.readouterr()
    assert "FAIL:" in out.out
    assert "1 finding(s)" in out.err


def test_write_baseline_then_clean_exit_0(violating_root, capsys):
    baseline = violating_root / "baseline.json"
    assert lint(violating_root, "--write-baseline", "--baseline", str(baseline)) == 0
    assert baseline.exists()
    assert lint(violating_root, "--baseline", str(baseline)) == 0
    out = capsys.readouterr()
    assert "1 baselined" in out.out


def test_stale_baseline_fails_only_under_strict(violating_root, capsys):
    baseline = violating_root / "baseline.json"
    lint(violating_root, "--write-baseline", "--baseline", str(baseline))
    # Fix the finding: the baseline entry is now stale.
    (violating_root / "src" / "repro" / "bad.py").write_text("x = 1\n")
    assert lint(violating_root, "--baseline", str(baseline)) == 0
    assert lint(violating_root, "--baseline", str(baseline), "--strict") == 1
    assert "STALE:" in capsys.readouterr().out


def test_json_report_shape(violating_root, capsys):
    assert lint(violating_root, "--json") == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert report["checkers"] == ["broad-except"]
    assert len(report["findings"]) == 1
    assert report["findings"][0]["checker"] == "broad-except"
    assert report["findings"][0]["fingerprint"]


def test_unknown_checker_exit_2(tmp_path):
    assert runner.main(["--root", str(tmp_path), "--only", "nonsense"]) == 2


def test_corrupt_baseline_exit_2(violating_root):
    baseline = violating_root / "baseline.json"
    baseline.write_text('{"version": 99}')
    assert lint(violating_root, "--baseline", str(baseline)) == 2


def test_list_exit_0(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in (
        "lock-discipline",
        "determinism",
        "pickle-boundary",
        "wire-schema",
        "broad-except",
        "doc-links",
    ):
        assert name in out


def test_syntax_error_in_scope_is_a_parse_finding(tmp_path, capsys):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "bad.py").write_text("def broken(:\n")
    assert lint(tmp_path) == 1
    assert "[parse]" in capsys.readouterr().out


def test_find_repo_root_walks_up(repo_root):
    assert runner.find_repo_root(repo_root / "src" / "repro") == repo_root


# ----------------------------------------------------- the repo lints clean
def test_repo_is_clean_with_empty_baseline(repo_root, capsys):
    assert runner.main(["--root", str(repo_root), "--strict"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_module_entry_point(repo_root):
    proc = subprocess.run(
        [sys.executable, "-m", "tools.janalyze", "--strict"],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_check_docs_shim_still_passes(repo_root):
    proc = subprocess.run(
        [sys.executable, "tools/check_docs.py"],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
