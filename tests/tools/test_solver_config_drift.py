"""Drift tripwire: SolverConfig fields vs cache keys vs documentation.

A new knob on :class:`repro.sat.solver.SolverConfig` only works end to
end when it (a) participates in the probe cache key — otherwise two
differently-tuned runs can serve each other stale answers — and (b) is
documented in the wire schema page, which the janalyze wire-schema
checker gates on.  This test fails the moment a field is added to the
dataclass without both.
"""

from __future__ import annotations

import dataclasses

from repro.core.janus import JanusOptions
from repro.engine.signature import options_fingerprint
from repro.engine.wire import solver_config_to_wire
from repro.sat.solver import SOLVER_PRESETS, SolverConfig


def config_field_names() -> set[str]:
    return {f.name for f in dataclasses.fields(SolverConfig)}


def test_every_field_reaches_the_options_fingerprint():
    fingerprint = options_fingerprint(JanusOptions())
    assert "solver_config" in fingerprint
    assert set(fingerprint["solver_config"]) == config_field_names()


def test_every_field_reaches_the_wire_block():
    # Any non-default config serializes every field explicitly; a field
    # missing from the dict literal would silently drop its tuning on
    # the wire (and the janalyze harvest of that literal would miss it).
    tuned = dataclasses.replace(SolverConfig(), restart_base=7)
    assert set(solver_config_to_wire(tuned)) == config_field_names()


def test_every_field_is_documented(repo_root):
    import re

    doc = (repo_root / "docs" / "wire-schema.md").read_text(encoding="utf-8")
    words = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", doc))
    missing = config_field_names() - words
    assert not missing, (
        f"SolverConfig fields undocumented in docs/wire-schema.md: "
        f"{sorted(missing)}"
    )
    # The stats tally and the block name itself are part of the schema.
    assert "solver_config" in words
    assert "preset_wins" in words


def test_every_preset_is_documented(repo_root):
    import re

    readme = (repo_root / "README.md").read_text(encoding="utf-8")
    words = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", readme))
    missing = set(SOLVER_PRESETS) - words
    assert not missing, (
        f"solver presets missing from the README tuning section: "
        f"{sorted(missing)}"
    )
