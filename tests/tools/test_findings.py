"""Finding fingerprints and the baseline grandfathering workflow."""

from __future__ import annotations

from tools.janalyze.findings import Baseline, Finding


def make(line: int = 10, message: str = "boom") -> Finding:
    return Finding(
        checker="broad-except",
        path="src/repro/x.py",
        line=line,
        message=message,
        symbol="X.run",
    )


class TestFingerprint:
    def test_stable_across_line_renumbering(self):
        # Baselines must survive unrelated edits above the finding.
        assert make(line=10).fingerprint == make(line=99).fingerprint

    def test_sensitive_to_message_and_location(self):
        assert make().fingerprint != make(message="other").fingerprint
        other_file = Finding("broad-except", "src/repro/y.py", 10, "boom")
        assert make().fingerprint != other_file.fingerprint

    def test_wire_form_carries_fingerprint(self):
        wire = make().to_wire()
        assert wire["fingerprint"] == make().fingerprint
        assert wire["path"] == "src/repro/x.py"

    def test_render_omits_line_zero(self):
        project_level = Finding("wire-schema", "docs/x.md", 0, "missing")
        assert project_level.render().startswith("docs/x.md: ")
        assert make().render().startswith("src/repro/x.py:10: ")


class TestBaseline:
    def test_split_new_vs_suppressed_vs_stale(self):
        grandfathered = make(message="old")
        baseline = Baseline.from_findings([grandfathered, make(message="gone")])
        new, suppressed, stale = baseline.split(
            [grandfathered, make(message="fresh")]
        )
        assert [f.message for f in new] == ["fresh"]
        assert [f.message for f in suppressed] == ["old"]
        assert len(stale) == 1 and stale[0]["message"] == "gone"

    def test_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([make()]).save(path)
        loaded = Baseline.load(path)
        assert make().fingerprint in loaded.entries
        new, suppressed, stale = loaded.split([make()])
        assert not new and not stale and len(suppressed) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}
        assert Baseline.load(None).entries == {}

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        try:
            Baseline.load(path)
        except ValueError as exc:
            assert "version" in str(exc)
        else:
            raise AssertionError("expected ValueError")
