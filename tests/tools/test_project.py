"""Pragma/guard parsing and the Project source model."""

from __future__ import annotations

import textwrap

from tools.janalyze.pragmas import parse_guards, parse_pragmas


def test_parse_pragmas_extracts_directive_and_reason():
    lines = [
        "x = 1",
        "try:  # janalyze: allow-broad-except callbacks must not raise",
        "    pass  # janalyze: allow-unlocked",
    ]
    pragmas = parse_pragmas(lines)
    assert pragmas[2].directive == "allow-broad-except"
    assert pragmas[2].reason == "callbacks must not raise"
    assert pragmas[3].directive == "allow-unlocked"
    assert pragmas[3].reason == ""
    assert 1 not in pragmas


def test_parse_guards_maps_line_to_lock():
    lines = [
        "self._lock = threading.Lock()",
        "self._data = {}  # guarded-by: _lock",
    ]
    assert parse_guards(lines) == {2: "_lock"}


def test_pragma_for_line_accepts_comment_block_above(make_project):
    project = make_project(
        {
            "a.py": textwrap.dedent(
                """\
                # janalyze: allow-broad-except handler must record
                # every failure as an error envelope
                x = 1
                y = 2
                """
            )
        }
    )
    sf = project.source("a.py")
    assert sf.pragma_for_line("allow-broad-except", 3) is not None
    # A blank line breaks the contiguous block: line 4 is not covered
    # via line 3's code line (only comments chain upward).
    assert sf.pragma_for_line("allow-broad-except", 4) is None


def test_syntax_error_is_recorded_not_raised(make_project):
    project = make_project({"bad.py": "def broken(:\n"})
    sf = project.source("bad.py")
    assert sf.syntax_error is not None


def test_python_files_skips_missing_scopes_and_pycache(make_project):
    project = make_project(
        {
            "pkg/mod.py": "x = 1\n",
            "pkg/__pycache__/mod.py": "x = 1\n",
        }
    )
    rels = [sf.rel for sf in project.python_files(["pkg", "nonexistent"])]
    assert rels == ["pkg/mod.py"]
