"""Determinism checker: forbidden sources fire, sanctioned seams don't."""

from __future__ import annotations

import textwrap

from tools.janalyze.checkers.determinism import DeterminismChecker


def run(make_project, source: str):
    project = make_project(
        {"core.py": textwrap.dedent(source)},
        config={"checkers": {"determinism": {"paths": ["core.py"]}}},
    )
    return DeterminismChecker().check(project)


def test_time_time_call_fires(make_project):
    findings = run(
        make_project,
        """\
        import time

        def stamp():
            return time.time()
        """,
    )
    assert len(findings) == 1
    assert "time.time()" in findings[0].message


def test_aliased_import_is_resolved(make_project):
    findings = run(
        make_project,
        """\
        from os import urandom as entropy

        def salt():
            return entropy(8)
        """,
    )
    assert len(findings) == 1
    assert "os.urandom" in findings[0].message


def test_random_prefix_fires(make_project):
    findings = run(
        make_project,
        """\
        import random

        def shuffle(xs):
            random.shuffle(xs)
        """,
    )
    assert len(findings) == 1


def test_monotonic_timer_is_sanctioned(make_project):
    findings = run(
        make_project,
        """\
        import time

        def elapsed(start):
            return time.monotonic() - start
        """,
    )
    assert findings == []


def test_referencing_without_calling_is_the_injection_seam(make_project):
    # ``now=time.time`` default parameters hand control to the caller;
    # only *calls* inject nondeterminism.
    findings = run(
        make_project,
        """\
        import time

        def run(now=time.time):
            return now()
        """,
    )
    assert findings == []


def test_pragma_suppresses(make_project):
    findings = run(
        make_project,
        """\
        import time

        def stamp():
            # janalyze: allow-determinism cache-entry mtime, not identity
            return time.time()
        """,
    )
    assert findings == []


def test_for_loop_over_set_fires(make_project):
    findings = run(
        make_project,
        """\
        def emit(items):
            for item in set(items):
                yield item
        """,
    )
    assert len(findings) == 1
    assert "set" in findings[0].message


def test_sorted_set_is_fine(make_project):
    findings = run(
        make_project,
        """\
        def emit(items):
            for item in sorted(set(items)):
                yield item
        """,
    )
    assert findings == []


def test_list_conversion_of_set_literal_fires(make_project):
    findings = run(
        make_project,
        """\
        def pair(a, b):
            return list({a, b})
        """,
    )
    assert len(findings) == 1


def test_join_over_set_comprehension_fires(make_project):
    findings = run(
        make_project,
        """\
        def render(xs):
            return ",".join({str(x) for x in xs})
        """,
    )
    assert len(findings) == 1


def test_membership_use_of_set_is_fine(make_project):
    findings = run(
        make_project,
        """\
        def keep(xs, allowed):
            wanted = set(allowed)
            return [x for x in xs if x in wanted]
        """,
    )
    assert findings == []


def test_real_scope_is_clean(repo_root):
    from tools.janalyze.config import DEFAULT_CONFIG
    from tools.janalyze.project import Project

    project = Project(root=repo_root, config=DEFAULT_CONFIG)
    assert DeterminismChecker().check(project) == []


def test_gen_package_is_in_default_scope(make_project):
    # A true positive inside src/repro/gen with no config at all: the
    # generator package is part of the checker's *default* scope.
    import textwrap as tw

    project = make_project(
        {
            "src/repro/gen/bad.py": tw.dedent(
                """\
                import os

                def salt():
                    return os.urandom(8)
                """
            )
        }
    )
    findings = DeterminismChecker().check(project)
    assert len(findings) == 1
    assert "os.urandom" in findings[0].message


def test_unseeded_default_rng_fires(make_project):
    findings = run(
        make_project,
        """\
        import numpy as np

        def draw():
            return np.random.default_rng().integers(0, 4)
        """,
    )
    assert len(findings) == 1
    assert "unseeded" in findings[0].message
    assert "OS entropy" in findings[0].message


def test_seeded_default_rng_is_sanctioned(make_project):
    findings = run(
        make_project,
        """\
        import numpy as np

        def draw(seed):
            return np.random.default_rng((0x4A414E55, seed)).integers(0, 4)
        """,
    )
    assert findings == []


def test_seeded_random_constructor_is_sanctioned(make_project):
    findings = run(
        make_project,
        """\
        import random

        def stream(seed):
            return random.Random(seed)

        def bad_stream():
            return random.Random()
        """,
    )
    assert len(findings) == 1
    assert "unseeded random.Random()" in findings[0].message
