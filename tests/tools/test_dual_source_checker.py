"""Dual-source-drift checker: seam discipline and twin completeness."""

from __future__ import annotations

import textwrap

from tools.janalyze.checkers.dual_source import DualSourceDriftChecker

SOLVER_OK = """\
CORE_INTERFACE = ("propagate", "backtrack")
"""

PURE_OK = """\
class PurePythonCore:
    def propagate(self):
        pass

    def backtrack(self, level):
        pass
"""

SEAM_OK = """\
NativeCore = None
try:
    from repro.sat._native._kernel import NativeCore
except ImportError:
    pass
"""

KERNEL_OK = """\
static PyMethodDef methods[] = {
    {"propagate", 0, 0, 0},
    {"backtrack", 0, 0, 0},
};
"""

PARITY_OK = """\
import pytest

@pytest.mark.parametrize("core", ["pure", "native"])
def test_parity(core):
    pass
"""

LAYOUT = {
    "src/repro/sat/solver.py": SOLVER_OK,
    "src/repro/sat/core_pure.py": PURE_OK,
    "src/repro/sat/_native/__init__.py": SEAM_OK,
    "src/repro/sat/_native/_kernel.c": KERNEL_OK,
    "tests/sat/test_native_parity.py": PARITY_OK,
}


def run(make_project, overrides=None, drop=()):
    files = {rel: textwrap.dedent(text) for rel, text in LAYOUT.items()}
    files.update(overrides or {})
    for rel in drop:
        del files[rel]
    project = make_project(
        files,
        config={"checkers": {"dual-source-drift": {"paths": ["src/repro"]}}},
    )
    return DualSourceDriftChecker().check(project)


def test_clean_layout_passes(make_project):
    assert run(make_project) == []


def test_unguarded_seam_import_fires(make_project):
    findings = run(
        make_project,
        overrides={
            "src/repro/sat/_native/__init__.py": (
                "from repro.sat._native._kernel import NativeCore\n"
            )
        },
    )
    assert any("try/except ImportError" in f.message for f in findings)


def test_kernel_import_outside_seam_fires(make_project):
    findings = run(
        make_project,
        overrides={
            "src/repro/sat/rogue.py": (
                "from repro.sat._native import _kernel\n"
            )
        },
    )
    assert any("outside the seam" in f.message for f in findings)


def test_core_pure_importing_native_fires(make_project):
    findings = run(
        make_project,
        overrides={
            "src/repro/sat/core_pure.py": (
                "from repro.sat import _native\n" + PURE_OK
            )
        },
    )
    assert any("always-available fallback" in f.message for f in findings)


def test_method_missing_from_pure_twin_fires(make_project):
    findings = run(
        make_project,
        overrides={
            "src/repro/sat/core_pure.py": (
                "class PurePythonCore:\n    def propagate(self):\n"
                "        pass\n"
            )
        },
    )
    assert any(
        "missing from PurePythonCore" in f.message and f.symbol == "backtrack"
        for f in findings
    )


def test_method_missing_from_kernel_fires(make_project):
    findings = run(
        make_project,
        overrides={
            "src/repro/sat/_native/_kernel.c": (
                '{"propagate", 0, 0, 0},\n'
            )
        },
    )
    assert any(
        "missing from the native kernel" in f.message
        and f.symbol == "backtrack"
        for f in findings
    )


def test_parity_suite_dropping_a_core_fires(make_project):
    findings = run(
        make_project,
        overrides={
            "tests/sat/test_native_parity.py": (
                "def test_parity():\n    core = 'pure'\n"
            )
        },
    )
    assert any("'native' core" in f.message for f in findings)


def test_missing_parity_suite_fires(make_project):
    findings = run(make_project, drop=("tests/sat/test_native_parity.py",))
    assert any("parity suite missing" in f.message for f in findings)


def test_real_repo_is_clean(repo_root):
    from tools.janalyze.config import DEFAULT_CONFIG
    from tools.janalyze.project import Project

    project = Project(root=repo_root, config=DEFAULT_CONFIG)
    assert DualSourceDriftChecker().check(project) == []
