"""Wire-schema checker: field sync, EVENT_KINDS, error statuses.

Includes the absorption coverage for the retired ``tools/check_docs.py``
script: the real repo's schema sources must parse into non-empty field
sets and the checker must pass on the tree as committed.
"""

from __future__ import annotations

import textwrap

from tools.janalyze.checkers.wire_schema import (
    WireSchemaChecker,
    expected_fields,
)

DOC_WORDS = (
    "`rows` `cols` `cells` `num_vars` `jobs` `target` `result` "
    "`requests` `responses` `probe_started` `name`  `solver_calls` "
    "`restart_base`\n"
)


def fixture_files() -> dict[str, str]:
    return {
        "src/repro/engine/wire.py": textwrap.dedent(
            """\
            def attempt_to_wire(a):
                return {"rows": a.rows, "cols": a.cols}

            def assignment_to_wire(a):
                return {"cells": a.cells}

            def spec_snapshot(t):
                return {"num_vars": t.num_vars}

            def solver_config_to_wire(c):
                return {"restart_base": c.restart_base}
            """
        ),
        "src/repro/api/schema.py": textwrap.dedent(
            """\
            class RequestOptions:
                def to_wire(self):
                    return {"jobs": self.jobs}

            class SynthesisRequest:
                def to_wire(self):
                    return {"target": self.target}

            class SynthesisResponse:
                def to_wire(self):
                    return {"result": self.result}

            class BatchRequest:
                def to_wire(self):
                    return {"requests": self.requests}

            class BatchResponse:
                def to_wire(self):
                    return {"responses": self.responses}
            """
        ),
        "src/repro/engine/events.py": textwrap.dedent(
            """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class EngineEvent:
                name: str

            @dataclass(frozen=True)
            class ProbeStarted(EngineEvent):
                rows: int

            EVENT_KINDS = {"probe_started": ProbeStarted}
            """
        ),
        "src/repro/engine/parallel.py": textwrap.dedent(
            """\
            from dataclasses import dataclass

            @dataclass
            class EngineStats:
                solver_calls: int = 0
            """
        ),
        "docs/wire-schema.md": DOC_WORDS,
    }


def run(make_project, files):
    return WireSchemaChecker().check(make_project(files))


def test_synced_fixture_is_quiet(make_project):
    assert run(make_project, fixture_files()) == []


def test_undocumented_field_fires(make_project):
    files = fixture_files()
    files["docs/wire-schema.md"] = DOC_WORDS.replace("`cols` ", "")
    findings = run(make_project, files)
    assert len(findings) == 1
    assert "'cols'" in findings[0].message


def test_unregistered_event_class_fires(make_project):
    files = fixture_files()
    files["src/repro/engine/events.py"] += textwrap.dedent(
        """\

        @dataclass(frozen=True)
        class BoundComputed(EngineEvent):
            rows: int
        """
    )
    findings = run(make_project, files)
    assert any(
        "not registered in EVENT_KINDS" in f.message
        and f.symbol == "BoundComputed"
        for f in findings
    )


def test_event_field_collision_fires(make_project):
    files = fixture_files()
    files["src/repro/engine/events.py"] = files[
        "src/repro/engine/events.py"
    ].replace("    rows: int", "    rows: int\n    event: str")
    files["docs/wire-schema.md"] = DOC_WORDS + "`event`\n"
    findings = run(make_project, files)
    assert len(findings) == 1
    assert "collides with the wire tag" in findings[0].message


def test_undocumented_event_tag_fires(make_project):
    files = fixture_files()
    files["docs/wire-schema.md"] = DOC_WORDS.replace("probe_started", "redacted")
    findings = run(make_project, files)
    assert any(
        "tag 'probe_started' is not documented" in f.message
        for f in findings
    )


def test_missing_schema_source_is_reported(make_project):
    files = fixture_files()
    del files["src/repro/engine/parallel.py"]
    findings = run(make_project, files)
    assert len(findings) == 1
    assert "missing" in findings[0].message


def test_undocumented_status_fires(make_project):
    files = fixture_files()
    files["src/repro/server/protocol.py"] = textwrap.dedent(
        """\
        def status_for_exception(exc):
            if isinstance(exc, ValueError):
                return 400
            return 500
        """
    )
    files["docs/server.md"] = "400 means a bad request\n"
    findings = run(make_project, files)
    assert len(findings) == 1
    assert "error status 500" in findings[0].message


def test_documented_statuses_are_quiet(make_project):
    files = fixture_files()
    files["src/repro/server/protocol.py"] = textwrap.dedent(
        """\
        def status_for_exception(exc):
            return 500
        """
    )
    files["docs/server.md"] = "500 means a server bug\n"
    assert run(make_project, files) == []


# ------------------------------------------------- absorption: the real repo
def real_project(repo_root):
    from tools.janalyze.config import DEFAULT_CONFIG
    from tools.janalyze.project import Project

    return Project(root=repo_root, config=DEFAULT_CONFIG)


def test_real_repo_field_harvest_is_nonempty(repo_root):
    harvested = expected_fields(real_project(repo_root))
    assert len(harvested) == 12
    for source, fields in harvested.items():
        assert fields, f"harvested no fields from {source}"


def test_real_repo_schema_is_synced(repo_root):
    assert WireSchemaChecker().check(real_project(repo_root)) == []
