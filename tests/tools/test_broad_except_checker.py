"""Broad-except checker: pragmas, re-raises, narrow handlers."""

from __future__ import annotations

import textwrap

from tools.janalyze.checkers.broad_except import BroadExceptChecker


def run(make_project, source: str):
    project = make_project(
        {"mod.py": textwrap.dedent(source)},
        config={"checkers": {"broad-except": {"paths": ["mod.py"]}}},
    )
    return BroadExceptChecker().check(project)


def test_unjustified_broad_except_fires(make_project):
    findings = run(
        make_project,
        """\
        def f():
            try:
                return 1
            except Exception:
                return None
        """,
    )
    assert len(findings) == 1
    assert "except Exception" in findings[0].message


def test_bare_except_fires(make_project):
    findings = run(
        make_project,
        """\
        def f():
            try:
                return 1
            except:
                return None
        """,
    )
    assert len(findings) == 1
    assert "bare" in findings[0].message


def test_base_exception_in_tuple_fires(make_project):
    findings = run(
        make_project,
        """\
        def f():
            try:
                return 1
            except (ValueError, BaseException):
                return None
        """,
    )
    assert len(findings) == 1


def test_narrow_handler_is_quiet(make_project):
    findings = run(
        make_project,
        """\
        def f():
            try:
                return 1
            except (ValueError, KeyError):
                return None
        """,
    )
    assert findings == []


def test_reraise_exempts(make_project):
    findings = run(
        make_project,
        """\
        def f(log):
            try:
                return 1
            except Exception:
                log.error("failed")
                raise
        """,
    )
    assert findings == []


def test_pragma_with_reason_exempts(make_project):
    findings = run(
        make_project,
        """\
        def f():
            try:
                return 1
            # janalyze: allow-broad-except top-level handler must return
            # an error envelope for any failure
            except Exception:
                return None
        """,
    )
    assert findings == []


def test_pragma_without_reason_is_itself_a_finding(make_project):
    findings = run(
        make_project,
        """\
        def f():
            try:
                return 1
            except Exception:  # janalyze: allow-broad-except
                return None
        """,
    )
    assert len(findings) == 1
    assert "no reason" in findings[0].message


def test_every_repo_site_is_narrowed_or_justified(repo_root):
    from tools.janalyze.config import DEFAULT_CONFIG
    from tools.janalyze.project import Project

    project = Project(root=repo_root, config=DEFAULT_CONFIG)
    assert BroadExceptChecker().check(project) == []
