"""Fixtures for the janalyze test suite.

The analyzer lives in ``tools/`` (not ``src/``) so the repo root must be
importable; tests otherwise run with ``PYTHONPATH=src`` only.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.janalyze.project import Project  # noqa: E402


@pytest.fixture
def repo_root() -> Path:
    return REPO_ROOT


@pytest.fixture
def make_project(tmp_path):
    """Build a throwaway project tree from ``{relpath: source}``.

    Returns a ready :class:`Project`; per-checker config can be passed
    as ``config={"checkers": {...}}``.
    """

    def build(files: dict[str, str], config: dict | None = None) -> Project:
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
        return Project(root=tmp_path, config=config or {})

    return build
