"""Backend registry tests: lookup, aliases, unknown names, custom backends."""

import pytest

from repro.api import (
    REGISTRY,
    BackendContext,
    BackendRegistry,
    RequestOptions,
    Session,
    backend_names,
    get_backend,
)
from repro.core.janus import JanusOptions, SynthesisResult, make_spec, synthesize
from repro.errors import UnknownBackendError, ValidationError


class TestDefaultRegistry:
    def test_expected_backends_registered(self):
        names = backend_names()
        for expected in (
            "janus", "eager", "cegar", "portfolio",
            "exact", "approx", "heuristic", "pcircuit",
        ):
            assert expected in names

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        assert "janus" in message  # the error lists what IS available

    def test_eager_is_an_alias_for_janus(self):
        assert get_backend("eager") is get_backend("janus")

    def test_janus_backend_runs_without_a_session(self):
        spec = make_spec("ab + a'b'")
        options = JanusOptions(max_conflicts=20_000)
        result = get_backend("janus").run(spec, options, BackendContext())
        baseline = synthesize(spec, options=options)
        assert result.assignment.entries == baseline.assignment.entries

    def test_portfolio_without_session_raises(self):
        spec = make_spec("ab")
        with pytest.raises(ValidationError):
            get_backend("portfolio").run(
                spec, JanusOptions(max_conflicts=100), BackendContext()
            )


class TestCustomRegistry:
    class _EchoBackend:
        """Returns whatever the janus backend returns, tagged."""

        name = "echo"

        def run(self, spec, options, context):
            result = get_backend("janus").run(spec, options, context)
            result.method = "echo"
            return result

    def test_register_and_resolve(self):
        registry = BackendRegistry()
        backend = self._EchoBackend()
        registry.register(backend, "repeat")
        assert registry.get("echo") is backend
        assert registry.get("repeat") is backend
        assert "echo" in registry

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry()
        registry.register(self._EchoBackend())
        with pytest.raises(ValidationError):
            registry.register(self._EchoBackend())
        registry.register(self._EchoBackend(), replace=True)  # explicit wins

    def test_custom_backend_through_session(self):
        registry = BackendRegistry()
        registry.register(self._EchoBackend())
        registry.register(get_backend("janus"))  # sessions still need janus
        with Session(registry=registry) as session:
            response = session.synthesize(
                "ab + a'b'",
                backend="echo",
                options=RequestOptions(max_conflicts=20_000),
            )
        assert response.method == "echo"
        assert isinstance(response.result, SynthesisResult)

    def test_default_registry_is_shared(self):
        assert REGISTRY.get("janus") is get_backend("janus")
