"""Schema tests: validation on construction, canonical JSON round-trips."""

import json

import pytest

from repro.api import (
    API_VERSION,
    BatchRequest,
    BatchResponse,
    RequestOptions,
    SynthesisRequest,
    SynthesisResponse,
)
from repro.boolf.parse import parse_sop
from repro.core.janus import JanusOptions, synthesize
from repro.core.target import TargetSpec
from repro.errors import ValidationError


@pytest.fixture
def opts():
    return RequestOptions(max_conflicts=20_000)


class TestRequestOptions:
    def test_janus_options_round_trip(self):
        ro = RequestOptions(
            max_conflicts=123,
            time_limit=4.5,
            ub_methods=("dp", "ps"),
            sides=("primal",),
            ds_depth=0,
            verify=False,
            trim=False,
            max_lattice_products=99,
            exact=False,
        )
        jo = ro.to_janus_options()
        assert jo.max_conflicts == 123
        assert jo.lm_time_limit == 4.5
        assert jo.ub_methods == ("dp", "ps")
        assert jo.sides == ("primal",)
        assert jo.trim_solutions is False
        assert jo.exact_minimization is False
        assert RequestOptions.from_janus_options(jo) == ro

    def test_default_matches_janus_defaults(self):
        assert RequestOptions().to_janus_options() == JanusOptions()

    def test_wire_round_trip(self):
        ro = RequestOptions(max_conflicts=7, ub_methods=("dp",))
        assert RequestOptions.from_wire(ro.to_wire()) == ro

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_conflicts": 0},
            {"max_conflicts": "lots"},
            {"time_limit": -1.0},
            {"time_limit": 0},
            {"ub_methods": ("dp", "warp")},
            {"sides": ()},
            {"sides": ("sideways",)},
            {"ds_depth": -1},
            {"max_lattice_products": 0},
        ],
    )
    def test_invalid_options_raise_on_construction(self, kwargs):
        with pytest.raises(ValidationError):
            RequestOptions(**kwargs)

    def test_unknown_wire_field_rejected(self):
        with pytest.raises(ValidationError):
            RequestOptions.from_wire({"max_conflicts": 5, "turbo": True})


class TestSynthesisRequest:
    def test_json_round_trip_exact(self, opts):
        req = SynthesisRequest.from_target(
            "ab + a'c", name="g", backend="exact", options=opts
        )
        text = req.to_json()
        again = SynthesisRequest.from_json(text)
        assert again == req
        assert again.to_json() == text

    def test_canonical_json_is_stable(self, opts):
        req = SynthesisRequest.from_target("ab", options=opts)
        assert req.to_json() == req.to_json()
        # canonical form: sorted keys, no whitespace
        assert '" :' not in req.to_json() and ", " not in req.to_json()

    def test_target_forms_build_equivalent_specs(self, opts):
        sop = parse_sop("ab + a'c")
        tt = sop.to_truthtable()
        spec = TargetSpec.from_truthtable(tt, name="f")
        reqs = [
            SynthesisRequest.from_target("ab + a'c", options=opts),
            SynthesisRequest.from_target(sop, options=opts),
            SynthesisRequest.from_target(tt, options=opts),
            SynthesisRequest.from_target(spec, options=opts),
        ]
        tables = {req.to_spec().tt.values.tobytes() for req in reqs}
        assert len(tables) == 1

    def test_truthtable_target_round_trips_through_wire(self, opts):
        tt = parse_sop("abc + a'd").to_truthtable()
        req = SynthesisRequest.from_target(tt, options=opts)
        again = SynthesisRequest.from_json(req.to_json())
        assert again.to_spec().tt.values.tolist() == tt.values.tolist()

    def test_spec_name_is_picked_up(self, opts):
        spec = TargetSpec.from_string("ab", name="alu_bit")
        req = SynthesisRequest.from_target(spec, options=opts)
        assert req.name == "alu_bit"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target": {"form": "sop", "expression": "  "}},
            {"target": {"form": "warp"}},
            {"target": "ab"},  # raw strings must go through from_target
            {"target": {"form": "truthtable", "num_vars": 2, "on": "zz"}},
            {"target": {"form": "sop", "expression": "ab"}, "name": ""},
            {"target": {"form": "sop", "expression": "ab"}, "backend": ""},
        ],
    )
    def test_invalid_requests_raise(self, kwargs):
        with pytest.raises(ValidationError):
            SynthesisRequest(**kwargs)

    def test_wrong_kind_rejected(self, opts):
        wire = SynthesisRequest.from_target("ab", options=opts).to_wire()
        wire["kind"] = "synthesis_response"
        with pytest.raises(ValidationError):
            SynthesisRequest.from_wire(wire)

    def test_future_api_version_rejected(self, opts):
        wire = SynthesisRequest.from_target("ab", options=opts).to_wire()
        wire["api"] = API_VERSION + 1
        with pytest.raises(ValidationError):
            SynthesisRequest.from_wire(wire)

    def test_bad_json_rejected(self):
        with pytest.raises(ValidationError):
            SynthesisRequest.from_json("{ not json")


class TestSynthesisResponse:
    def test_json_round_trip_exact(self):
        result = synthesize(
            "cd + c'd' + abe", options=JanusOptions(max_conflicts=20_000)
        )
        response = SynthesisResponse.from_result(result, backend="janus")
        text = response.to_json()
        again = SynthesisResponse.from_json(text)
        # The acceptance-criteria identity: from_json(to_json) is exact.
        assert again.to_json() == text
        assert again.entries == response.entries
        assert again.shape == response.shape
        assert again.result is None  # live result never crosses the wire

    def test_to_result_rebuilds_the_lattice(self):
        spec = TargetSpec.from_string("ab + a'b'c")
        result = synthesize(spec, options=JanusOptions(max_conflicts=20_000))
        response = SynthesisResponse.from_result(result)
        again = SynthesisResponse.from_json(response.to_json())
        rebuilt = again.to_result(spec)
        assert rebuilt.assignment.entries == result.assignment.entries
        assert rebuilt.size == result.size
        assert [a.rows for a in rebuilt.attempts] == [
            a.rows for a in result.attempts
        ]

    def test_malformed_response_raises(self):
        with pytest.raises(ValidationError):
            SynthesisResponse.from_wire(
                {"api": 1, "kind": "synthesis_response", "rows": 2}
            )


class TestBatch:
    def test_batch_request_round_trip(self, opts):
        batch = BatchRequest(
            requests=(
                SynthesisRequest.from_target("ab", options=opts),
                SynthesisRequest.from_target(
                    "ab + cd", backend="heuristic", options=opts
                ),
            )
        )
        text = batch.to_json()
        again = BatchRequest.from_json(text)
        assert again == batch
        assert again.to_json() == text

    def test_empty_batch_rejected(self):
        with pytest.raises(ValidationError):
            BatchRequest(requests=())

    def test_batch_response_round_trip(self):
        o = JanusOptions(max_conflicts=20_000)
        responses = [
            SynthesisResponse.from_result(synthesize(e, options=o))
            for e in ("ab + a'b'", "ab + cd")
        ]
        batch = BatchResponse(responses=responses, wall_time=1.25)
        text = batch.to_json()
        again = BatchResponse.from_json(text)
        assert again.to_json() == text
        assert [r.size for r in again] == [r.size for r in responses]

    def test_wire_envelope_present(self, opts):
        wire = json.loads(
            BatchRequest(
                requests=(SynthesisRequest.from_target("ab", options=opts),)
            ).to_json()
        )
        assert wire["api"] == API_VERSION
        assert wire["kind"] == "batch_request"
