"""Session tests: byte-identity with the serial path, batches, events."""

import dataclasses

import pytest

from repro.api import (
    BatchRequest,
    BoundComputed,
    CacheEvent,
    ProbeFinished,
    RequestOptions,
    Session,
    SynthesisFinished,
    SynthesisRequest,
    SynthesisStarted,
    run_batch,
    synthesize as api_synthesize,
)
from repro.core.baselines import exact_search
from repro.core.janus import JanusOptions, make_spec, synthesize

EXPRESSIONS = ["ab + a'b'c", "cd + c'd' + abe", "ab + cd"]


@pytest.fixture
def opts():
    return RequestOptions(max_conflicts=20_000)


@pytest.fixture
def jopts():
    return JanusOptions(max_conflicts=20_000)


class TestByteIdentity:
    def test_session_matches_serial_path(self, opts, jopts):
        # The acceptance criterion: Session.synthesize is configuration
        # around the same search; lattices are byte-identical.
        serial = [synthesize(e, options=jopts) for e in EXPRESSIONS]
        with Session() as session:
            responses = [
                session.synthesize(e, options=opts) for e in EXPRESSIONS
            ]
        for s, r in zip(serial, responses):
            assert r.size == s.size
            assert r.shape == s.shape
            assert r.lower_bound == s.lower_bound
            assert r.result.assignment.entries == s.assignment.entries
            assert [(a["rows"], a["cols"], a["status"]) for a in r.attempts] \
                == [(a.rows, a.cols, a.status) for a in s.attempts]

    def test_run_batch_matches_serial_path(self, opts, jopts):
        serial = [synthesize(e, options=jopts) for e in EXPRESSIONS]
        batch = BatchRequest(
            requests=tuple(
                SynthesisRequest.from_target(e, options=opts)
                for e in EXPRESSIONS
            )
        )
        with Session() as session:
            response = session.run_batch(batch)
        assert len(response) == len(EXPRESSIONS)
        for s, r in zip(serial, response):
            assert r.result.assignment.entries == s.assignment.entries
            assert r.size == s.size

    def test_prepared_request_and_raw_target_agree(self, opts):
        request = SynthesisRequest.from_target(EXPRESSIONS[0], options=opts)
        with Session() as session:
            a = session.synthesize(request)
            b = session.synthesize(EXPRESSIONS[0], options=opts)
        assert a.entries == b.entries


class TestBackendsThroughSession:
    def test_exact_backend_matches_direct_call(self, opts, jopts):
        spec = make_spec("ab + a'c + bc'")
        direct = exact_search(spec, options=jopts)
        with Session() as session:
            response = session.synthesize(spec, backend="exact", options=opts)
        assert response.backend == "exact"
        assert response.size == direct.size
        assert response.result.assignment.entries == direct.assignment.entries

    def test_cegar_backend_realizes_the_target(self, opts):
        spec = make_spec(EXPRESSIONS[0])
        with Session() as session:
            response = session.synthesize(spec, backend="cegar", options=opts)
        assert response.method == "cegar"
        assert spec.accepts(
            response.result.assignment.realized_truthtable()
        )

    def test_portfolio_backend_realizes_the_target(self, opts):
        spec = make_spec(EXPRESSIONS[0])
        with Session(jobs=2) as session:
            response = session.synthesize(
                spec, backend="portfolio", options=opts
            )
        assert spec.accepts(
            response.result.assignment.realized_truthtable()
        )

    def test_portfolio_session_defaults_to_portfolio_backend(self, opts):
        with Session(portfolio=True) as session:
            response = session.synthesize(EXPRESSIONS[0], options=opts)
        assert response.backend == "portfolio"

    def test_explicit_janus_overrides_portfolio_session(self, opts, jopts):
        # An explicit deterministic backend must not be routed onto the
        # encoder-racing engine by a session-level portfolio default.
        serial = synthesize(EXPRESSIONS[1], options=jopts)
        with Session(portfolio=True) as session:
            response = session.synthesize(
                EXPRESSIONS[1], backend="janus", options=opts
            )
        assert response.backend == "janus"
        assert response.result.assignment.entries == serial.assignment.entries


class TestLifecycle:
    def test_closed_session_refuses_work(self, opts):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError):
            session.synthesize("ab", options=opts)

    def test_engine_is_reused_across_calls(self, opts):
        with Session() as session:
            session.synthesize(EXPRESSIONS[0], options=opts)
            engine = session._engine
            session.synthesize(EXPRESSIONS[2], options=opts)
            assert session._engine is engine

    def test_one_shot_helpers(self, opts):
        response = api_synthesize(EXPRESSIONS[0], options=opts)
        assert response.size >= 1
        batch = run_batch(
            [SynthesisRequest.from_target(EXPRESSIONS[2], options=opts)]
        )
        assert len(batch) == 1


class TestEventsAndStats:
    def test_event_channel_reports_search_progress(self, opts):
        events = []
        with Session(events=events.append) as session:
            response = session.synthesize(EXPRESSIONS[1], options=opts)
        assert any(isinstance(e, SynthesisStarted) for e in events)
        finished = [e for e in events if isinstance(e, SynthesisFinished)]
        assert len(finished) == 1
        assert finished[0].size == response.size
        probes = [e for e in events if isinstance(e, ProbeFinished)]
        assert len(probes) == len(response.attempts)
        assert any(isinstance(e, BoundComputed) for e in events)

    def test_subscribe_adds_callbacks_late(self, opts):
        events = []
        with Session() as session:
            session.synthesize(EXPRESSIONS[0], options=opts)
            session.subscribe(events.append)
            session.synthesize(EXPRESSIONS[2], options=opts)
        assert any(isinstance(e, SynthesisFinished) for e in events)

    def test_per_request_stats_deltas(self, opts):
        with Session() as session:
            r1 = session.synthesize(EXPRESSIONS[1], options=opts)
            r2 = session.synthesize(EXPRESSIONS[1], options=opts)
        # No cache configured: both runs do the same fresh work, and the
        # delta is per-request, not cumulative.
        assert r1.stats["solver_calls"] == r2.stats["solver_calls"]
        assert r1.stats["solver_calls"] == len(r1.attempts)

    def test_suite_cache_warm_run_through_session(self, tmp_path, opts):
        with Session(cache=tmp_path) as session:
            cold = session.synthesize(EXPRESSIONS[1], options=opts)
        with Session(cache=tmp_path) as session:
            warm = session.synthesize(EXPRESSIONS[1], options=opts)
        assert warm.entries == cold.entries
        assert warm.stats["solver_calls"] == 0
        assert warm.stats["bound_calls"] == 0
        assert warm.stats["suite_hits"] == 1

    def test_cache_events_emitted(self, tmp_path, opts):
        events = []
        with Session(cache=tmp_path, events=events.append) as session:
            session.synthesize(EXPRESSIONS[0], options=opts)
        layers = {e.layer for e in events if isinstance(e, CacheEvent)}
        assert "suite" in layers

    def test_session_stats_merge(self, opts):
        with Session() as session:
            session.synthesize(EXPRESSIONS[1], options=opts)
            stats = session.stats
        assert stats.solver_calls > 0
        assert dataclasses.asdict(stats)["solver_calls"] == stats.solver_calls
