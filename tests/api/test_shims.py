"""Deprecation shims at the old entrypoints, and the no-direct-import rule."""

import pathlib
import re

import pytest

from repro.core.janus import JanusOptions, synthesize as core_synthesize

SRC = pathlib.Path(__file__).resolve().parent.parent.parent / "src" / "repro"


class TestTopLevelSynthesizeShim:
    def test_warns_and_still_works(self):
        import repro

        with pytest.warns(DeprecationWarning, match="repro.api"):
            shimmed = repro.synthesize
        options = JanusOptions(max_conflicts=20_000)
        old = shimmed("ab + a'b'c", options=options)
        new = core_synthesize("ab + a'b'c", options=options)
        assert old.assignment.entries == new.assignment.entries

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_thing


class TestAlgorithmsTableShim:
    def test_warns_and_resolves_through_registry(self):
        from repro.bench import runner

        with pytest.warns(DeprecationWarning, match="get_backend"):
            table = runner.ALGORITHMS
        assert set(table) == {
            "janus", "exact", "approx", "heuristic", "pcircuit"
        }
        options = JanusOptions(max_conflicts=20_000)
        old_style = table["janus"]("ab + a'b'", options=options)
        assert old_style.size == core_synthesize(
            "ab + a'b'", options=options
        ).size

    def test_bench_package_reexport_still_resolves(self):
        import repro.bench

        with pytest.warns(DeprecationWarning):
            table = repro.bench.ALGORITHMS
        assert "janus" in table


class TestNoDirectCoreImports:
    """The acceptance criterion: frontends go through the facade."""

    @pytest.mark.parametrize(
        "relpath", ["cli.py", "bench/runner.py", "bench/tables.py"]
    )
    def test_frontends_do_not_import_core_synthesize(self, relpath):
        source = (SRC / relpath).read_text()
        for line in source.splitlines():
            if "from repro.core.janus import" in line:
                imported = line.split("import", 1)[1]
                assert not re.search(r"\bsynthesize\b", imported), (
                    f"{relpath} still imports core.janus.synthesize: {line!r}"
                )
