"""Family generators: seeded reproducibility and structural guarantees."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.core.autosymmetric import autosymmetry_degree
from repro.core.dreducible import is_dreducible
from repro.gen import FAMILY_KINDS, LEVELS, ladder, make_family
from repro.gen.families import MultiOutputFamily

CHEAP_LEVELS = (0, 1)


@pytest.mark.parametrize("kind", sorted(FAMILY_KINDS))
@pytest.mark.parametrize("level", CHEAP_LEVELS)
def test_sample_is_reproducible_and_valid(kind, level):
    family = make_family(kind, level)
    a = family.sample(7)
    b = family.sample(7)
    assert a.tt.key() == b.tt.key()
    assert a.name == b.name
    # Multi-output samples are named per component ("...#0"); everything
    # else carries the bare instance name.
    assert a.name.startswith(family.instance_name(7))
    assert (a.dc is None) == (b.dc is None)
    if a.dc is not None:
        assert a.dc.key() == b.dc.key()
    a.validate()
    assert not a.tt.is_zero() and not a.tt.is_one()


@pytest.mark.parametrize("kind", sorted(FAMILY_KINDS))
def test_different_seeds_diverge(kind):
    family = make_family(kind, 0)
    keys = {family.sample(seed).tt.key() for seed in range(6)}
    # Tiny level-0 spaces may collide occasionally, but six consecutive
    # seeds collapsing to one function would mean the stream is ignored.
    assert len(keys) > 1


def test_autosymmetric_family_achieves_degree():
    family = make_family("autosymmetric", 1)
    for seed in range(3):
        spec = family.sample(seed)
        assert autosymmetry_degree(spec.tt) >= family.autosymmetry


def test_dreducible_family_is_dreducible():
    family = make_family("d-reducible", 1)
    for seed in range(3):
        assert is_dreducible(family.sample(seed).tt)


def test_pla_cover_dc_is_disjoint_from_onset():
    family = make_family("pla-cover", 3)  # dc_fraction > 0 at this level
    spec = family.sample(0)
    if spec.dc is not None:
        assert not (spec.tt & spec.dc).values.any()


def test_multi_output_family_names_outputs():
    family = make_family("multi-output", 0)
    outputs = family.sample_outputs(4)
    assert len(outputs) == family.num_outputs
    assert [o.name for o in outputs] == [
        f"{family.instance_name(4)}#{k}" for k in range(len(outputs))
    ]
    # sample() is the first output, so single-output consumers work too.
    assert family.sample(4).tt.key() == outputs[0].tt.key()


def test_fault_family_differs_from_fault_free_base():
    family = make_family("fault", 0)
    a = family.sample(3)
    b = family.sample(3)
    assert a.tt.key() == b.tt.key()
    a.validate()


def test_make_family_rejects_unknown():
    with pytest.raises(ValidationError):
        make_family("no-such-family", 0)
    with pytest.raises(ValidationError):
        make_family("random-tt", 99)


def test_ladder_enumeration_is_deterministic():
    a = ladder(["random-tt", "fault"], levels=(0, 1), count=2, base_seed=5)
    b = ladder(["random-tt", "fault"], levels=(0, 1), count=2, base_seed=5)
    assert [(f.name, s) for f, s in a] == [(f.name, s) for f, s in b]
    assert len(a) == 2 * 2 * 2
    assert [s for _, s in a[:2]] == [5, 6]


def test_levels_cover_the_documented_range():
    assert LEVELS == (0, 1, 2, 3, 4)
    for kind in FAMILY_KINDS:
        for level in LEVELS:
            family = make_family(kind, level)
            assert family.level == level
            assert family.kind == kind
            assert not isinstance(family, MultiOutputFamily) or (
                family.num_outputs > 1
            )
