"""SAT/UNSAT twin construction: frontier pairs, proved and reproducible."""

from __future__ import annotations

from repro.core.janus import JanusOptions, solve_lm, synthesize
from repro.core.structural import structural_check
from repro.gen import make_family, make_twins


def _decide(spec, rows, cols, options):
    if not structural_check(spec, rows, cols):
        return "unsat"
    return solve_lm(spec, rows, cols, options).status


def test_twins_bracket_the_frontier():
    family = make_family("random-tt", 1)
    spec = family.sample(2)
    options = JanusOptions(max_conflicts=50_000)
    pair = make_twins(spec, family.rng(2, stream=1), options=options)
    assert pair.sat.name.endswith("+sat")
    assert pair.unsat.name.endswith("+unsat")
    assert pair.shape == f"{pair.rows}x{pair.cols}"
    # The SAT twin is the sampled function at its minimal shape; the
    # UNSAT twin is one minterm away and provably unrealizable there.
    base = synthesize(spec, name=spec.name, options=options)
    assert (pair.rows, pair.cols) == (base.rows, base.cols)
    assert _decide(pair.sat, pair.rows, pair.cols, options) == "sat"
    assert _decide(pair.unsat, pair.rows, pair.cols, options) == "unsat"


def test_twins_are_reproducible():
    family = make_family("pla-cover", 0)
    spec = family.sample(1)
    a = make_twins(spec, family.rng(1, stream=1))
    b = make_twins(spec, family.rng(1, stream=1))
    assert a.sat.tt.key() == b.sat.tt.key()
    assert a.unsat.tt.key() == b.unsat.tt.key()
    assert (a.rows, a.cols) == (b.rows, b.cols)
    # The twin stream (stream=1) never perturbs the sampling stream.
    assert family.sample(1).tt.key() == spec.tt.key()
