"""Generated fault scenarios: wire round-trip + byte-identical synthesis.

The fault family targets the function a faulty lattice actually realizes
(a seeded stuck-short/stuck-open injection into a synthesized base), so
this is the one family whose construction exercises synthesis, fault
enumeration *and* the generator seams together — exactly the scenario
the seeding contract must hold through.
"""

from __future__ import annotations

from repro.api.schema import RequestOptions, SynthesisRequest
from repro.core.janus import JanusOptions, synthesize
from repro.gen import make_family


def test_fault_family_roundtrips_and_synthesizes_identically():
    family = make_family("fault", 0)
    a = family.sample(5)
    b = family.sample(5)
    assert a.tt.key() == b.tt.key()
    assert a.name == b.name

    # Wire round-trip: the canonical request form reconstructs the same
    # function (names and truth table survive; the cover re-minimizes
    # deterministically).
    request = SynthesisRequest.from_target(
        a, name=a.name, backend="janus", options=RequestOptions()
    )
    rebuilt = SynthesisRequest.from_json(request.to_json()).to_spec()
    assert rebuilt.tt.key() == a.tt.key()
    assert rebuilt.name == a.name
    assert request.to_json() == SynthesisRequest.from_json(
        request.to_json()
    ).to_json()

    # Two independent syntheses of two independent samples of the same
    # seed are byte-identical: entries, shape, size and bounds.
    options = JanusOptions(max_conflicts=50_000)
    ra = synthesize(a, name=a.name, options=options)
    rb = synthesize(b, name=b.name, options=options)
    assert ra.assignment.entries == rb.assignment.entries
    assert (ra.rows, ra.cols, ra.size) == (rb.rows, rb.cols, rb.size)
    assert ra.lower_bound == rb.lower_bound
    assert ra.initial_upper_bound == rb.initial_upper_bound
    assert ra.upper_bounds == rb.upper_bounds
