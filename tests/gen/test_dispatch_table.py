"""DispatchTable and spec classification: thresholds and persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import CacheError
from repro.core.target import TargetSpec
from repro.gen import DispatchTable, classify, make_family


def test_classify_is_stable_and_cheap_featured():
    spec = make_family("autosymmetric", 1).sample(0)
    key = classify(spec)
    assert key == classify(spec)
    assert key.startswith(f"in={spec.num_inputs}|pi")
    assert key.endswith("|auto")


def test_classify_buckets_symmetry_classes():
    dred = make_family("d-reducible", 1).sample(0)
    assert classify(dred).endswith(("|dred", "|auto"))
    const = TargetSpec.from_string("a + a'")
    assert classify(const).endswith("|const")


def test_best_needs_evidence():
    table = DispatchTable(min_wins=3, min_share=0.6)
    table.record("c", "eager:agile")
    assert table.best("c") is None  # below min_wins
    table.record("c", "eager:agile", count=2)
    assert table.best("c") == "eager:agile"
    # A contested class (leader below min_share) keeps the blind race.
    table.record("c", "lazy:default", count=3)
    assert table.best("c") is None
    assert table.wins("c") == {"eager:agile": 3, "lazy:default": 3}
    assert table.best("unknown-class") is None


def test_best_tie_break_is_deterministic():
    table = DispatchTable(min_wins=1, min_share=0.0)
    table.record("c", "eager:default", count=2)
    table.record("c", "eager:agile", count=2)
    # Equal tallies break to the lexicographically smallest label.
    assert table.best("c") == "eager:agile"


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "dispatch.json"
    table = DispatchTable(path)
    table.record("in=4|pi<=4|deg<=2|plain", "eager:agile", count=5)
    saved = table.save()
    assert saved == path
    loaded = DispatchTable(path, min_wins=3, min_share=0.6)
    assert loaded.wins("in=4|pi<=4|deg<=2|plain") == {"eager:agile": 5}
    assert loaded.best("in=4|pi<=4|deg<=2|plain") == "eager:agile"
    # Canonical JSON: a reload re-serializes to the same bytes.
    assert loaded.to_json() == table.to_json()


def test_load_rejects_malformed(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(CacheError):
        DispatchTable(path)
    path.write_text(json.dumps({"kind": "something-else"}), encoding="utf-8")
    with pytest.raises(CacheError):
        DispatchTable(path)
    path.write_text(
        json.dumps({"kind": "dispatch_table", "version": 1, "classes": []}),
        encoding="utf-8",
    )
    with pytest.raises(CacheError):
        DispatchTable(path)


def test_save_without_path_raises():
    with pytest.raises(CacheError):
        DispatchTable().save()
