"""Unit tests for the ROBDD manager."""

import pytest

from repro.bdd import Bdd
from repro.boolf import Cube, Sop, TruthTable
from repro.errors import DimensionError


class TestTerminalsAndVars:
    def test_constants(self):
        mgr = Bdd(3)
        assert mgr.zero == 0
        assert mgr.one == 1
        assert mgr.is_terminal(mgr.zero)
        assert mgr.is_terminal(mgr.one)

    def test_projection(self):
        mgr = Bdd(3)
        x1 = mgr.var(1)
        for minterm in range(8):
            assert mgr.evaluate(x1, minterm) == bool(minterm >> 1 & 1)

    def test_negated_projection(self):
        mgr = Bdd(2)
        assert mgr.nvar(0) == mgr.not_(mgr.var(0))

    def test_var_out_of_range(self):
        mgr = Bdd(2)
        with pytest.raises(DimensionError):
            mgr.var(2)

    def test_hash_consing_makes_equal_functions_identical(self):
        mgr = Bdd(3)
        a, b, c = mgr.var(0), mgr.var(1), mgr.var(2)
        left = mgr.or_(mgr.and_(a, b), mgr.and_(a, c))
        right = mgr.and_(a, mgr.or_(b, c))
        assert left == right

    def test_no_redundant_nodes(self):
        mgr = Bdd(2)
        x = mgr.var(0)
        assert mgr.ite(mgr.var(1), x, x) == x


class TestConnectives:
    def test_truth_tables_of_connectives(self):
        mgr = Bdd(2)
        a, b = mgr.var(0), mgr.var(1)
        cases = {
            mgr.and_(a, b): [0, 0, 0, 1],
            mgr.or_(a, b): [0, 1, 1, 1],
            mgr.xor(a, b): [0, 1, 1, 0],
            mgr.implies(a, b): [1, 0, 1, 1],
            mgr.not_(a): [1, 0, 1, 0],
        }
        for node, expected in cases.items():
            got = [mgr.evaluate(node, m) for m in range(4)]
            assert got == [bool(v) for v in expected]

    def test_conjoin_disjoin_shortcut(self):
        mgr = Bdd(3)
        lits = [mgr.var(0), mgr.nvar(0)]
        assert mgr.conjoin(lits) == mgr.zero
        assert mgr.disjoin(lits) == mgr.one

    def test_conjoin_empty_is_one(self):
        mgr = Bdd(2)
        assert mgr.conjoin([]) == mgr.one
        assert mgr.disjoin([]) == mgr.zero


class TestCofactorsAndQuantifiers:
    def test_cofactor_matches_truthtable(self):
        tt = TruthTable.from_minterms([1, 3, 4, 6], 3)
        mgr = Bdd(3)
        f = mgr.from_truthtable(tt)
        for var in range(3):
            for value in (False, True):
                got = mgr.to_truthtable(mgr.cofactor(f, var, value))
                assert got == tt.restrict(var, value)

    def test_exists_forall(self):
        mgr = Bdd(2)
        a, b = mgr.var(0), mgr.var(1)
        f = mgr.and_(a, b)
        assert mgr.exists(f, [0]) == b
        assert mgr.forall(f, [0]) == mgr.zero
        g = mgr.or_(a, b)
        assert mgr.forall(g, [0]) == b

    def test_compose(self):
        mgr = Bdd(3)
        a, b, c = mgr.var(0), mgr.var(1), mgr.var(2)
        f = mgr.xor(a, b)
        # Substituting b := c gives a xor c.
        assert mgr.compose(f, 1, c) == mgr.xor(a, c)


class TestCountsAndQueries:
    def test_satcount_simple(self):
        mgr = Bdd(3)
        a = mgr.var(0)
        assert mgr.satcount(a) == 4
        assert mgr.satcount(mgr.one) == 8
        assert mgr.satcount(mgr.zero) == 0

    def test_satcount_with_level_skips(self):
        mgr = Bdd(4)
        f = mgr.and_(mgr.var(0), mgr.var(3))
        assert mgr.satcount(f) == 4

    def test_support(self):
        mgr = Bdd(4)
        f = mgr.or_(mgr.var(1), mgr.var(3))
        assert mgr.support(f) == [1, 3]
        assert mgr.support(mgr.one) == []

    def test_pick_minterm(self):
        mgr = Bdd(3)
        f = mgr.and_(mgr.var(0), mgr.nvar(2))
        m = mgr.pick_minterm(f)
        assert m is not None
        assert mgr.evaluate(f, m)
        assert mgr.pick_minterm(mgr.zero) is None

    def test_iter_minterms(self):
        tt = TruthTable.from_minterms([0, 5, 7], 3)
        mgr = Bdd(3)
        f = mgr.from_truthtable(tt)
        assert list(mgr.iter_minterms(f)) == [0, 5, 7]

    def test_dag_size(self):
        mgr = Bdd(2)
        assert mgr.dag_size(mgr.one) == 1
        a = mgr.var(0)
        assert mgr.dag_size(a) == 3  # node + two terminals


class TestConversions:
    def test_from_cube(self):
        cube = Cube.from_literals([(0, True), (2, False)], 3)
        mgr = Bdd(3)
        f = mgr.from_cube(cube)
        for m in range(8):
            assert mgr.evaluate(f, m) == cube.evaluate(m)

    def test_sop_roundtrip(self):
        sop = Sop.from_string("ab + c'd")
        mgr = Bdd(sop.num_vars)
        f = mgr.from_sop(sop)
        assert mgr.to_truthtable(f) == sop.to_truthtable()

    def test_truthtable_roundtrip(self):
        tt = TruthTable.from_minterms([1, 2, 9, 14], 4)
        mgr = Bdd(4)
        assert mgr.to_truthtable(mgr.from_truthtable(tt)) == tt

    def test_universe_mismatch(self):
        mgr = Bdd(3)
        with pytest.raises(DimensionError):
            mgr.from_truthtable(TruthTable.zeros(2))

    def test_dual(self):
        tt = TruthTable.from_minterms([3, 5, 6, 7], 3)  # majority
        mgr = Bdd(3)
        f = mgr.from_truthtable(tt)
        assert mgr.to_truthtable(mgr.dual(f)) == tt.dual()
        # Majority is self-dual.
        assert mgr.dual(f) == f

    def test_dual_involution(self):
        tt = TruthTable.from_minterms([0, 3, 4, 9, 15], 4)
        mgr = Bdd(4)
        f = mgr.from_truthtable(tt)
        assert mgr.dual(mgr.dual(f)) == f


class TestWrapper:
    def test_operator_syntax(self):
        mgr = Bdd(2)
        a, b = mgr.wrap(mgr.var(0)), mgr.wrap(mgr.var(1))
        f = (a & b) | (~a & ~b)  # XNOR
        assert [f.evaluate(m) for m in range(4)] == [True, False, False, True]
        assert f.satcount() == 2

    def test_manager_mismatch(self):
        f = Bdd(2).wrap(0)
        g = Bdd(2).wrap(0)
        with pytest.raises(DimensionError):
            _ = f & g
