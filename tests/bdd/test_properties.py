"""Property-based tests: the BDD manager agrees with dense truth tables."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd, bdd_isop, sift, with_order
from repro.boolf import Sop, TruthTable
from repro.boolf.isop import isop_interval


def random_table(num_vars: int, seed: int) -> TruthTable:
    rng = np.random.default_rng(seed)
    return TruthTable.random(num_vars, rng)


@st.composite
def table_pairs(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    seed_a = draw(st.integers(min_value=0, max_value=2**31))
    seed_b = draw(st.integers(min_value=0, max_value=2**31))
    return random_table(num_vars, seed_a), random_table(num_vars, seed_b)


class TestConnectivesAgainstTables:
    @given(table_pairs())
    @settings(max_examples=60, deadline=None)
    def test_and_or_xor_not(self, pair):
        ta, tb = pair
        mgr = Bdd(ta.num_vars)
        fa, fb = mgr.from_truthtable(ta), mgr.from_truthtable(tb)
        assert mgr.to_truthtable(mgr.and_(fa, fb)) == (ta & tb)
        assert mgr.to_truthtable(mgr.or_(fa, fb)) == (ta | tb)
        assert mgr.to_truthtable(mgr.xor(fa, fb)) == (ta ^ tb)
        assert mgr.to_truthtable(mgr.not_(fa)) == ~ta

    @given(table_pairs())
    @settings(max_examples=60, deadline=None)
    def test_canonicity(self, pair):
        ta, tb = pair
        mgr = Bdd(ta.num_vars)
        fa, fb = mgr.from_truthtable(ta), mgr.from_truthtable(tb)
        assert (fa == fb) == (ta == tb)

    @given(table_pairs())
    @settings(max_examples=60, deadline=None)
    def test_satcount(self, pair):
        ta, _ = pair
        mgr = Bdd(ta.num_vars)
        assert mgr.satcount(mgr.from_truthtable(ta)) == ta.count_ones()

    @given(table_pairs())
    @settings(max_examples=40, deadline=None)
    def test_support_matches_table(self, pair):
        ta, _ = pair
        mgr = Bdd(ta.num_vars)
        assert mgr.support(mgr.from_truthtable(ta)) == ta.support()


class TestIsopProperties:
    @given(table_pairs())
    @settings(max_examples=50, deadline=None)
    def test_isop_exact_when_interval_is_a_point(self, pair):
        tt, _ = pair
        mgr = Bdd(tt.num_vars)
        f = mgr.from_truthtable(tt)
        cover, cubes = bdd_isop(mgr, f, f)
        assert cover == f
        assert Sop(cubes, tt.num_vars).to_truthtable() == tt

    @given(table_pairs())
    @settings(max_examples=50, deadline=None)
    def test_isop_respects_interval(self, pair):
        ta, tb = pair
        lower_tt = ta & tb
        upper_tt = ta | tb
        mgr = Bdd(ta.num_vars)
        lower = mgr.from_truthtable(lower_tt)
        upper = mgr.from_truthtable(upper_tt)
        cover, cubes = bdd_isop(mgr, lower, upper)
        cover_tt = Sop(cubes, ta.num_vars).to_truthtable()
        assert mgr.to_truthtable(cover) == cover_tt
        assert lower_tt.implies(cover_tt)
        assert cover_tt.implies(upper_tt)

    @given(table_pairs())
    @settings(max_examples=30, deadline=None)
    def test_isop_is_irredundant(self, pair):
        # Recursion order may differ from the dense implementation, so we
        # check the contract rather than syntactic equality: the cover is
        # functionally exact and no cube can be dropped.
        tt, _ = pair
        mgr = Bdd(tt.num_vars)
        f = mgr.from_truthtable(tt)
        _, cubes = bdd_isop(mgr, f, f)
        cover = Sop(cubes, tt.num_vars)
        assert cover.to_truthtable() == tt
        assert cover.is_irredundant()

    @given(table_pairs())
    @settings(max_examples=30, deadline=None)
    def test_isop_size_comparable_to_dense(self, pair):
        # Both are ISOPs of the same function; sizes should be identical
        # in most cases and never wildly apart.  A generous 2x bound keeps
        # the test meaningful without over-constraining recursion order.
        tt, _ = pair
        if tt.is_zero():
            return
        mgr = Bdd(tt.num_vars)
        f = mgr.from_truthtable(tt)
        _, cubes = bdd_isop(mgr, f, f)
        dense = isop_interval(tt, tt)
        assert len(cubes) <= max(2 * len(dense.cubes), len(dense.cubes) + 2)


class TestReorderProperties:
    @given(table_pairs(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_with_order_preserves_function(self, pair, rnd):
        tt, _ = pair
        order = list(range(tt.num_vars))
        rnd.shuffle(order)
        mgr = Bdd(tt.num_vars)
        f = mgr.from_truthtable(tt)
        new_mgr, (new_f,) = with_order(mgr, [f], order)
        assert new_mgr.var_order == order
        assert new_mgr.to_truthtable(new_f) == tt

    @given(table_pairs())
    @settings(max_examples=15, deadline=None)
    def test_sift_preserves_function_and_never_grows(self, pair):
        tt, _ = pair
        mgr = Bdd(tt.num_vars)
        f = mgr.from_truthtable(tt)
        before = mgr.dag_size(f)
        new_mgr, (new_f,) = sift(mgr, [f], max_rounds=1)
        assert new_mgr.to_truthtable(new_f) == tt
        assert new_mgr.dag_size(new_f) <= before


class TestSiftKnownWin:
    def test_interleaved_adder_order(self):
        # f = a0 b0 + a1 b1 + a2 b2 with order a0 a1 a2 b0 b1 b2 is the
        # textbook exponential-vs-linear example.
        num_vars = 6
        mgr = Bdd(num_vars, var_order=[0, 1, 2, 3, 4, 5])
        pairs = [(0, 3), (1, 4), (2, 5)]
        f = mgr.disjoin(mgr.and_(mgr.var(a), mgr.var(b)) for a, b in pairs)
        bad_size = mgr.dag_size(f)
        new_mgr, (g,) = sift(mgr, [f])
        assert new_mgr.dag_size(g) < bad_size
        assert new_mgr.to_truthtable(g) == mgr.to_truthtable(f)
