"""Cross-substrate consistency checks.

The library has four independent ways to talk about a lattice's
behaviour: path enumeration (`repro.lattice.paths`), flood-fill
evaluation of assignments (`repro.lattice.assignment`), BDDs
(`repro.bdd`) and AIGs (`repro.aig`).  These tests pin them against each
other on the same objects — in particular the Altun-Riedel duality
theorem (the dual of the 4-connected top-bottom lattice function is the
8-connected left-right function), which the whole dual-side encoding
rests on.
"""

import pytest

from repro.aig import Aig, equivalent_sat
from repro.bdd import Bdd
from repro.boolf import TruthTable
from repro.lattice import (
    Entry,
    Grid,
    LatticeAssignment,
    lattice_dual_function,
    lattice_function,
)

SHAPES = [(1, 1), (1, 3), (2, 2), (2, 3), (3, 2), (3, 3)]


def identity_lattice(rows: int, cols: int) -> LatticeAssignment:
    """Switch (r, c) assigned its own variable — realizes f_{rows x cols}."""
    size = rows * cols
    return LatticeAssignment(
        rows, cols, [Entry.lit(i) for i in range(size)], size
    )


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_paths_vs_floodfill(shape):
    rows, cols = shape
    sop = lattice_function(rows, cols)
    realized = identity_lattice(rows, cols).realized_truthtable()
    assert sop.to_truthtable() == realized


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_duality_theorem_via_bdd(shape):
    # dual(f_mxn) computed structurally on the BDD must equal the
    # 8-connected left-right path enumeration.
    rows, cols = shape
    primal = lattice_function(rows, cols)
    dual = lattice_dual_function(rows, cols)
    mgr = Bdd(rows * cols)
    primal_node = mgr.from_sop(primal)
    assert mgr.dual(primal_node) == mgr.from_sop(dual)


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_duality_theorem_via_floodfill(shape):
    # The physical reading: left-right 8-connected conduction of the
    # identity lattice is the dual function.
    rows, cols = shape
    lattice = identity_lattice(rows, cols)
    dual_tt = lattice_dual_function(rows, cols).to_truthtable()
    assert lattice.realized_dual_side_truthtable() == dual_tt


@pytest.mark.parametrize("shape", [(2, 2), (2, 3), (3, 2)])
def test_paths_vs_aig_by_sat(shape):
    # Build f from its paths in an AIG and from its SOP; miter them.
    rows, cols = shape
    grid = Grid(rows, cols)
    from repro.lattice.paths import top_bottom_paths

    aig = Aig(grid.size)
    path_lit = aig.disjoin(
        aig.conjoin(
            aig.input_lit(i) for i in range(grid.size) if mask >> i & 1
        )
        for mask in top_bottom_paths(rows, cols)
    )
    sop_lit = aig.from_sop(lattice_function(rows, cols))
    eq, _ = equivalent_sat(aig, path_lit, sop_lit)
    assert eq


def test_paper_footnote_dual_products():
    # Footnote 1 of the paper lists the 17 dual products of f_3x3; the
    # three substrates must agree on the count and the function.
    dual = lattice_dual_function(3, 3)
    assert dual.num_products == 17
    mgr = Bdd(9)
    assert mgr.satcount(mgr.from_sop(dual)) == dual.to_truthtable().count_ones()
