"""Sustained mixed-traffic soak against both HTTP front-ends.

The load harness proper lives in ``benchmarks/bench_server.py
--ladder``; this test is the correctness half of that coin: many client
threads firing a *mix* of traffic (synthesize, batch, streaming, info
endpoints, deliberate errors) at one server for a sustained window, with
three zero-tolerance assertions at the end:

* **zero dropped requests** — every exchange either returned its decoded
  payload or the exact expected error envelope; no resets, no hangs;
* **zero mangled responses** — synthesis payloads decode and match the
  per-expression golden answer captured before the storm;
* **zero cache corruption** — afterwards the shared on-disk cache has no
  ``.tmp-*`` litter and ``verify_cache`` replays every stored assignment
  green.

Duration scales with ``JANUS_SOAK_SECONDS`` (default a few seconds so
tier-1 stays fast; the nightly path runs ``-m slow`` with a bigger
window).  The test is also registered under the ``slow`` marker so
nightly can select it explicitly.
"""

import json
import os
import threading
import time

import pytest

from repro.api import BatchRequest, RequestOptions, SynthesisRequest
from repro.client import ServerError, ServiceClient
from repro.engine import verify_cache
from repro.engine.cache import ResultCache
from repro.server import make_server

pytestmark = pytest.mark.slow

SOAK_SECONDS = float(os.environ.get("JANUS_SOAK_SECONDS", "3.0"))
CLIENT_THREADS = int(os.environ.get("JANUS_SOAK_CLIENTS", "8"))

EXPRESSIONS = [
    "ab + a'b'c",
    "cd + c'd' + abe",
    "ab + cd",
    "a'b + ab' + c",
    "ab + bc + ca",
]


def _request(expression: str) -> SynthesisRequest:
    return SynthesisRequest.from_target(
        expression, options=RequestOptions(max_conflicts=20_000)
    )


def _golden(client: ServiceClient) -> dict:
    """Expression -> canonical entry tuple, captured pre-storm."""
    golden = {}
    for expression in EXPRESSIONS:
        response = client.synthesize(_request(expression))
        golden[expression] = tuple(map(tuple, response.entries))
    return golden


class _Soak:
    """One worker thread's traffic loop and its tally."""

    def __init__(self, address, golden, deadline):
        self.address = address
        self.golden = golden
        self.deadline = deadline
        self.completed = 0
        self.failures: list[str] = []

    def run(self, slot: int) -> None:
        client = ServiceClient(*self.address)
        step = slot  # de-phase the threads
        try:
            while time.monotonic() < self.deadline:
                try:
                    self._one(client, step)
                    self.completed += 1
                except Exception as exc:
                    self.failures.append(
                        f"slot {slot} step {step}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    if len(self.failures) >= 3:
                        return  # enough evidence; stop burning time
                step += 1
        finally:
            client.close()

    def _one(self, client: ServiceClient, step: int) -> None:
        expression = EXPRESSIONS[step % len(EXPRESSIONS)]
        op = step % 10
        if op < 4:  # plain synthesize, checked against the golden answer
            response = client.synthesize(_request(expression))
            got = tuple(map(tuple, response.entries))
            if got != self.golden[expression]:
                raise AssertionError(f"mangled response for {expression!r}")
        elif op < 6:  # streamed synthesize: events then the same answer
            lines = list(client.stream_synthesize(_request(expression)))
            final = lines[-1]
            if final.get("kind") != "synthesis_response":
                raise AssertionError(f"stream ended with {final.get('kind')}")
            got = tuple(tuple(e) for e in final["assignment"]["entries"])
            if got != self.golden[expression]:
                raise AssertionError(f"mangled stream for {expression!r}")
        elif op < 7:  # small synchronous batch
            batch = BatchRequest(
                requests=(
                    _request(expression),
                    _request(EXPRESSIONS[(step + 1) % len(EXPRESSIONS)]),
                )
            )
            response = client.run_batch(batch)
            if len(response) != 2:
                raise AssertionError("short batch response")
        elif op < 8:  # info endpoints stay coherent mid-storm
            health = client.health()
            if health["status"] != "ok":
                raise AssertionError(f"health flapped: {health}")
            stats = client.cache_stats()
            if stats["kind"] != "cache_stats":
                raise AssertionError("cache_stats lost its envelope")
        elif op < 9:  # deliberate schema error: exact envelope, kept-alive
            try:
                client.synthesize(_request("ab + ("))
            except ServerError as err:
                if err.status != 400:
                    raise AssertionError(f"parse error got {err.status}")
            else:
                raise AssertionError("bad expression was accepted")
        else:  # deliberate unknown backend: 404 envelope
            try:
                client.synthesize(
                    _request(expression), backend="no-such-backend"
                )
            except ServerError as err:
                if err.status != 404:
                    raise AssertionError(f"unknown backend got {err.status}")
            else:
                raise AssertionError("unknown backend was accepted")


@pytest.mark.parametrize("frontend", ["threaded", "async"])
def test_sustained_mixed_traffic_drops_nothing(frontend, tmp_path):
    cache_dir = str(tmp_path / "soak-cache")
    with make_server(
        port=0, pool=2, jobs=1, cache=cache_dir, frontend=frontend
    ) as server:
        server.serve_background()
        warm = ServiceClient(*server.address)
        golden = _golden(warm)
        warm.close()

        deadline = time.monotonic() + SOAK_SECONDS
        soaks = [
            _Soak(server.address, golden, deadline)
            for _ in range(CLIENT_THREADS)
        ]
        threads = [
            threading.Thread(target=soak.run, args=(slot,), daemon=True)
            for slot, soak in enumerate(soaks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=SOAK_SECONDS + 120)
        hung = [t for t in threads if t.is_alive()]

        failures = [f for soak in soaks for f in soak.failures]
        completed = sum(soak.completed for soak in soaks)

        # Zero dropped or mangled responses, no wedged clients, and the
        # storm actually exercised the server.
        assert not hung, f"{len(hung)} soak threads never finished"
        assert failures == [], failures[:5]
        assert completed >= CLIENT_THREADS * 2, (
            f"only {completed} requests completed in {SOAK_SECONDS}s"
        )

        # The server is still fully alive afterwards.
        after = ServiceClient(*server.address)
        assert after.health()["status"] == "ok"
        response = after.synthesize(_request(EXPRESSIONS[0]))
        assert tuple(map(tuple, response.entries)) == golden[EXPRESSIONS[0]]
        after.close()

    # Zero cache corruption: no temp litter, every entry verifies.
    cache = ResultCache(cache_dir)
    assert list(cache.iter_temps()) == []
    assert len(cache) > 0
    report = verify_cache(cache)
    assert report.ok, report.mismatches
    for path in cache.iter_entries():
        payload = json.loads(path.read_bytes())
        assert payload.get("format") == 1
