"""SessionPool and JobManager unit tests (no HTTP involved)."""

import threading
import time

import pytest

from repro.api import RequestOptions
from repro.errors import BudgetExceeded
from repro.server import JobManager, SessionPool
from repro.server.jobs import Job


class TestSessionPool:
    def test_bounds_concurrency_to_pool_size(self):
        with SessionPool(size=1) as pool:
            order = []
            release = threading.Event()

            def slow(_session):
                order.append("first-start")
                release.wait(5)
                order.append("first-end")

            def fast(_session):
                order.append("second")

            t1 = threading.Thread(target=lambda: pool.run(slow))
            t1.start()
            while not order:  # first holds the only session
                time.sleep(0.001)
            t2 = threading.Thread(target=lambda: pool.run(fast))
            t2.start()
            time.sleep(0.05)
            assert order == ["first-start"]  # second is queued, not running
            assert pool.busy == 1
            release.set()
            t1.join(5)
            t2.join(5)
            assert order == ["first-start", "first-end", "second"]

    def test_timeout_raises_408_error_and_recovers_the_session(self):
        with SessionPool(size=1) as pool:
            finished = threading.Event()

            def slow(_session):
                time.sleep(0.2)
                finished.set()
                return "late"

            with pytest.raises(BudgetExceeded):
                pool.run(slow, timeout=0.01)
            # The overrun work completes in the background and its
            # session rejoins the pool: the next request is served.
            assert finished.wait(5)
            assert pool.run(lambda s: "next", timeout=5) == "next"

    def test_worker_exception_propagates(self):
        with SessionPool(size=1) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.run(lambda s: (_ for _ in ()).throw(ValueError("boom")))
            # And with a timeout path too.
            with pytest.raises(ValueError, match="boom"):
                pool.run(
                    lambda s: (_ for _ in ()).throw(ValueError("boom")),
                    timeout=5,
                )

    def test_stats_merge_across_sessions(self, tmp_path):
        options = RequestOptions(max_conflicts=20_000)
        with SessionPool(size=2, cache=str(tmp_path)) as pool:
            pool.run(lambda s: s.synthesize("ab + a'b'c", options=options))
            stats = pool.stats()
            assert stats.suite_misses == 1
            # Force the second session by holding the first.
            hold = threading.Event()
            t = threading.Thread(
                target=lambda: pool.run(lambda s: hold.wait(5))
            )
            t.start()
            while pool.busy != 1:
                time.sleep(0.001)
            pool.run(lambda s: s.synthesize("ab + a'b'c", options=options))
            hold.set()
            t.join(5)
            merged = pool.stats()
        # The repeat went through a *different* session but hit the
        # shared on-disk suite cache — and both sessions' counters land
        # in the merged stats.
        assert merged.suite_hits == 1
        assert merged.suite_misses == 1

    def test_closed_pool_refuses_work(self):
        pool = SessionPool(size=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.acquire()

    def test_acquire_blocked_on_busy_pool_unblocks_when_closed(self):
        # A waiter stuck behind checked-out sessions must error out on
        # close(), not hang forever on a queue nothing will refill.
        pool = SessionPool(size=1)
        session = pool.acquire()  # pool now empty
        errors = []

        def waiter():
            try:
                pool.acquire()
            except RuntimeError as exc:
                errors.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        pool.close()
        t.join(5)
        assert not t.is_alive()
        assert errors
        pool.release(session)  # in-flight holder returns it post-close


class TestJobManager:
    def test_wait_events_blocks_until_event_or_done(self):
        job = Job("job-x", size=1)
        from repro.engine.events import SynthesisStarted

        results = []

        def reader():
            results.append(job.wait_events(0, timeout=5))

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        assert not results  # still blocked
        job.add_event(SynthesisStarted("f", backend="janus"))
        t.join(5)
        events, cursor, done = results[0]
        assert [e["event"] for e in events] == ["synthesis_started"]
        assert cursor == 1 and not done

    def test_wait_events_returns_immediately_when_done(self):
        job = Job("job-x", size=1)
        job.finish({"kind": "batch_response"}, None)
        events, cursor, done = job.wait_events(0, timeout=0.0)
        assert events == [] and cursor == 0 and done

    def test_finished_jobs_evicted_beyond_keep(self):
        with SessionPool(size=1) as pool:
            manager = JobManager(pool, keep=2)
            from repro.api import BatchRequest, SynthesisRequest

            batch = BatchRequest(
                requests=(
                    SynthesisRequest.from_target(
                        "ab", options=RequestOptions(max_conflicts=20_000)
                    ),
                )
            )
            jobs = [manager.submit(batch) for _ in range(4)]
            for job in jobs:
                # Wait for completion via the event channel.
                deadline = time.monotonic() + 30
                while not job.done and time.monotonic() < deadline:
                    job.wait_events(len(job.events), timeout=0.2)
                assert job.done
            manager.submit(batch)  # triggers eviction of finished excess
            assert len(manager) <= 3  # 2 kept finished + the new one