"""Live-server tests: endpoint round-trips, errors, warmth, events.

Every test here runs against a real in-process server on an ephemeral
loopback port, exercised through :class:`repro.client.ServiceClient` —
real sockets, real threads, the exact bytes a deployment would serve.

The whole module is the **front-end parity matrix**: the ``server``
fixture is parameterized over the threaded
(:class:`~repro.server.SynthesisServer`) and asyncio
(:class:`~repro.server.AsyncSynthesisServer`) transports, so every
byte-identity, error-status, budget and event-stream assertion runs
against both — plus :class:`TestFrontendParity`, which serves the same
exchanges from both at once and compares the bytes directly.
"""

import json
import threading

import pytest

from repro.api import (
    BatchRequest,
    RequestOptions,
    Session,
    SynthesisRequest,
)
from repro.client import ServerError, ServiceClient
from repro.server import make_server

EXPRESSIONS = ["ab + a'b'c", "cd + c'd' + abe", "ab + cd"]
FRONTENDS = ["threaded", "async"]


def _request(expression: str, backend: str = "janus") -> SynthesisRequest:
    return SynthesisRequest.from_target(
        expression,
        backend=backend,
        options=RequestOptions(max_conflicts=20_000),
    )


def strip_volatile(wire: dict) -> dict:
    """Zero the only two run-varying response fields (wall_time, stats).

    Everything else in a ``synthesis_response`` is deterministic; see
    docs/wire-schema.md "Stability rules".
    """
    wire = json.loads(json.dumps(wire))  # deep copy
    wire["wall_time"] = 0.0
    wire["stats"] = None
    for attempt in wire.get("attempts", []):
        attempt["wall_time"] = 0.0
    for nested in wire.get("responses", []):
        nested["wall_time"] = 0.0
        nested["stats"] = None
        for attempt in nested.get("attempts", []):
            attempt["wall_time"] = 0.0
    return wire


def strip_volatile_line(raw: bytes) -> dict:
    """Normalize one NDJSON stream line (event or final payload)."""
    payload = json.loads(raw)
    if "event" in payload:
        if "wall_time" in payload:
            payload["wall_time"] = 0.0
        return payload
    return strip_volatile(payload)


@pytest.fixture(params=FRONTENDS)
def frontend(request):
    """For tests that build their own (short-lived) servers."""
    return request.param


@pytest.fixture(scope="module", params=FRONTENDS)
def server(request):
    with make_server(port=0, pool=2, jobs=1, frontend=request.param) as srv:
        srv.serve_background()
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(*server.address)


class TestInfoEndpoints:
    def test_healthz(self, client):
        payload = client.health()
        assert payload["kind"] == "health"
        assert payload["status"] == "ok"
        assert payload["api"] == 1

    def test_backends_match_registry(self, client):
        from repro.api import backend_names

        assert client.backends() == sorted(backend_names())

    def test_cache_stats_shape(self, client):
        payload = client.cache_stats()
        assert payload["kind"] == "cache_stats"
        assert "solver_calls" in payload["engine"]
        # Learned-dispatch accounting is part of the served counters.
        assert payload["engine"]["dispatch_hits"] == 0
        assert payload["engine"]["dispatch_misses"] == 0
        assert payload["pool"]["size"] == 2
        assert payload["disk"] is not None


class TestSynthesize:
    def test_response_matches_session_run_byte_for_byte(self, client):
        # The acceptance criterion: the served body is the canonical
        # JSON Session.run/`janus synth --json` produces, byte-identical
        # outside the two volatile fields.
        request = _request(EXPRESSIONS[0])
        status, raw = client.request_raw(
            "POST", "/v1/synthesize", request.to_json()
        )
        assert status == 200
        with Session() as session:
            local = session.synthesize(request)
        served = strip_volatile(json.loads(raw))
        expected = strip_volatile(json.loads(local.to_json()))
        assert json.dumps(served, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_served_body_is_canonical_json(self, client):
        from repro.api import SynthesisResponse

        status, raw = client.request_raw(
            "POST", "/v1/synthesize", _request(EXPRESSIONS[1]).to_json()
        )
        assert status == 200
        text = raw.decode("utf-8")
        # from_json(to_json()) canonical round-trip holds on the bytes
        # actually served.
        assert SynthesisResponse.from_json(text).to_json() == text

    def test_client_decodes_response(self, client):
        response = client.synthesize(_request(EXPRESSIONS[0]))
        assert response.size == response.rows * response.cols
        assert response.backend == "janus"

    def test_backend_query_knob(self, client):
        via_query = client.synthesize(
            _request(EXPRESSIONS[2]), backend="exact"
        )
        via_body = client.synthesize(_request(EXPRESSIONS[2], "exact"))
        assert via_query.backend == "exact"
        assert via_query.entries == via_body.entries


class TestWarmCache:
    def test_repeat_request_does_zero_sat_work(self, client):
        request = _request("a'b + ab' + c")
        client.synthesize(request)  # populate
        before = client.cache_stats()["engine"]
        first = client.synthesize(request)
        second = client.synthesize(request)
        after = client.cache_stats()["engine"]
        assert first.entries == second.entries
        # The acceptance criterion: warm repeats report zero new SAT
        # calls and zero bound recomputations via the served stats.
        assert after["solver_calls"] == before["solver_calls"]
        assert after["bound_calls"] == before["bound_calls"]
        assert after["suite_hits"] >= before["suite_hits"] + 2

    def test_concurrent_requests_share_the_warm_cache(self, client):
        request = _request("ab + bc + ca")
        client.synthesize(request)  # populate through one pool session
        before = client.cache_stats()["engine"]
        results, errors = [], []

        def hit():
            try:
                results.append(client.synthesize(request))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len({tuple(map(tuple, r.entries)) for r in results}) == 1
        after = client.cache_stats()["engine"]
        # All four concurrent repeats — whichever pool session they
        # landed on — were served from the shared cache.
        assert after["solver_calls"] == before["solver_calls"]


class TestErrorPaths:
    def test_malformed_json_is_400(self, client):
        status, raw = client.request_raw("POST", "/v1/synthesize", "not json")
        payload = json.loads(raw)
        assert status == 400
        assert payload["kind"] == "error"
        assert payload["status"] == 400
        assert payload["type"] == "ValidationError"

    def test_schema_violation_is_400(self, client):
        bad = {"api": 1, "kind": "synthesis_request", "target": {"form": "?"}}
        status, raw = client.request_raw(
            "POST", "/v1/synthesize", json.dumps(bad)
        )
        assert status == 400

    def test_bad_expression_is_400(self, client):
        with pytest.raises(ServerError) as err:
            client.synthesize(_request("ab + ("))
        assert err.value.status == 400

    def test_unknown_backend_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client.synthesize(_request(EXPRESSIONS[0], backend="nope"))
        assert err.value.status == 404
        assert err.value.payload["type"] == "UnknownBackendError"

    def test_unknown_path_is_404(self, client):
        status, _ = client.request_raw("GET", "/v2/synthesize")
        assert status == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client.job("job-does-not-exist")
        assert err.value.status == 404

    def test_wrong_method_is_405(self, client):
        # Both directions of the asymmetry: POST on a GET route and GET
        # on a POST route are known paths with the wrong verb, not 404s.
        for method, path in [
            ("POST", "/healthz"),
            ("POST", "/v1/backends"),
            ("POST", "/v1/jobs/job-1"),
            ("GET", "/v1/synthesize"),
            ("GET", "/v1/batch"),
            ("PUT", "/v1/synthesize"),
        ]:
            status, raw = client.request_raw(method, path)
            assert status == 405, (method, path, raw)

    def test_bad_content_length_is_400_not_500(self, client):
        from http.client import HTTPConnection

        conn = HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/synthesize")
            conn.putheader("Content-Length", "not-a-number")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["type"] == "ValidationError"
        finally:
            conn.close()

    def test_oversized_body_is_rejected_without_buffering(self, client):
        from http.client import HTTPConnection

        conn = HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/synthesize")
            conn.putheader("Content-Length", str(10**12))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_non_utf8_body_is_400_not_500(self, client):
        from http.client import HTTPConnection

        conn = HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request("POST", "/v1/synthesize", body=b"\xff\xfe{}")
            response = conn.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["type"] == "ValidationError"
        finally:
            conn.close()

    def test_keepalive_survives_rejected_posts_with_bodies(self, client):
        # An unread POST body on a 404/405 must not desync the next
        # request on the same persistent connection.
        from http.client import HTTPConnection

        conn = HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request("POST", "/v1/nope", body=b'{"x": 1}')
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["kind"] == "health"
            conn.request("PUT", "/v1/synthesize", body=b'{"y": 2}')
            response = conn.getresponse()
            assert response.status == 405
            response.read()
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
        finally:
            conn.close()

    def test_timeout_budget_is_408(self, client):
        # A fresh spec (nothing cached) with an unmeetable budget: the
        # server must answer 408 without waiting for the solve.
        request = SynthesisRequest.from_target(
            "ab'c + a'bd + cd'e + b'de + ace'",
            options=RequestOptions(max_conflicts=200_000),
        )
        with pytest.raises(ServerError) as err:
            client.synthesize(request, timeout=0.005)
        assert err.value.status == 408
        assert err.value.payload["type"] == "BudgetExceeded"

    def test_bad_query_param_is_400(self, client):
        status, _ = client.request_raw(
            "POST",
            "/v1/synthesize",
            _request(EXPRESSIONS[0]).to_json(),
            params={"timeout": "soon"},
        )
        assert status == 400


class TestBatchAndEvents:
    def test_sync_batch_matches_session_run_batch(self, client):
        requests = tuple(_request(e) for e in EXPRESSIONS)
        served = client.run_batch(BatchRequest(requests=requests))
        with Session() as session:
            local = session.run_batch(BatchRequest(requests=requests))
        assert strip_volatile(json.loads(served.to_json())) == strip_volatile(
            json.loads(local.to_json())
        )

    def test_async_batch_lifecycle(self, client):
        job_id = client.submit_batch([_request(e) for e in EXPRESSIONS])
        batch = client.wait_batch(job_id)
        assert len(batch) == len(EXPRESSIONS)
        envelope = client.job(job_id)
        assert envelope["status"] == "done"
        assert envelope["size"] == len(EXPRESSIONS)
        assert envelope["response"]["kind"] == "batch_response"

    def test_event_stream_is_ordered_and_lossless(self, client):
        from repro.api import EVENT_KINDS, event_from_wire

        job_id = client.submit_batch([_request(e) for e in EXPRESSIONS])
        # Page through with a tiny cursor step to prove resumability.
        events, cursor = [], 0
        while True:
            page = client.events(job_id, cursor=cursor, timeout=10)
            assert page["cursor"] == cursor + len(page["events"])
            events.extend(page["events"])
            cursor = page["cursor"]
            if page["done"] and not page["events"]:
                break
        # Every event decodes back to its dataclass.
        for wire in events:
            assert wire["event"] in EVENT_KINDS
            event_from_wire(wire)
        # One synthesis_started/finished pair per request, in order.
        names = [e["name"] for e in events if e["event"] == "synthesis_started"]
        finished = [
            e["name"] for e in events if e["event"] == "synthesis_finished"
        ]
        assert names == finished == ["f"] * len(EXPRESSIONS)
        # Within one job, started always precedes its finished.
        starts = [i for i, e in enumerate(events)
                  if e["event"] == "synthesis_started"]
        ends = [i for i, e in enumerate(events)
                if e["event"] == "synthesis_finished"]
        assert all(s < e for s, e in zip(starts, ends))
        # A full re-read from cursor 0 replays the identical stream.
        replay = client.events(job_id, cursor=0, timeout=1)
        assert replay["events"][: len(events)] == events

    def test_async_batch_error_is_recorded_on_the_job(self, client):
        job_id = client.submit_batch(
            [_request(EXPRESSIONS[0], backend="nope")]
        )
        with pytest.raises(ServerError) as err:
            client.wait_batch(job_id)
        assert err.value.status == 404
        assert client.job(job_id)["status"] == "error"


class TestPerRequestKnobs:
    def test_jobs_override_work_lands_in_served_stats(self, client, server):
        # A one-off engine width runs in a throwaway session, but its
        # counters must still reach /v1/cache/stats (pool absorbs them).
        request = _request("a'bc + ab'c + abc'")
        before = client.cache_stats()["engine"]
        client.synthesize(request, jobs=server.pool.jobs + 1)
        after = client.cache_stats()["engine"]
        assert after["suite_misses"] == before["suite_misses"] + 1

    def test_jobs_zero_normalizes_like_the_pool(self, client, server):
        # ?jobs=0 means "all CPUs"; on a pool already at that width the
        # request must ride the warm pool, not a throwaway session.
        from repro.engine import default_jobs

        if default_jobs() != server.pool.jobs:
            pytest.skip("pool width differs from the machine's CPU count")
        request = _request("ab + a'b'")
        client.synthesize(request)
        before = client.cache_stats()["engine"]
        client.synthesize(request, jobs=0)
        after = client.cache_stats()["engine"]
        # Served from the warm pool's suite cache; a one-off session
        # would also hit it, but the pool counters moving without any
        # retired-session absorption is the warm-path signature.
        assert after["suite_hits"] == before["suite_hits"] + 1
        assert after["solver_calls"] == before["solver_calls"]


class TestSyncStreaming:
    def test_stream_yields_events_then_final_response(self, client):
        request = _request("a'b'c + abc")
        lines = list(client.stream_synthesize(request))
        assert len(lines) >= 2
        events, final = lines[:-1], lines[-1]
        assert all("event" in e for e in events)
        assert {e["event"] for e in events} >= {
            "synthesis_started",
            "synthesis_finished",
        }
        assert final["kind"] == "synthesis_response"
        # The streamed final payload is the exact non-streamed response.
        plain = client.synthesize(request)
        assert strip_volatile(final) == strip_volatile(
            json.loads(plain.to_json())
        )

    def test_stream_batch_final_line_is_batch_response(self, client):
        batch = BatchRequest(
            requests=tuple(_request(e) for e in EXPRESSIONS[:2])
        )
        lines = list(
            client.request_stream(
                "POST", "/v1/batch", batch.to_json(), {"stream": 1}
            )
        )
        payloads = [json.loads(line) for line in lines]
        assert payloads[-1]["kind"] == "batch_response"
        starts = [p for p in payloads if p.get("event") == "synthesis_started"]
        assert len(starts) == 2

    def test_stream_failure_is_a_trailing_error_envelope(self, client):
        # The status line goes out before the outcome is known, so a
        # failing request streams as 200 + a final error line (which the
        # client surfaces as ServerError).
        with pytest.raises(ServerError) as err:
            list(
                client.stream_synthesize(
                    _request(EXPRESSIONS[0], backend="nope")
                )
            )
        assert err.value.status == 404
        assert err.value.payload["type"] == "UnknownBackendError"

    def test_stream_rejects_invalid_flag(self, client):
        status, _ = client.request_raw(
            "POST",
            "/v1/synthesize",
            _request(EXPRESSIONS[0]).to_json(),
            params={"stream": "maybe"},
        )
        assert status == 400

    def test_malformed_body_fails_before_streaming_starts(self, client):
        # Validation errors precede the stream: plain 400 envelope, not
        # a 200 chunked response with a trailing error.
        status, raw = client.request_raw(
            "POST", "/v1/synthesize", "not json", params={"stream": 1}
        )
        assert status == 400
        assert json.loads(raw)["kind"] == "error"


class TestClientKeepAlive:
    def test_hundred_requests_reuse_one_connection(self, server):
        before = server.connections_accepted
        with ServiceClient(*server.address) as fresh:
            for _ in range(100):
                fresh.health()
            fresh.synthesize(_request(EXPRESSIONS[0]))
        assert server.connections_accepted == before + 1

    def test_keep_alive_off_restores_connection_per_call(self, server):
        before = server.connections_accepted
        client = ServiceClient(*server.address, keep_alive=False)
        for _ in range(5):
            client.health()
        assert server.connections_accepted == before + 5

    def test_stale_socket_reconnects_transparently(self, frontend):
        # Restart a server on the same port between calls: the client's
        # kept-alive socket is dead and must be replaced with one retry.
        with make_server(port=0, pool=1, frontend=frontend) as first:
            first.serve_background()
            host, port = first.address
            client = ServiceClient(host, port)
            assert client.health()["status"] == "ok"
        with make_server(
            host=host, port=port, pool=1, frontend=frontend
        ) as second:
            second.serve_background()
            assert client.health()["status"] == "ok"
            assert second.connections_accepted == 1
        client.close()

    def test_threads_do_not_share_a_socket(self, server):
        shared = ServiceClient(*server.address)
        errors = []

        def hit():
            try:
                for _ in range(20):
                    assert shared.health()["status"] == "ok"
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestFrontendParity:
    """Both front-ends serving the same exchanges, bytes compared."""

    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        cache = str(tmp_path_factory.mktemp("parity-cache"))
        with make_server(
            port=0, pool=2, jobs=1, cache=cache, frontend="threaded"
        ) as threaded:
            threaded.serve_background()
            with make_server(
                port=0, pool=2, jobs=1, cache=cache, frontend="async"
            ) as asynced:
                asynced.serve_background()
                yield (
                    ServiceClient(*threaded.address),
                    ServiceClient(*asynced.address),
                )

    def test_synthesize_bytes_agree(self, pair):
        a, b = pair
        body = _request(EXPRESSIONS[0]).to_json()
        status_a, raw_a = a.request_raw("POST", "/v1/synthesize", body)
        status_b, raw_b = b.request_raw("POST", "/v1/synthesize", body)
        assert (status_a, status_b) == (200, 200)
        assert strip_volatile(json.loads(raw_a)) == strip_volatile(
            json.loads(raw_b)
        )

    def test_error_envelopes_agree_byte_for_byte(self, pair):
        a, b = pair
        # Error envelopes carry no volatile fields: exact byte equality.
        exchanges = [
            ("POST", "/v1/synthesize", "not json", None),
            ("POST", "/v1/synthesize",
             _request(EXPRESSIONS[0], backend="nope").to_json(), None),
            ("GET", "/v2/nope", None, None),
            ("PUT", "/v1/synthesize", None, None),
            ("GET", "/v1/jobs/job-missing", None, None),
            ("POST", "/v1/synthesize",
             _request(EXPRESSIONS[0]).to_json(), {"timeout": "soon"}),
        ]
        for method, path, body, params in exchanges:
            status_a, raw_a = a.request_raw(method, path, body, params)
            status_b, raw_b = b.request_raw(method, path, body, params)
            assert status_a == status_b, (method, path)
            assert raw_a == raw_b, (method, path)

    def test_info_endpoints_agree(self, pair):
        a, b = pair
        assert a.backends() == b.backends()
        health_a, health_b = a.health(), b.health()
        for payload in (health_a, health_b):
            payload.pop("uptime")
        assert health_a == health_b

    def test_event_streams_agree_line_for_line(self, pair):
        a, b = pair
        # The servers share one cache dir; warm the entry first so both
        # streams take the identical (cached) event path — otherwise the
        # first would emit the cold-solve events and the second not.
        a.synthesize(_request("ab'c + a'bc"))
        body = _request("ab'c + a'bc").to_json()
        lines_a = list(
            a.request_stream(
                "POST", "/v1/synthesize", body, {"stream": 1}
            )
        )
        lines_b = list(
            b.request_stream(
                "POST", "/v1/synthesize", body, {"stream": 1}
            )
        )
        assert len(lines_a) == len(lines_b)
        for raw_a, raw_b in zip(lines_a, lines_b):
            assert strip_volatile_line(raw_a) == strip_volatile_line(raw_b)


class TestServerLifecycle:
    def test_bind_failure_cleans_up_owned_resources(self, frontend):
        import glob
        import os
        import tempfile

        pattern = os.path.join(tempfile.gettempdir(), "janus-serve-*")
        with make_server(port=0, pool=1, frontend=frontend) as first:
            taken = first.address[1]
            before = set(glob.glob(pattern))
            # Binding the occupied port must fail without leaking the
            # second server's owned temp cache dir.
            try:
                make_server(port=taken, pool=1, frontend=frontend).close()
            except OSError:
                pass
            else:  # pragma: no cover - SO_REUSEADDR platforms
                pytest.skip("platform allowed double bind")
            assert set(glob.glob(pattern)) == before
            assert os.path.isdir(first.cache_dir)  # survivor untouched

    def test_owned_cache_dir_is_removed_on_close(self, frontend):
        import os

        with make_server(port=0, pool=1, frontend=frontend) as srv:
            srv.serve_background()
            cache_dir = srv.cache_dir
            client = ServiceClient(*srv.address)
            client.synthesize(_request(EXPRESSIONS[0]))
            assert os.path.isdir(cache_dir)
        assert not os.path.exists(cache_dir)

    def test_explicit_cache_dir_is_kept_and_shared(self, tmp_path, frontend):
        cache = tmp_path / "served-cache"
        request = _request(EXPRESSIONS[0])
        with make_server(
            port=0, pool=1, cache=str(cache), frontend=frontend
        ) as srv:
            srv.serve_background()
            ServiceClient(*srv.address).synthesize(request)
        assert cache.is_dir()
        # A second server over the same directory starts warm.
        with make_server(
            port=0, pool=1, cache=str(cache), frontend=frontend
        ) as srv:
            srv.serve_background()
            client = ServiceClient(*srv.address)
            client.synthesize(request)
            stats = client.cache_stats()["engine"]
        assert stats["solver_calls"] == 0
        assert stats["suite_hits"] == 1
