"""Live-server tests: endpoint round-trips, errors, warmth, events.

Every test here runs against a real in-process
:class:`~repro.server.SynthesisServer` on an ephemeral loopback port,
exercised through :class:`repro.client.ServiceClient` — real sockets,
real threads, the exact bytes a deployment would serve.
"""

import json
import threading

import pytest

from repro.api import (
    BatchRequest,
    RequestOptions,
    Session,
    SynthesisRequest,
)
from repro.client import ServerError, ServiceClient
from repro.server import make_server

EXPRESSIONS = ["ab + a'b'c", "cd + c'd' + abe", "ab + cd"]


def _request(expression: str, backend: str = "janus") -> SynthesisRequest:
    return SynthesisRequest.from_target(
        expression,
        backend=backend,
        options=RequestOptions(max_conflicts=20_000),
    )


def strip_volatile(wire: dict) -> dict:
    """Zero the only two run-varying response fields (wall_time, stats).

    Everything else in a ``synthesis_response`` is deterministic; see
    docs/wire-schema.md "Stability rules".
    """
    wire = json.loads(json.dumps(wire))  # deep copy
    wire["wall_time"] = 0.0
    wire["stats"] = None
    for attempt in wire.get("attempts", []):
        attempt["wall_time"] = 0.0
    for nested in wire.get("responses", []):
        nested["wall_time"] = 0.0
        nested["stats"] = None
        for attempt in nested.get("attempts", []):
            attempt["wall_time"] = 0.0
    return wire


@pytest.fixture(scope="module")
def server():
    with make_server(port=0, pool=2, jobs=1) as srv:
        srv.serve_background()
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(*server.address)


class TestInfoEndpoints:
    def test_healthz(self, client):
        payload = client.health()
        assert payload["kind"] == "health"
        assert payload["status"] == "ok"
        assert payload["api"] == 1

    def test_backends_match_registry(self, client):
        from repro.api import backend_names

        assert client.backends() == sorted(backend_names())

    def test_cache_stats_shape(self, client):
        payload = client.cache_stats()
        assert payload["kind"] == "cache_stats"
        assert "solver_calls" in payload["engine"]
        # Learned-dispatch accounting is part of the served counters.
        assert payload["engine"]["dispatch_hits"] == 0
        assert payload["engine"]["dispatch_misses"] == 0
        assert payload["pool"]["size"] == 2
        assert payload["disk"] is not None


class TestSynthesize:
    def test_response_matches_session_run_byte_for_byte(self, client):
        # The acceptance criterion: the served body is the canonical
        # JSON Session.run/`janus synth --json` produces, byte-identical
        # outside the two volatile fields.
        request = _request(EXPRESSIONS[0])
        status, raw = client.request_raw(
            "POST", "/v1/synthesize", request.to_json()
        )
        assert status == 200
        with Session() as session:
            local = session.synthesize(request)
        served = strip_volatile(json.loads(raw))
        expected = strip_volatile(json.loads(local.to_json()))
        assert json.dumps(served, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_served_body_is_canonical_json(self, client):
        from repro.api import SynthesisResponse

        status, raw = client.request_raw(
            "POST", "/v1/synthesize", _request(EXPRESSIONS[1]).to_json()
        )
        assert status == 200
        text = raw.decode("utf-8")
        # from_json(to_json()) canonical round-trip holds on the bytes
        # actually served.
        assert SynthesisResponse.from_json(text).to_json() == text

    def test_client_decodes_response(self, client):
        response = client.synthesize(_request(EXPRESSIONS[0]))
        assert response.size == response.rows * response.cols
        assert response.backend == "janus"

    def test_backend_query_knob(self, client):
        via_query = client.synthesize(
            _request(EXPRESSIONS[2]), backend="exact"
        )
        via_body = client.synthesize(_request(EXPRESSIONS[2], "exact"))
        assert via_query.backend == "exact"
        assert via_query.entries == via_body.entries


class TestWarmCache:
    def test_repeat_request_does_zero_sat_work(self, client):
        request = _request("a'b + ab' + c")
        client.synthesize(request)  # populate
        before = client.cache_stats()["engine"]
        first = client.synthesize(request)
        second = client.synthesize(request)
        after = client.cache_stats()["engine"]
        assert first.entries == second.entries
        # The acceptance criterion: warm repeats report zero new SAT
        # calls and zero bound recomputations via the served stats.
        assert after["solver_calls"] == before["solver_calls"]
        assert after["bound_calls"] == before["bound_calls"]
        assert after["suite_hits"] >= before["suite_hits"] + 2

    def test_concurrent_requests_share_the_warm_cache(self, client):
        request = _request("ab + bc + ca")
        client.synthesize(request)  # populate through one pool session
        before = client.cache_stats()["engine"]
        results, errors = [], []

        def hit():
            try:
                results.append(client.synthesize(request))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len({tuple(map(tuple, r.entries)) for r in results}) == 1
        after = client.cache_stats()["engine"]
        # All four concurrent repeats — whichever pool session they
        # landed on — were served from the shared cache.
        assert after["solver_calls"] == before["solver_calls"]


class TestErrorPaths:
    def test_malformed_json_is_400(self, client):
        status, raw = client.request_raw("POST", "/v1/synthesize", "not json")
        payload = json.loads(raw)
        assert status == 400
        assert payload["kind"] == "error"
        assert payload["status"] == 400
        assert payload["type"] == "ValidationError"

    def test_schema_violation_is_400(self, client):
        bad = {"api": 1, "kind": "synthesis_request", "target": {"form": "?"}}
        status, raw = client.request_raw(
            "POST", "/v1/synthesize", json.dumps(bad)
        )
        assert status == 400

    def test_bad_expression_is_400(self, client):
        with pytest.raises(ServerError) as err:
            client.synthesize(_request("ab + ("))
        assert err.value.status == 400

    def test_unknown_backend_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client.synthesize(_request(EXPRESSIONS[0], backend="nope"))
        assert err.value.status == 404
        assert err.value.payload["type"] == "UnknownBackendError"

    def test_unknown_path_is_404(self, client):
        status, _ = client.request_raw("GET", "/v2/synthesize")
        assert status == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client.job("job-does-not-exist")
        assert err.value.status == 404

    def test_wrong_method_is_405(self, client):
        # Both directions of the asymmetry: POST on a GET route and GET
        # on a POST route are known paths with the wrong verb, not 404s.
        for method, path in [
            ("POST", "/healthz"),
            ("POST", "/v1/backends"),
            ("POST", "/v1/jobs/job-1"),
            ("GET", "/v1/synthesize"),
            ("GET", "/v1/batch"),
            ("PUT", "/v1/synthesize"),
        ]:
            status, raw = client.request_raw(method, path)
            assert status == 405, (method, path, raw)

    def test_bad_content_length_is_400_not_500(self, client):
        from http.client import HTTPConnection

        conn = HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/synthesize")
            conn.putheader("Content-Length", "not-a-number")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["type"] == "ValidationError"
        finally:
            conn.close()

    def test_oversized_body_is_rejected_without_buffering(self, client):
        from http.client import HTTPConnection

        conn = HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/synthesize")
            conn.putheader("Content-Length", str(10**12))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_non_utf8_body_is_400_not_500(self, client):
        from http.client import HTTPConnection

        conn = HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request("POST", "/v1/synthesize", body=b"\xff\xfe{}")
            response = conn.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["type"] == "ValidationError"
        finally:
            conn.close()

    def test_keepalive_survives_rejected_posts_with_bodies(self, client):
        # An unread POST body on a 404/405 must not desync the next
        # request on the same persistent connection.
        from http.client import HTTPConnection

        conn = HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request("POST", "/v1/nope", body=b'{"x": 1}')
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["kind"] == "health"
            conn.request("PUT", "/v1/synthesize", body=b'{"y": 2}')
            response = conn.getresponse()
            assert response.status == 405
            response.read()
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
        finally:
            conn.close()

    def test_timeout_budget_is_408(self, client):
        # A fresh spec (nothing cached) with an unmeetable budget: the
        # server must answer 408 without waiting for the solve.
        request = SynthesisRequest.from_target(
            "ab'c + a'bd + cd'e + b'de + ace'",
            options=RequestOptions(max_conflicts=200_000),
        )
        with pytest.raises(ServerError) as err:
            client.synthesize(request, timeout=0.005)
        assert err.value.status == 408
        assert err.value.payload["type"] == "BudgetExceeded"

    def test_bad_query_param_is_400(self, client):
        status, _ = client.request_raw(
            "POST",
            "/v1/synthesize",
            _request(EXPRESSIONS[0]).to_json(),
            params={"timeout": "soon"},
        )
        assert status == 400


class TestBatchAndEvents:
    def test_sync_batch_matches_session_run_batch(self, client):
        requests = tuple(_request(e) for e in EXPRESSIONS)
        served = client.run_batch(BatchRequest(requests=requests))
        with Session() as session:
            local = session.run_batch(BatchRequest(requests=requests))
        assert strip_volatile(json.loads(served.to_json())) == strip_volatile(
            json.loads(local.to_json())
        )

    def test_async_batch_lifecycle(self, client):
        job_id = client.submit_batch([_request(e) for e in EXPRESSIONS])
        batch = client.wait_batch(job_id)
        assert len(batch) == len(EXPRESSIONS)
        envelope = client.job(job_id)
        assert envelope["status"] == "done"
        assert envelope["size"] == len(EXPRESSIONS)
        assert envelope["response"]["kind"] == "batch_response"

    def test_event_stream_is_ordered_and_lossless(self, client):
        from repro.api import EVENT_KINDS, event_from_wire

        job_id = client.submit_batch([_request(e) for e in EXPRESSIONS])
        # Page through with a tiny cursor step to prove resumability.
        events, cursor = [], 0
        while True:
            page = client.events(job_id, cursor=cursor, timeout=10)
            assert page["cursor"] == cursor + len(page["events"])
            events.extend(page["events"])
            cursor = page["cursor"]
            if page["done"] and not page["events"]:
                break
        # Every event decodes back to its dataclass.
        for wire in events:
            assert wire["event"] in EVENT_KINDS
            event_from_wire(wire)
        # One synthesis_started/finished pair per request, in order.
        names = [e["name"] for e in events if e["event"] == "synthesis_started"]
        finished = [
            e["name"] for e in events if e["event"] == "synthesis_finished"
        ]
        assert names == finished == ["f"] * len(EXPRESSIONS)
        # Within one job, started always precedes its finished.
        starts = [i for i, e in enumerate(events)
                  if e["event"] == "synthesis_started"]
        ends = [i for i, e in enumerate(events)
                if e["event"] == "synthesis_finished"]
        assert all(s < e for s, e in zip(starts, ends))
        # A full re-read from cursor 0 replays the identical stream.
        replay = client.events(job_id, cursor=0, timeout=1)
        assert replay["events"][: len(events)] == events

    def test_async_batch_error_is_recorded_on_the_job(self, client):
        job_id = client.submit_batch(
            [_request(EXPRESSIONS[0], backend="nope")]
        )
        with pytest.raises(ServerError) as err:
            client.wait_batch(job_id)
        assert err.value.status == 404
        assert client.job(job_id)["status"] == "error"


class TestPerRequestKnobs:
    def test_jobs_override_work_lands_in_served_stats(self, client, server):
        # A one-off engine width runs in a throwaway session, but its
        # counters must still reach /v1/cache/stats (pool absorbs them).
        request = _request("a'bc + ab'c + abc'")
        before = client.cache_stats()["engine"]
        client.synthesize(request, jobs=server.pool.jobs + 1)
        after = client.cache_stats()["engine"]
        assert after["suite_misses"] == before["suite_misses"] + 1

    def test_jobs_zero_normalizes_like_the_pool(self, client, server):
        # ?jobs=0 means "all CPUs"; on a pool already at that width the
        # request must ride the warm pool, not a throwaway session.
        from repro.engine import default_jobs

        if default_jobs() != server.pool.jobs:
            pytest.skip("pool width differs from the machine's CPU count")
        request = _request("ab + a'b'")
        client.synthesize(request)
        before = client.cache_stats()["engine"]
        client.synthesize(request, jobs=0)
        after = client.cache_stats()["engine"]
        # Served from the warm pool's suite cache; a one-off session
        # would also hit it, but the pool counters moving without any
        # retired-session absorption is the warm-path signature.
        assert after["suite_hits"] == before["suite_hits"] + 1
        assert after["solver_calls"] == before["solver_calls"]


class TestServerLifecycle:
    def test_bind_failure_cleans_up_owned_resources(self):
        import glob
        import os
        import tempfile

        pattern = os.path.join(tempfile.gettempdir(), "janus-serve-*")
        with make_server(port=0, pool=1) as first:
            taken = first.address[1]
            before = set(glob.glob(pattern))
            # Binding the occupied port must fail without leaking the
            # second server's owned temp cache dir.
            try:
                make_server(port=taken, pool=1).close()
            except OSError:
                pass
            else:  # pragma: no cover - SO_REUSEADDR platforms
                pytest.skip("platform allowed double bind")
            assert set(glob.glob(pattern)) == before
            assert os.path.isdir(first.cache_dir)  # survivor untouched
    def test_owned_cache_dir_is_removed_on_close(self):
        import os

        with make_server(port=0, pool=1) as srv:
            srv.serve_background()
            cache_dir = srv.cache_dir
            client = ServiceClient(*srv.address)
            client.synthesize(_request(EXPRESSIONS[0]))
            assert os.path.isdir(cache_dir)
        assert not os.path.exists(cache_dir)

    def test_explicit_cache_dir_is_kept_and_shared(self, tmp_path):
        cache = tmp_path / "served-cache"
        request = _request(EXPRESSIONS[0])
        with make_server(port=0, pool=1, cache=str(cache)) as srv:
            srv.serve_background()
            ServiceClient(*srv.address).synthesize(request)
        assert cache.is_dir()
        # A second server over the same directory starts warm.
        with make_server(port=0, pool=1, cache=str(cache)) as srv:
            srv.serve_background()
            client = ServiceClient(*srv.address)
            client.synthesize(request)
            stats = client.cache_stats()["engine"]
        assert stats["solver_calls"] == 0
        assert stats["suite_hits"] == 1
