"""Tests for structural checks and the lower bound."""

import pytest

from repro.core import (
    make_spec,
    shapes_of_area,
    sizes_coverable,
    structural_check,
    structural_lower_bound,
)


class TestSizesCoverable:
    def test_simple_match(self):
        assert sizes_coverable([2, 3], [3, 3])

    def test_distinctness_enforced(self):
        # Two target products cannot share one lattice product.
        assert not sizes_coverable([2, 2], [3])

    def test_size_threshold(self):
        assert not sizes_coverable([4], [3, 3, 3])

    def test_empty_target(self):
        assert sizes_coverable([], [1])

    def test_greedy_matching_is_exact(self):
        # targets 3,1 vs lattice 2,3: match 3->3, 1->2 works.
        assert sizes_coverable([3, 1], [2, 3])
        # targets 3,3 vs lattice 2,3 fails.
        assert not sizes_coverable([3, 3], [2, 3])


class TestStructuralCheck:
    def test_paper_8x1_counterexample(self):
        """Paper: f = abcd + a'b'c'd' cannot use 8x1 (one path, two
        products needed)."""
        spec = make_spec("abcd + a'b'c'd'")
        assert not structural_check(spec, 8, 1)

    def test_paper_2x4_counterexample(self):
        """Paper: f_2x4 products have 2 literals but f needs 4."""
        spec = make_spec("abcd + a'b'c'd'")
        assert not structural_check(spec, 2, 4)

    def test_4x2_passes(self):
        spec = make_spec("abcd + a'b'c'd'")
        assert structural_check(spec, 4, 2)

    def test_check_considers_duals(self):
        # f = a+b+c+d has one dual product of 4 literals; a 2x2 lattice's
        # dual paths have only 2 cells.
        spec = make_spec("a + b + c + d")
        assert not structural_check(spec, 2, 2)


class TestShapes:
    def test_shapes_of_area(self):
        assert shapes_of_area(6) == [(1, 6), (2, 3), (3, 2), (6, 1)]

    def test_prime_area(self):
        assert shapes_of_area(7) == [(1, 7), (7, 1)]


class TestLowerBound:
    def test_fully_complemented_pair(self):
        # For abcd + a'b'c'd' a 3x2 shape passes the (necessary-only)
        # structural check, so the bound is 6 although the optimum is 8.
        spec = make_spec("abcd + a'b'c'd'")
        lb = structural_lower_bound(spec)
        assert lb == 6

    def test_fig1_function(self):
        # Reconstructed Fig. 1 function (the published TL set lacks c').
        spec = make_spec("abcd + a'b'cd'")
        lb = structural_lower_bound(spec)
        assert lb <= 8  # optimum is the 4x2 lattice of Fig. 1(d)

    def test_fig4_matches_paper(self):
        spec = make_spec("cd + c'd' + abe + a'b'e'")
        assert structural_lower_bound(spec) == 12

    def test_constant(self):
        spec = make_spec("1", name="one")
        assert structural_lower_bound(spec) == 1

    def test_single_literal(self):
        spec = make_spec("a")
        assert structural_lower_bound(spec) == 1

    def test_lower_bound_never_exceeds_optimum(self, fast_options):
        from repro.core import synthesize

        spec = make_spec("ab + a'b'")
        lb = structural_lower_bound(spec)
        result = synthesize(spec, options=fast_options)
        assert lb <= result.size
