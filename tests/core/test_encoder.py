"""Tests for the LM SAT encoder: solutions decode to verified lattices."""

import pytest

from repro.core import EncodeOptions, best_encoding, encode_lm, make_spec
from repro.errors import EncodingError
from repro.sat import solve_cnf


def solve_side(spec, rows, cols, side, options=EncodeOptions()):
    enc = encode_lm(spec, rows, cols, side, options)
    assert enc.cnf is not None
    result = solve_cnf(enc.cnf, max_conflicts=50_000)
    return enc, result


class TestPrimalEncoding:
    def test_sat_and_verified(self):
        spec = make_spec("ab + a'b'")
        enc, result = solve_side(spec, 2, 2, "primal")
        assert result.is_sat
        la = enc.decode(result)
        assert la.realizes(spec.tt)

    def test_unsat_when_too_small(self):
        # f needs 2 distinct products; a 2x1 lattice has a single path.
        spec = make_spec("ab + a'b'")
        enc, result = solve_side(spec, 2, 1, "primal")
        assert result.is_unsat

    def test_fig1_3x3_realization(self):
        """Paper Fig. 1(c): the Fig. 1 function fits on 3x3.

        Reconstruction note: the paper's TL set {a,a',b,b',c,d,d',0,1}
        lacks c', so the second product keeps c positive.  (The fully
        complemented abcd + a'b'c'd' is provably NOT 3x3-realizable: every
        length->=4 path in a 3x3 lattice crosses the centre switch, forcing
        the two 4-literal products to share a literal.)
        """
        spec = make_spec("abcd + a'b'cd'")
        enc, result = solve_side(spec, 3, 3, "primal")
        assert result.is_sat
        assert enc.decode(result).realizes(spec.tt)

    def test_fully_complemented_pair_not_3x3_realizable(self):
        spec = make_spec("abcd + a'b'c'd'")
        for side in ("primal", "dual"):
            _, result = solve_side(spec, 3, 3, side)
            assert result.is_unsat

    def test_row_facts_do_not_change_satisfiability(self):
        spec = make_spec("ab + a'c")
        for rows, cols in [(2, 2), (2, 3), (3, 2)]:
            with_facts = solve_side(
                spec, rows, cols, "primal", EncodeOptions(row_facts=True)
            )[1].status
            without = solve_side(
                spec, rows, cols, "primal", EncodeOptions(row_facts=False)
            )[1].status
            assert with_facts == without

    def test_degree_constraints_preserve_known_solutions(self):
        spec = make_spec("abcd + a'b'c'd'")
        for flag in (True, False):
            enc, result = solve_side(
                spec, 4, 2, "primal", EncodeOptions(degree_constraints=flag)
            )
            assert result.is_sat
            assert enc.decode(result).realizes(spec.tt)


class TestDualEncoding:
    def test_dual_side_sat_and_verified(self):
        spec = make_spec("ab + a'b'")
        enc, result = solve_side(spec, 2, 2, "dual")
        assert result.is_sat
        la = enc.decode(result)
        # The decoded grid must realize f between top and bottom plates.
        assert la.realizes(spec.tt)

    @pytest.mark.parametrize("expr", ["ab + a'c", "a + bc", "ab + cd"])
    def test_dual_side_decodes_with_constants(self, expr):
        """Force the dual side on lattices with slack so constants appear;
        the constant-flip in decode must keep the TB function correct."""
        spec = make_spec(expr)
        enc, result = solve_side(spec, 3, 3, "dual")
        assert result.is_sat
        assert enc.decode(result).realizes(spec.tt)

    def test_sides_agree_on_unsat(self):
        spec = make_spec("ab + a'b'")
        _, primal = solve_side(spec, 2, 1, "primal")
        _, dual = solve_side(spec, 2, 1, "dual")
        assert primal.is_unsat and dual.is_unsat


class TestBestEncoding:
    def test_picks_smaller_complexity(self):
        spec = make_spec("ab + a'b'")
        chosen, built = best_encoding(spec, 2, 2)
        assert chosen is not None
        complexities = [e.complexity for e in built if e.cnf is not None]
        assert chosen.complexity == min(complexities)

    def test_single_side_selection(self):
        spec = make_spec("ab")
        chosen, built = best_encoding(spec, 2, 1, sides=("primal",))
        assert chosen is not None and chosen.side == "primal"
        assert len(built) == 1

    def test_unknown_side_rejected(self):
        with pytest.raises(EncodingError):
            encode_lm(make_spec("a"), 1, 1, side="sideways")

    def test_too_big_marker(self):
        spec = make_spec("ab + a'b'")
        enc = encode_lm(spec, 6, 6, "primal", EncodeOptions(max_products=10))
        assert enc.too_big
        assert enc.cnf is None


class TestEncodingShape:
    def test_mapping_variables_exactly_one(self):
        spec = make_spec("ab + a'b'")
        enc, result = solve_side(spec, 2, 2, "primal")
        assert result.is_sat
        model = result.model
        for cell in range(4):
            mapped = [
                j
                for j in range(len(enc.tl))
                if model[enc.mapping_vars[(cell, j)] - 1]
            ]
            assert len(mapped) == 1

    def test_tl_contains_cover_literals_and_constants(self):
        spec = make_spec("ab + a'b'")
        enc = encode_lm(spec, 2, 2, "primal")
        strings = {e.to_string(spec.name_list()) for e in enc.tl}
        assert {"a", "b", "a'", "b'", "0", "1"} <= strings

    def test_complexity_positive(self):
        spec = make_spec("ab + a'b'")
        enc = encode_lm(spec, 2, 2, "primal")
        assert enc.complexity > 0
