"""Differential soundness: encoder + solver vs exhaustive enumeration.

For tiny grids the LM problem can be decided by enumerating *every*
assignment of target literals/constants to the switches and running the
independent connectivity checker.  The SAT pipeline (both encoding sides)
must agree exactly — this is the strongest end-to-end guarantee in the
suite, covering the encoder's zero/one-entry clauses, the exactly-one
constraints, the dual-side constant flip and the solver itself.
"""

import itertools

import pytest

from repro.core import EncodeOptions, encode_lm, make_spec
from repro.core.encoder import _target_literal_set
from repro.lattice import LatticeAssignment
from repro.sat import solve_cnf


def brute_force_realizable(spec, rows, cols) -> bool:
    tl = _target_literal_set(spec.isop)
    for combo in itertools.product(tl, repeat=rows * cols):
        la = LatticeAssignment(rows, cols, list(combo), spec.num_inputs)
        if la.realizes(spec.tt):
            return True
    return False


CASES = [
    ("ab + a'b'", 2, 2, True),
    ("ab + a'b'", 2, 1, False),
    ("ab' + a'b", 2, 2, True),
    ("ab", 2, 2, True),
    ("a + b", 2, 2, True),
    ("ab + a'c", 2, 2, True),
]


@pytest.mark.parametrize("expr,rows,cols,realizable", CASES)
def test_pipeline_matches_brute_force(expr, rows, cols, realizable):
    spec = make_spec(expr)
    assert brute_force_realizable(spec, rows, cols) == realizable
    for side in ("primal", "dual"):
        enc = encode_lm(spec, rows, cols, side, EncodeOptions())
        result = solve_cnf(enc.cnf, max_conflicts=100_000)
        assert result.status == ("sat" if realizable else "unsat"), (
            expr, rows, cols, side,
        )
        if result.is_sat:
            assert enc.decode(result).realizes(spec.tt)


def test_larger_case_3x2():
    spec = make_spec("abc + a'b'c'")
    assert brute_force_realizable(spec, 3, 2)
    for side in ("primal", "dual"):
        enc = encode_lm(spec, 3, 2, side, EncodeOptions())
        result = solve_cnf(enc.cnf, max_conflicts=100_000)
        assert result.is_sat
        assert enc.decode(result).realizes(spec.tt)
