"""Tests for autosymmetric-function detection and synthesis."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.boolf import Sop, TruthTable
from repro.core import (
    autosymmetry_degree,
    linear_space,
    reduce_autosymmetric,
    synthesize_autosymmetric,
)
from repro.boolf.gf2 import in_span


def xor_function(num_vars: int) -> TruthTable:
    values = np.array(
        [bin(m).count("1") % 2 == 1 for m in range(1 << num_vars)], dtype=bool
    )
    return TruthTable(values, num_vars)


class TestLinearSpace:
    def test_xor_is_fully_autosymmetric(self):
        # x0 ^ x1 ^ x2 satisfies f(x ^ a) = f(x) for every even-weight a:
        # L_f has dimension n-1.
        tt = xor_function(3)
        assert autosymmetry_degree(tt) == 2

    def test_generic_function_not_autosymmetric(self):
        tt = TruthTable.from_minterms([0, 1, 2, 4], 3)
        assert autosymmetry_degree(tt) == 0

    def test_constant_function_has_full_space(self):
        assert autosymmetry_degree(TruthTable.ones(3)) == 3
        assert autosymmetry_degree(TruthTable.zeros(3)) == 3

    def test_membership_definition(self):
        tt = xor_function(4)
        basis = linear_space(tt)
        for alpha in range(1, 16):
            invariant = all(
                tt.evaluate(m ^ alpha) == tt.evaluate(m) for m in range(16)
            )
            assert in_span(alpha, basis) == invariant


class TestReduction:
    def test_restriction_dimension(self):
        tt = xor_function(3)
        red = reduce_autosymmetric(tt)
        assert red.degree == 2
        assert red.restriction.num_vars == 1

    def test_composition_identity(self):
        tt = xor_function(4)
        red = reduce_autosymmetric(tt)
        for m in range(16):
            assert red.compose(m) == tt.evaluate(m)

    def test_trivial_reduction_for_k0(self):
        tt = TruthTable.from_minterms([0, 1, 2, 4], 3)
        red = reduce_autosymmetric(tt)
        assert red.degree == 0
        assert red.restriction == tt
        assert red.functionals == [1, 2, 4]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_composition_identity_random(self, seed):
        rng = np.random.default_rng(seed)
        base = TruthTable.random(2, rng)
        # Lift to 4 vars through XOR preprocessing to force autosymmetry:
        # g(x) = base(x0^x1, x2^x3) is >= 2-autosymmetric.
        values = np.zeros(16, dtype=bool)
        for m in range(16):
            y = (m & 1) ^ (m >> 1 & 1) | (((m >> 2 & 1) ^ (m >> 3 & 1)) << 1)
            values[m] = base.evaluate(y)
        tt = TruthTable(values, 4)
        assert autosymmetry_degree(tt) >= 2
        red = reduce_autosymmetric(tt)
        for m in range(16):
            assert red.compose(m) == tt.evaluate(m)


class TestSynthesis:
    def test_xor_synthesis_verifies(self):
        result = synthesize_autosymmetric(xor_function(3))
        assert result.reduction.degree == 2
        # The restriction is a single variable: a 1x1 lattice suffices.
        assert result.lattice_size == 1
        assert result.num_exor_gates >= 1

    def test_affine_target(self):
        # f = (a ^ b)(c ^ d): 2-autosymmetric, restriction is y0*y1.
        values = np.zeros(16, dtype=bool)
        for m in range(16):
            values[m] = ((m ^ (m >> 1)) & 1) and ((m >> 2 ^ (m >> 3)) & 1)
        tt = TruthTable(values, 4)
        result = synthesize_autosymmetric(tt)
        assert result.reduction.degree == 2
        assert result.realized_truthtable() == tt
        # AND of two literals fits on a 2x1 lattice.
        assert result.lattice_size == 2

    def test_non_autosymmetric_degrades_gracefully(self):
        sop = Sop.from_string("ab + cd'")
        result = synthesize_autosymmetric(sop)
        assert result.reduction.degree == 0
        assert result.num_exor_gates == 0
        assert result.realized_truthtable() == sop.to_truthtable()
