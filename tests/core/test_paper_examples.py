"""Integration tests pinning every worked example in the paper.

These tests are the reproduction's ground truth: each asserts a number or
structure the paper states explicitly.
"""

import pytest

from repro.boolf import parse_sop
from repro.core import (
    JanusOptions,
    best_upper_bound,
    make_spec,
    structural_lower_bound,
    synthesize,
    ub_ds,
)
from repro.lattice import lattice_dual_function, lattice_function


class TestSection2Examples:
    def test_f3x3_nine_products(self):
        """Section I writes f_3x3 as a 9-product SOP."""
        assert lattice_function(3, 3).num_products == 9

    def test_f3x3_redundant_path_eliminated(self):
        """x1x2x3x6x9 is not a product (absorbed by x3x6x9)."""
        masks = set(lattice_function(3, 3).cubes)
        absorbed = sum(1 << (c - 1) for c in (1, 2, 3, 6, 9))
        assert all(c.pos != absorbed for c in masks)

    def test_dual_f3x3_seventeen_products(self):
        """Footnote 1: the dual of f_3x3 has 17 products."""
        assert lattice_dual_function(3, 3).num_products == 17

    def test_f8x1_single_product(self):
        f = lattice_function(8, 1)
        assert f.num_products == 1
        assert f.cubes[0].num_literals == 8

    def test_f2x4_four_products(self):
        """Section III-A: f_2x4 = x1x5 + x2x6 + x3x7 + x4x8."""
        f = lattice_function(2, 4)
        assert f.num_products == 4
        assert all(c.num_literals == 2 for c in f.cubes)


class TestFig1:
    FIG1 = "abcd + a'b'cd'"  # reconstructed; the printed TL set lacks c'

    def test_minimum_is_4x2(self):
        result = synthesize(self.FIG1, options=JanusOptions(max_conflicts=30_000))
        assert result.size == 8

    def test_3x3_realizable(self, fast_options):
        from repro.core import solve_lm

        outcome = solve_lm(make_spec(self.FIG1), 3, 3, fast_options)
        assert outcome.status == "sat"


class TestFig4:
    """Section III-B's worked example with all published bound values."""

    EXPR = "cd + c'd' + abe + a'b'e'"

    @pytest.fixture(scope="class")
    def spec(self):
        return make_spec(self.EXPR, name="fig4")

    def test_all_bounds_match_paper(self, spec, fast_options):
        _, bounds = best_upper_bound(spec)
        assert (bounds["dp"].rows, bounds["dp"].cols) == (6, 4)
        assert (bounds["ps"].rows, bounds["ps"].cols) == (3, 7)
        assert (bounds["dps"].rows, bounds["dps"].cols) == (11, 4)
        assert (bounds["ips"].rows, bounds["ips"].cols) == (3, 5)
        assert (bounds["idps"].rows, bounds["idps"].cols) == (8, 4)
        ds = ub_ds(spec, fast_options)
        assert (ds.rows, ds.cols) == (3, 5)

    def test_initial_upper_bound_15(self, spec, fast_options):
        result = synthesize(spec, options=fast_options)
        assert result.initial_upper_bound == 15

    def test_initial_lower_bound_12(self, spec):
        assert structural_lower_bound(spec) == 12

    def test_minimum_3x4(self, spec, fast_options):
        result = synthesize(spec, options=fast_options)
        assert result.size == 12
        assert result.assignment.realizes(spec.tt)


class TestSection3Narrative:
    def test_degree_example(self):
        """Section III-A: f = bcd + abcde has degree 5 like f_3x3."""
        f = parse_sop("bcd + a'bcde")
        assert f.degree == 5
        assert lattice_function(3, 3).degree == 5

    def test_structural_counterexamples(self):
        """Neither f_8x1 nor f_2x4 can realize the Fig. 1 function."""
        from repro.core import structural_check

        spec = make_spec("abcd + a'b'cd'")
        assert not structural_check(spec, 8, 1)
        assert not structural_check(spec, 2, 4)
