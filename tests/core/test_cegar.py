"""Tests for the lazy (CEGAR) LM solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boolf import TruthTable
from repro.core import make_spec, solve_lm, solve_lm_cegar
from repro.core.janus import JanusOptions


class TestBasics:
    def test_feasible_instance(self):
        spec = make_spec("ab + a'b'")
        outcome = solve_lm_cegar(spec, 2, 2)
        assert outcome.status == "sat"
        assert outcome.assignment is not None
        assert outcome.assignment.realizes(spec.tt)

    def test_infeasible_instance(self):
        # Two disjoint 4-literal products cannot fit on 3x3 (every long
        # path crosses the centre switch).
        spec = make_spec("abcd + a'b'c'd'")
        outcome = solve_lm_cegar(spec, 3, 3)
        assert outcome.status == "unsat"

    def test_trivially_small_lattice(self):
        spec = make_spec("ab")
        outcome = solve_lm_cegar(spec, 1, 1)
        assert outcome.status == "unsat"

    def test_single_literal(self):
        spec = make_spec("a")
        outcome = solve_lm_cegar(spec, 1, 1)
        assert outcome.status == "sat"
        assert outcome.assignment.realizes(spec.tt)

    def test_iteration_budget_respected(self):
        spec = make_spec("ab + cd + a'd'")
        outcome = solve_lm_cegar(spec, 3, 3, max_iterations=1)
        # One iteration can at best return an unverified candidate's
        # refinement; status must be sat only with a verified lattice.
        if outcome.status == "sat":
            assert outcome.assignment.realizes(spec.tt)
        assert outcome.stats.iterations <= 1

    def test_stats_populated(self):
        spec = make_spec("ab + a'b'")
        outcome = solve_lm_cegar(spec, 2, 2)
        assert outcome.stats.iterations >= 1
        assert outcome.stats.clauses > 0
        assert outcome.stats.wall_time >= 0.0


class TestAgainstEagerSolver:
    @pytest.mark.parametrize(
        "expression,rows,cols",
        [
            ("ab + a'b'", 2, 2),
            ("ab + a'c", 2, 2),
            ("abc", 3, 1),
            ("a + b + c", 1, 3),
            ("ab + bc + ac", 3, 2),
            ("abcd + a'b'c'd'", 3, 3),
            ("ab + a'b'", 1, 2),
        ],
    )
    def test_same_verdict_as_eager(self, expression, rows, cols):
        spec = make_spec(expression)
        eager = solve_lm(spec, rows, cols, JanusOptions(max_conflicts=100_000))
        lazy = solve_lm_cegar(spec, rows, cols)
        assert lazy.status == eager.status
        if lazy.status == "sat":
            assert lazy.assignment.realizes(spec.tt)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_functions_agree(self, seed):
        rng = np.random.default_rng(seed)
        tt = TruthTable.random(3, rng)
        if tt.is_zero() or tt.is_one():
            return
        spec = make_spec(tt)
        eager = solve_lm(spec, 2, 3, JanusOptions(max_conflicts=100_000))
        lazy = solve_lm_cegar(spec, 2, 3)
        assert lazy.status == eager.status
        if lazy.status == "sat":
            assert lazy.assignment.realizes(spec.tt)


class TestDontCares:
    def test_interval_accepted(self):
        from repro.core.target import TargetSpec

        on = TruthTable.from_minterms([3], 2)
        dc = TruthTable.from_minterms([0], 2)
        spec = TargetSpec.from_truthtable(on, dc=dc)
        outcome = solve_lm_cegar(spec, 2, 1)
        assert outcome.status == "sat"
        realized = outcome.assignment.realized_truthtable()
        assert on.implies(realized)
        assert realized.implies(on | dc)


class TestLazinessWins:
    def test_fewer_clauses_than_eager_on_sparse_function(self):
        from repro.core.encoder import EncodeOptions, encode_lm

        # Many inputs, simple function: the eager encoding pays for every
        # TL pattern, CEGAR only for the patterns it actually needed.
        spec = make_spec("ab + cd + ef")
        eager = encode_lm(spec, 3, 3, "primal", EncodeOptions())
        lazy = solve_lm_cegar(spec, 3, 3)
        assert lazy.status == "sat"
        assert eager.cnf is not None
        assert lazy.stats.clauses < eager.cnf.num_clauses
