"""Tests for the bound constructions: every bound must verify.

The constructions promise verified assignments; these tests exercise them
on the paper's worked example (pinning the published shapes), on a suite
of structured functions, and on random functions.
"""

import numpy as np
import pytest

from repro.boolf import TruthTable
from repro.core import (
    TargetSpec,
    best_upper_bound,
    make_spec,
    ub_dp,
    ub_dps,
    ub_idps,
    ub_ips,
    ub_ps,
)
from repro.errors import SynthesisError

SUITE = [
    "ab + a'b'",
    "ab + cd",
    "a + bc + b'c'",
    "abc + a'b'c'",
    "ab'c + a'bc + abc'",
    "cd + c'd' + abe + a'b'e'",
    "a + b + c",
    "abcd + a'b'c'd'",
    "ab + bc + cd",
]


@pytest.fixture(scope="module")
def specs():
    return [make_spec(expr, name=f"suite{i}") for i, expr in enumerate(SUITE)]


class TestPaperFig4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return make_spec("cd + c'd' + abe + a'b'e'", name="fig4")

    def test_dp_shape(self, fig4):
        r = ub_dp(fig4)
        assert (r.rows, r.cols) == (6, 4)

    def test_ps_shape(self, fig4):
        r = ub_ps(fig4)
        assert (r.rows, r.cols) == (3, 7)

    def test_dps_shape(self, fig4):
        r = ub_dps(fig4)
        assert (r.rows, r.cols) == (11, 4)

    def test_ips_shape(self, fig4):
        r = ub_ips(fig4)
        assert (r.rows, r.cols) == (3, 5)

    def test_idps_shape(self, fig4):
        r = ub_idps(fig4)
        assert (r.rows, r.cols) == (8, 4)

    def test_best_is_paper_initial_ub(self, fig4):
        best, _ = best_upper_bound(fig4)
        assert best.size == 15


class TestAllMethodsVerify:
    @pytest.mark.parametrize(
        "method", [ub_dp, ub_ps, ub_dps, ub_ips, ub_idps],
        ids=["dp", "ps", "dps", "ips", "idps"],
    )
    def test_suite(self, specs, method):
        for spec in specs:
            result = method(spec)
            # _verify inside the constructions raises on failure; assert
            # again here against the independent checker.
            assert result.assignment.realizes(spec.tt), (spec.name, result)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_functions(self, seed):
        rng = np.random.default_rng(seed)
        tt = TruthTable.random(4, rng, density=0.4)
        if tt.is_zero() or tt.is_one():
            pytest.skip("constant function")
        spec = TargetSpec.from_truthtable(tt, name=f"rand{seed}")
        for method in (ub_dp, ub_ps, ub_dps, ub_ips, ub_idps):
            result = method(spec)
            assert result.assignment.realizes(spec.tt)


class TestShapes:
    def test_dp_dimensions(self, specs):
        for spec in specs:
            r = ub_dp(spec)
            assert r.rows == spec.num_dual_products
            assert r.cols == spec.num_products

    def test_ps_dimensions(self, specs):
        for spec in specs:
            r = ub_ps(spec)
            assert r.rows == spec.degree
            assert r.cols == 2 * spec.num_products - 1

    def test_dps_dimensions(self, specs):
        for spec in specs:
            r = ub_dps(spec)
            assert r.rows == 2 * spec.num_dual_products - 1
            assert r.cols == spec.dual_degree

    def test_ips_never_wider_than_ps(self, specs):
        for spec in specs:
            assert ub_ips(spec).cols <= ub_ps(spec).cols

    def test_idps_never_taller_than_dps(self, specs):
        for spec in specs:
            assert ub_idps(spec).rows <= ub_dps(spec).rows


class TestEdgeCases:
    def test_constant_rejected(self):
        spec = make_spec("1", name="one")
        with pytest.raises(SynthesisError):
            ub_dp(spec)

    def test_single_product(self):
        spec = make_spec("abc")
        for method in (ub_dp, ub_ps, ub_ips):
            assert method(spec).assignment.realizes(spec.tt)

    def test_best_upper_bound_returns_all(self):
        spec = make_spec("ab + a'b'")
        best, results = best_upper_bound(spec)
        assert set(results) == {"dp", "ps", "dps", "ips", "idps"}
        assert best.size == min(r.size for r in results.values())

    def test_best_upper_bound_subset(self):
        spec = make_spec("ab + a'b'")
        _, results = best_upper_bound(spec, ("dp", "ps"))
        assert set(results) == {"dp", "ps"}
