"""Tests for the baseline algorithms ([6] exact/approx, [11], [9]-like)."""

import pytest

from repro.core import (
    approx_restricted,
    decompose_pcircuit,
    exact_search,
    heuristic_candidates,
    make_spec,
    synthesize,
)

EXPRS = ["ab + a'b'", "ab + cd", "a + bc"]


@pytest.mark.parametrize(
    "algorithm",
    [exact_search, approx_restricted, heuristic_candidates, decompose_pcircuit],
    ids=["exact", "approx", "heuristic", "pcircuit"],
)
class TestAllBaselines:
    @pytest.mark.parametrize("expr", EXPRS)
    def test_verified_solutions(self, algorithm, expr, fast_options):
        result = algorithm(expr, options=fast_options)
        assert result.assignment.realizes(result.spec.tt)

    def test_trivial_constant(self, algorithm, fast_options):
        result = algorithm("1", name="one", options=fast_options)
        assert result.size == 1
        assert result.method != "janus"


class TestRelativeQuality:
    def test_janus_not_worse_than_exact_on_small(self, fast_options):
        """With ample budget both reach the optimum on easy functions."""
        for expr in EXPRS:
            j = synthesize(expr, options=fast_options)
            e = exact_search(expr, options=fast_options)
            assert j.size <= e.size

    def test_approx_not_better_than_exact(self, fast_options):
        """The restricted encoding can only shrink the solution set."""
        for expr in EXPRS:
            a = approx_restricted(expr, options=fast_options)
            e = exact_search(expr, options=fast_options)
            assert a.size >= e.size

    def test_heuristic_within_bounds(self, fast_options):
        for expr in EXPRS:
            h = heuristic_candidates(expr, options=fast_options)
            assert h.size <= h.initial_upper_bound

    def test_methods_labelled(self, fast_options):
        assert exact_search("ab", options=fast_options).method == "exact[6]"
        assert approx_restricted("ab", options=fast_options).method == "approx[6]"
        assert (
            heuristic_candidates("ab", options=fast_options).method
            == "heuristic[11]"
        )
        assert (
            decompose_pcircuit("ab + cd", options=fast_options).method
            == "pcircuit[9]"
        )

    def test_exact_uses_old_bounds_only(self, fast_options):
        result = exact_search("ab + a'b'", options=fast_options)
        assert set(result.upper_bounds) <= {"dp", "ps", "dps"}
