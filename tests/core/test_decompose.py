"""Tests for the DS (divide-and-synthesize) bound."""

import pytest

from repro.boolf import parse_sop
from repro.core import make_spec, partition_products, ub_ds
from repro.core.janus import JanusOptions
from repro.errors import SynthesisError


class TestPartition:
    def test_balanced_counts(self):
        cover = parse_sop("ab + cd + ef + gh + a'c'")
        g, h = partition_products(cover)
        assert abs(g.num_products - h.num_products) <= 1
        assert g.num_products + h.num_products == cover.num_products

    def test_union_preserves_function(self):
        cover = parse_sop("ab + cd + a'd' + bc")
        g, h = partition_products(cover)
        assert (g | h).equivalent(cover)

    def test_literal_balance(self):
        cover = parse_sop("abcde + a + b + c")
        g, h = partition_products(cover)
        # The big product must not be paired with everything else.
        assert {g.num_products, h.num_products} == {2}

    def test_single_product_rejected(self):
        with pytest.raises(SynthesisError):
            partition_products(parse_sop("ab"))


class TestUbDs:
    def test_fig4_gives_3x5(self, fast_options):
        """Paper: DS finds a 3x5 lattice on the Fig. 4 function."""
        spec = make_spec("cd + c'd' + abe + a'b'e'")
        result = ub_ds(spec, fast_options)
        assert result.assignment.realizes(spec.tt)
        assert result.size == 15

    @pytest.mark.parametrize(
        "expr", ["ab + a'b'", "ab + cd", "ab + bc + cd", "abc + a'b'c'"]
    )
    def test_ds_verifies(self, expr, fast_options):
        spec = make_spec(expr)
        result = ub_ds(spec, fast_options)
        assert result.assignment.realizes(spec.tt)

    def test_ds_needs_two_products(self, fast_options):
        with pytest.raises(SynthesisError):
            ub_ds(make_spec("abc"), fast_options)

    def test_ds_recursion_bounded(self):
        # ds_depth=0 must strip "ds" from sub-options entirely.
        options = JanusOptions(ds_depth=0)
        sub = options.for_subproblems()
        assert "ds" not in sub.ub_methods
