"""Tests for the don't-care extension (incompletely specified targets).

The paper synthesizes completely specified functions; this library also
accepts an interval [on, on|dc].  Key facts verified here:

* don't-cares can only help: the solution is never larger than the
  completely-specified one, and often strictly smaller;
* every emitted lattice realizes a function inside the interval;
* the encoder drops constraints on dc entries (smaller CNFs).
"""

import pytest

from repro.boolf import TruthTable
from repro.core import (
    EncodeOptions,
    JanusOptions,
    TargetSpec,
    encode_lm,
    solve_lm,
    synthesize,
)

OPTIONS = JanusOptions(max_conflicts=20_000)


def xor3_with_dc():
    """XOR3 with half its minterms free: collapses to something tiny."""
    on = TruthTable.from_function(lambda b: b[0] ^ b[1] ^ b[2], 3)
    dc = ~on  # everything not asserted is free
    # on and dc overlap nowhere but dc covers the offset completely: any
    # function above XOR3 is fine — including constant 1.
    return on, dc


class TestSpec:
    def test_interval_minimization(self):
        on, dc = xor3_with_dc()
        spec = TargetSpec.from_truthtable(on, name="xor3dc", dc=dc)
        spec.validate()
        assert spec.isop.num_products == 1  # constant 1 is admissible
        assert spec.upper.is_one()

    def test_accepts(self):
        on = TruthTable.from_minterms([1, 2], 2)
        dc = TruthTable.from_minterms([3], 2)
        spec = TargetSpec.from_truthtable(on, dc=dc)
        assert spec.accepts(on)
        assert spec.accepts(on | dc)
        assert not spec.accepts(TruthTable.zeros(2))

    def test_empty_dc_normalized_away(self):
        on = TruthTable.from_minterms([1], 2)
        spec = TargetSpec.from_truthtable(on, dc=TruthTable.zeros(2))
        assert spec.dc is None


class TestSynthesis:
    def test_dc_never_hurts(self):
        on = TruthTable.from_function(lambda b: b[0] ^ b[1], 2)
        dc = TruthTable.from_minterms([0], 2)
        full = synthesize(TargetSpec.from_truthtable(on), options=OPTIONS)
        relaxed = synthesize(
            TargetSpec.from_truthtable(on, dc=dc), options=OPTIONS
        )
        assert relaxed.size <= full.size
        assert (on - relaxed.assignment.realized_truthtable()).is_zero()

    def test_solution_within_interval(self):
        on = TruthTable.from_minterms([1, 4, 7], 3)
        dc = TruthTable.from_minterms([2, 5], 3)
        spec = TargetSpec.from_truthtable(on, name="dc3", dc=dc)
        result = synthesize(spec, options=OPTIONS)
        realized = result.assignment.realized_truthtable()
        assert on.implies(realized)
        assert realized.implies(on | dc)

    def test_fully_free_collapses_to_constant(self):
        on, dc = xor3_with_dc()
        spec = TargetSpec.from_truthtable(on, dc=dc)
        result = synthesize(spec, options=OPTIONS)
        assert result.size == 1  # constant 1 suffices

    def test_solve_lm_interval_verified(self):
        on = TruthTable.from_minterms([3], 2)  # ab
        dc = TruthTable.from_minterms([1, 2], 2)
        spec = TargetSpec.from_truthtable(on, dc=dc)
        outcome = solve_lm(spec, 1, 1, OPTIONS)
        assert outcome.status == "sat"  # a single switch mapped to a or b
        assert spec.accepts(outcome.assignment.realized_truthtable())


class TestEncoding:
    def test_dc_entries_shrink_the_cnf(self):
        on = TruthTable.from_minterms([1, 2], 3)
        dc = TruthTable.from_minterms([4, 5, 6, 7], 3)
        tight = TargetSpec.from_truthtable(on)
        loose = TargetSpec.from_truthtable(on, dc=dc)
        enc_tight = encode_lm(tight, 2, 3, "primal", EncodeOptions())
        enc_loose = encode_lm(loose, 2, 3, "primal", EncodeOptions())
        assert enc_loose.cnf.num_clauses <= enc_tight.cnf.num_clauses

    def test_both_sides_verified_with_dc(self):
        from repro.sat import solve_cnf

        on = TruthTable.from_minterms([1, 6], 3)
        dc = TruthTable.from_minterms([7], 3)
        spec = TargetSpec.from_truthtable(on, dc=dc)
        for side in ("primal", "dual"):
            enc = encode_lm(spec, 2, 3, side, EncodeOptions())
            result = solve_cnf(enc.cnf, max_conflicts=50_000)
            if result.is_sat:
                realized = enc.decode(result).realized_truthtable()
                assert on.implies(realized) and realized.implies(on | dc)
