"""Tests for D-reducible-function detection and synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boolf import Sop, TruthTable
from repro.core import (
    affine_hull,
    is_dreducible,
    reduce_dreducible,
    synthesize_dreducible,
)
from repro.errors import SynthesisError


class TestAffineHull:
    def test_zero_function_rejected(self):
        with pytest.raises(SynthesisError):
            affine_hull(TruthTable.zeros(3))

    def test_single_minterm_hull_is_a_point(self):
        tt = TruthTable.from_minterms([5], 3)
        hull = affine_hull(tt)
        assert hull.dimension == 0
        assert hull.contains(5)
        assert not hull.contains(4)

    def test_hull_contains_all_onset(self):
        tt = TruthTable.from_minterms([1, 3, 9, 11], 4)
        hull = affine_hull(tt)
        for m in tt.onset():
            assert hull.contains(m)

    def test_full_function_hull_is_whole_cube(self):
        tt = TruthTable.ones(3)
        assert affine_hull(tt).dimension == 3

    def test_characteristic_matches_contains(self):
        tt = TruthTable.from_minterms([1, 3, 9], 4)
        hull = affine_hull(tt)
        chi = hull.characteristic()
        for m in range(16):
            assert chi.evaluate(m) == hull.contains(m)

    def test_constraints_define_the_space(self):
        from repro.boolf.gf2 import dot

        tt = TruthTable.from_minterms([2, 6, 10, 14], 4)
        hull = affine_hull(tt)
        constraints = hull.constraints()
        assert len(constraints) == 4 - hull.dimension
        for m in range(16):
            satisfied = all(dot(mask, m) == bit for mask, bit in constraints)
            assert satisfied == hull.contains(m)


class TestDetection:
    def test_cube_function_is_dreducible(self):
        # f = a b: onset {3} inside a 0-dim affine space of B^2... but over
        # 3 vars the onset {3, 7} has dimension 1 < 3.
        tt = TruthTable.from_minterms([3, 7], 3)
        assert is_dreducible(tt)

    def test_parity_is_dreducible(self):
        # The odd-weight vectors form an affine coset of the even-weight
        # subspace, so parity is the extreme D-reducible case: chi_A is
        # the function itself and the projection is constant 1.
        values = np.array([bin(m).count("1") % 2 for m in range(8)], dtype=bool)
        tt = TruthTable(values, 3)
        assert is_dreducible(tt)
        assert affine_hull(tt).dimension == 2

    def test_majority_is_not_dreducible(self):
        tt = TruthTable.from_minterms([3, 5, 6, 7], 3)
        assert not is_dreducible(tt)

    def test_zero_function_not_dreducible(self):
        assert not is_dreducible(TruthTable.zeros(2))


class TestReduction:
    def test_embed_project_roundtrip(self):
        tt = TruthTable.from_minterms([1, 3, 9, 11, 5], 4)
        red = reduce_dreducible(tt)
        for y in range(1 << red.hull.dimension):
            assert red.project(red.embed(y)) == y

    def test_composition_identity(self):
        tt = TruthTable.from_minterms([1, 3, 9, 11], 4)
        red = reduce_dreducible(tt)
        for m in range(16):
            assert red.compose(m) == tt.evaluate(m)

    def test_constraint_classification(self):
        # Onset with x0 = 1 fixed: one cube constraint.
        tt = TruthTable.from_minterms([1, 3, 5, 7], 3)
        red = reduce_dreducible(tt)
        assert (0, 1) in red.cube_constraints
        assert not red.exor_constraints

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_composition_identity_random(self, seed):
        rng = np.random.default_rng(seed)
        # Random function restricted to the affine space x0 ^ x1 = 1.
        values = np.zeros(16, dtype=bool)
        for m in range(16):
            if ((m ^ (m >> 1)) & 1) == 1 and rng.random() < 0.5:
                values[m] = True
        tt = TruthTable(values, 4)
        if tt.is_zero():
            return
        red = reduce_dreducible(tt)
        for m in range(16):
            assert red.compose(m) == tt.evaluate(m)


class TestSynthesis:
    def test_fixed_variable_function(self):
        # f = a(b + c'): onset within the x0 = 1 half-cube.
        sop = Sop.from_string("ab + ac'")
        result = synthesize_dreducible(sop)
        assert result.reduction.hull.dimension == 2
        assert result.realized_truthtable() == sop.to_truthtable()
        assert result.num_exor_gates == 0

    def test_exor_constrained_function(self):
        # Onset on the affine space a ^ b = 1, c free.
        tt = TruthTable.from_minterms([1, 2, 5, 6], 3)
        result = synthesize_dreducible(tt)
        assert result.reduction.hull.dimension <= 2
        assert result.realized_truthtable() == tt
        assert result.num_exor_gates >= 1

    def test_not_properly_dreducible_still_correct(self):
        sop = Sop.from_string("ab + a'c + bc'")
        result = synthesize_dreducible(sop)
        assert result.reduction.hull.dimension == 3
        assert result.realized_truthtable() == sop.to_truthtable()
