"""Tests for JANUS-MF (multiple functions on one lattice)."""

import pytest

from repro.core import make_spec, merge_straightforward, synthesize_multi
from repro.errors import SynthesisError

EXPRS = ["ab + a'b'", "ac", "b + c"]


class TestStraightforward:
    def test_merge_verifies_all_outputs(self, fast_options):
        specs = [make_spec(e, name=f"o{i}") for i, e in enumerate(EXPRS)]
        result = merge_straightforward(specs, fast_options)
        assert result.verify()
        assert len(result.column_ranges) == 3

    def test_bands_are_disjoint(self, fast_options):
        specs = [make_spec(e, name=f"o{i}") for i, e in enumerate(EXPRS)]
        result = merge_straightforward(specs, fast_options)
        for (s1, e1), (s2, e2) in zip(
            result.column_ranges, result.column_ranges[1:]
        ):
            assert e1 < s2  # isolation column in between

    def test_empty_rejected(self, fast_options):
        with pytest.raises(SynthesisError):
            merge_straightforward([], fast_options)


class TestJanusMf:
    def test_mf_never_worse_than_straightforward(self, fast_options):
        specs = [make_spec(e, name=f"o{i}") for i, e in enumerate(EXPRS)]
        sf = merge_straightforward(specs, fast_options)
        mf = synthesize_multi(specs, options=fast_options)
        assert mf.size <= sf.size
        assert mf.verify()

    def test_output_band_extraction(self, fast_options):
        specs = [make_spec(e, name=f"o{i}") for i, e in enumerate(EXPRS)]
        mf = synthesize_multi(specs, options=fast_options)
        for i, spec in enumerate(specs):
            band = mf.output_band(i)
            assert band.realizes(spec.tt)

    def test_accepts_string_targets(self, fast_options):
        mf = synthesize_multi(["ab", "a'b'"], options=fast_options)
        assert mf.verify()
        assert mf.specs[0].name == "f0"

    def test_names_used(self, fast_options):
        mf = synthesize_multi(["ab"], names=["carry"], options=fast_options)
        assert mf.specs[0].name == "carry"

    def test_single_output(self, fast_options):
        mf = synthesize_multi(["ab + a'b'"], options=fast_options)
        assert mf.cols == mf.column_ranges[0][1]
        assert mf.verify()
