"""Incremental probe engine: byte-identity against the one-shot path.

The correctness contract of :class:`repro.core.janus.IncrementalProber`
is that :func:`synthesize` returns the *same lattice* (entries, shape,
size, bounds) with it as with the stateless serial prober, across every
backend that routes probes through a prober seam: the serial path, the
in-process engine, and the pooled engine.  On top of that sit unit tests
for the individual reuse mechanisms: family-probe equisatisfiability,
domination pruning, memoization, assumption-core widening and the
monotone floors of the status-only ``decide`` query.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boolf.truthtable import TruthTable
from repro.core.encoder import EncodeOptions, encode_lm, shape_family
from repro.core.janus import (
    IncrementalProber,
    JanusOptions,
    SERIAL_PROBER,
    synthesize,
)
from repro.core.target import TargetSpec
from repro.sat.solver import CdclSolver, solve_cnf

OPTS = JanusOptions(max_conflicts=10_000)


def _random_spec(seed: int, num_vars: int) -> TargetSpec:
    rng = np.random.default_rng(seed)
    bits = rng.random(1 << num_vars) < 0.5
    if not bits.any():
        bits[0] = True
    if bits.all():
        bits[-1] = False
    return TruthTable(bits, num_vars)


def _same_result(a, b) -> bool:
    return (
        a.assignment.entries == b.assignment.entries
        and a.shape == b.shape
        and a.size == b.size
        and a.lower_bound == b.lower_bound
        and a.initial_upper_bound == b.initial_upper_bound
        and a.upper_bounds == b.upper_bounds
    )


class TestByteIdentity:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_incremental_matches_serial_random(self, seed):
        tt = _random_spec(seed, 3)
        serial = synthesize(tt, options=OPTS, prober=SERIAL_PROBER)
        warm = synthesize(tt, options=OPTS, prober=IncrementalProber())
        assert _same_result(serial, warm)

    @pytest.mark.parametrize("expr", [
        "ab + a'b'c",
        "abc + a'd + bd'",
        "ab'c + bc'd + a'cd'",
    ])
    def test_incremental_matches_serial_exprs(self, expr):
        serial = synthesize(expr, options=OPTS)
        warm = synthesize(expr, options=OPTS, prober=IncrementalProber())
        assert _same_result(serial, warm)

    def test_prober_state_survives_across_targets(self):
        """One prober serving several functions must not cross-pollute."""
        prober = IncrementalProber(max_instances=2)
        exprs = ["ab + a'b'c", "abc + a'd + bd'", "ab + cd", "ab + a'b'c"]
        for expr in exprs:
            serial = synthesize(expr, options=OPTS)
            warm = synthesize(expr, options=OPTS, prober=prober)
            assert _same_result(serial, warm)

    def test_engine_backends_match_serial(self, tmp_path):
        """All prober-seam backends answer byte-identically: in-process
        engine, cached engine, pooled engine."""
        from repro.engine import ParallelEngine

        expr = "abc + a'd + bd'"
        serial = synthesize(expr, options=OPTS)
        with ParallelEngine(jobs=1) as engine:
            assert _same_result(serial, engine.synthesize(expr, options=OPTS))
        with ParallelEngine(jobs=1, cache=tmp_path / "cache") as engine:
            assert _same_result(serial, engine.synthesize(expr, options=OPTS))
        with ParallelEngine(jobs=2) as engine:
            assert _same_result(serial, engine.synthesize(expr, options=OPTS))


class TestFamilyEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_family_probe_matches_one_shot_status(self, seed):
        """Selector-assumption restriction is equisatisfiable with the
        sub-shape's own encoding, for both sides, every sub-shape."""
        tt = _random_spec(seed, 3)
        spec = TargetSpec.from_truthtable(tt, name="fam")
        enc_opts = EncodeOptions(degree_constraints=False)
        for side in ("primal", "dual"):
            enc = encode_lm(spec, 3, 3, side, enc_opts)
            if enc.cnf is None:
                continue
            family = shape_family(enc)
            assert family is not None
            solver = CdclSolver(num_vars=enc.cnf.num_vars)
            for clause in enc.cnf.clauses:
                solver.add_clause(clause)
            for clause in family.selector_clauses:
                solver.add_clause(clause)
            for rows in range(1, 4):
                for cols in range(1, 4):
                    probe = solver.solve(family.assumptions(rows, cols))
                    one_shot = encode_lm(spec, rows, cols, side, enc_opts)
                    if one_shot.cnf is None:
                        assert one_shot.infeasible
                        assert probe.is_unsat
                        continue
                    assert probe.status == solve_cnf(one_shot.cnf).status, (
                        f"{side} {rows}x{cols}"
                    )

    def test_family_rejected_when_degree_clauses_present(self):
        """Degree constraints quantify over the envelope's own paths, so
        families refuse to form on encodings that contain them."""
        # A function whose cover degree equals a thin lattice's degree
        # triggers the "exact" mode: single product abc on 3x1.
        spec = TargetSpec.from_string("abc", name="deg")
        enc = encode_lm(spec, 3, 1, "primal", EncodeOptions())
        if enc.degree_clauses:
            assert shape_family(enc) is None
        nodeg = encode_lm(
            spec, 3, 1, "primal", EncodeOptions(degree_constraints=False)
        )
        assert nodeg.degree_clauses == 0
        assert shape_family(nodeg) is not None

    def test_family_rejected_when_symmetry_breaking(self):
        spec = TargetSpec.from_string("ab + a'b'c", name="sym")
        enc = encode_lm(
            spec, 2, 3, "primal",
            EncodeOptions(symmetry_breaking=True, degree_constraints=False),
        )
        assert enc.symmetry_clauses > 0
        assert shape_family(enc) is None

    def test_refuted_shape_widens_from_core(self):
        spec = TargetSpec.from_string("ab + a'b'c", name="core")
        enc = encode_lm(
            spec, 3, 3, "primal", EncodeOptions(degree_constraints=False)
        )
        family = shape_family(enc)
        assert family is not None
        # A core containing only the level selector for index 1 refutes
        # every shape with at most 1 level, at any lane count.
        core = [family.level_sel[1]]
        assert family.refuted_shape(core, 1, 2) == (1, 3)
        # An empty core (formula unsat outright) refutes the envelope.
        assert family.refuted_shape([], 1, 1) == (3, 3)
        # A negative selector in the core blocks widening.
        assert family.refuted_shape([-family.level_sel[2]], 2, 2) == (2, 2)


class TestReuseMechanisms:
    def test_memo_replays_repeats(self):
        prober = IncrementalProber()
        spec = TargetSpec.from_string("ab + a'b'c", name="memo")
        first = prober.solve(spec, 2, 3, OPTS)
        again = prober.solve(spec, 2, 3, OPTS)
        assert again.status == first.status
        assert again.attempt.reused
        assert again.attempt.propagations == 0
        assert prober.stats.memo_hits == 1
        if first.status == "sat":
            assert again.assignment.entries == first.assignment.entries

    def test_domination_prunes_smaller_shapes(self):
        prober = IncrementalProber()
        spec = TargetSpec.from_string("ab + a'b'c + bc'", name="dom")
        # Find some genuinely refuted shape by probing a too-small area.
        refuted = None
        for rows, cols in [(2, 2), (2, 3), (3, 2)]:
            if prober.solve(spec, rows, cols, OPTS).status == "unsat":
                refuted = (rows, cols)
                break
        if refuted is None:
            pytest.skip("no small refuted shape for this target")
        sub = (refuted[0], refuted[1] - 1)
        if sub[1] < 1:
            sub = (refuted[0] - 1, refuted[1])
        before = prober.stats.pruned_shapes
        outcome = prober.solve(spec, sub[0], sub[1], OPTS)
        assert outcome.status == "unsat"
        # Either the structural precheck or domination answered; if the
        # shape got past the precheck it must have been pruned for free.
        if outcome.attempt.pruned:
            assert prober.stats.pruned_shapes == before + 1
            assert outcome.attempt.propagations == 0

    def test_decide_floors_and_matches_cold(self):
        """decide() agrees with stateless statuses over a whole shape
        grid, while answering most of it from monotone floors."""
        from repro.core.janus import solve_lm

        spec = TargetSpec.from_string("ab + a'b'c", name="grid")
        prober = IncrementalProber()
        grid = [(r, c) for r in range(1, 5) for c in range(1, 5)]
        for rows, cols in grid:
            warm = prober.decide(spec, rows, cols, OPTS)
            cold = solve_lm(spec, rows, cols, OPTS).status
            assert warm == cold, f"{rows}x{cols}: {warm} vs {cold}"
        assert prober.stats.pruned_shapes > 0

    def test_stats_account_for_cold_and_reused(self):
        prober = IncrementalProber()
        spec = TargetSpec.from_string("ab + cd", name="stats")
        prober.solve(spec, 2, 2, OPTS)
        prober.solve(spec, 2, 2, OPTS)
        assert prober.stats.probes == 2
        assert prober.stats.cold_solves >= 1
        assert prober.stats.memo_hits == 1
