"""LS-level oracle: brute-force minimal lattices for tiny functions.

`tests/core/test_lm_exhaustive.py` validates single LM probes against
brute force; this file validates the *synthesis* level.  For 2-variable
functions the full design space is enumerable: every lattice shape by
ascending area, every assignment of {all 4 literals, 0, 1} to its cells.
The resulting true minimum is compared against the dichotomic search.

JANUS draws assignments from the minimized cover's literals only, so its
search space is a subset of the oracle's; the assertions are
``janus >= oracle`` always (nobody beats the optimum) and
``janus == oracle`` for these sizes (the paper's claim that solutions
are near-minimum collapses to equality on trivial instances).
"""

import itertools

import numpy as np
import pytest

from repro.boolf import TruthTable
from repro.core import JanusOptions, make_spec, synthesize
from repro.lattice import CONST0, CONST1, Entry, LatticeAssignment


def shapes_by_area(max_area: int):
    shapes = [
        (r, c)
        for r in range(1, max_area + 1)
        for c in range(1, max_area + 1)
        if r * c <= max_area
    ]
    return sorted(shapes, key=lambda s: (s[0] * s[1], s[0]))


def brute_force_minimum(tt: TruthTable, max_area: int = 6):
    """Smallest lattice area realizing ``tt`` with any literal/constant
    assignment, or None if none exists within ``max_area``."""
    entries_pool = [
        Entry.lit(v, pos) for v in range(tt.num_vars) for pos in (True, False)
    ] + [CONST0, CONST1]
    for rows, cols in shapes_by_area(max_area):
        cells = rows * cols
        for combo in itertools.product(entries_pool, repeat=cells):
            lattice = LatticeAssignment(rows, cols, list(combo), tt.num_vars)
            if lattice.realized_truthtable() == tt:
                return rows * cols
    return None


@pytest.mark.parametrize("bits", range(1, 15))
def test_janus_matches_oracle_on_all_2var_functions(bits):
    # All non-constant 2-variable functions (0b0001 .. 0b1110).
    tt = TruthTable(np.array([bool(bits >> i & 1) for i in range(4)]), 2)
    oracle = brute_force_minimum(tt, max_area=6)
    assert oracle is not None, "every 2-var function fits within area 6"
    result = synthesize(make_spec(tt), options=JanusOptions(max_conflicts=50_000))
    assert result.size >= oracle  # sanity: cannot beat the true optimum
    assert result.size == oracle


def test_oracle_agrees_with_known_sizes():
    # Spot checks of the oracle itself.
    assert brute_force_minimum(TruthTable.from_minterms([3], 2)) == 2  # ab
    assert brute_force_minimum(TruthTable.from_minterms([1, 2, 3], 2)) == 2  # a+b
    assert (
        brute_force_minimum(TruthTable.from_minterms([1, 2], 2)) == 4
    )  # a xor b
