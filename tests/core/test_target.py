"""Tests for TargetSpec."""

import pytest

from repro.boolf import TruthTable, parse_sop
from repro.core import TargetSpec, make_spec
from repro.errors import DimensionError, SynthesisError


class TestConstruction:
    def test_from_string(self):
        spec = TargetSpec.from_string("ab + a'c")
        assert spec.num_inputs == 3
        assert spec.num_products == 2
        assert spec.degree == 2
        spec.validate()

    def test_from_truthtable(self):
        tt = TruthTable.from_function(lambda b: b[0] and b[1], 2)
        spec = TargetSpec.from_truthtable(tt, name="and2")
        assert spec.name == "and2"
        assert spec.num_products == 1

    def test_from_sop(self):
        spec = TargetSpec.from_sop(parse_sop("ab + cd"))
        assert spec.degree == 2
        assert spec.num_inputs == 4

    def test_isop_is_minimal(self):
        # ab + a'c + bc minimizes to 2 products.
        spec = TargetSpec.from_string("ab + a'c + bc")
        assert spec.num_products == 2

    def test_dual_stats(self):
        spec = TargetSpec.from_string("cd + c'd' + abe + a'b'e'")
        assert spec.num_dual_products == 6
        assert spec.dual_degree == 4

    def test_inconsistent_covers_rejected(self):
        tt = TruthTable.ones(2)
        good = TargetSpec.from_truthtable(tt)
        bad_isop = parse_sop("a", names=["a", "b"])
        with pytest.raises(DimensionError):
            TargetSpec("bad", tt, bad_isop, good.dual_isop).validate()

    def test_constant_detection(self):
        assert TargetSpec.from_truthtable(TruthTable.ones(2)).is_constant
        assert TargetSpec.from_truthtable(TruthTable.zeros(2)).is_constant
        assert not TargetSpec.from_string("a").is_constant


class TestMakeSpec:
    def test_accepts_all_forms(self):
        tt = TruthTable.variable(0, 2)
        for target in ["a", parse_sop("a"), tt, make_spec("a")]:
            spec = make_spec(target)
            assert isinstance(spec, TargetSpec)

    def test_rejects_unknown_type(self):
        with pytest.raises(SynthesisError):
            make_spec(42)

    def test_name_passed_through(self):
        assert make_spec("ab", name="myfn").name == "myfn"
