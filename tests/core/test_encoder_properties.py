"""Property tests: the synthesis pipeline on random functions.

Hypothesis drives random 3-variable functions through solve_lm and the
full JANUS driver; every SAT answer must decode to a verified lattice and
every final result must respect the bound sandwich.
"""

from hypothesis import HealthCheck, given, settings

from repro.boolf import TruthTable
from repro.core import (
    EncodeOptions,
    JanusOptions,
    TargetSpec,
    encode_lm,
    solve_lm,
    synthesize,
)
from repro.sat import solve_cnf
from tests.conftest import truthtables

_FAST = JanusOptions(max_conflicts=10_000)
_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _spec_of(tt: TruthTable) -> TargetSpec | None:
    if tt.is_zero() or tt.is_one():
        return None
    return TargetSpec.from_truthtable(tt, name="prop")


@_SETTINGS
@given(truthtables(3))
def test_synthesize_random_functions(tt):
    spec = _spec_of(tt)
    if spec is None:
        return
    result = synthesize(spec, options=_FAST)
    assert result.assignment.realizes(tt)
    assert result.initial_lower_bound <= result.size
    assert result.size <= result.initial_upper_bound


@_SETTINGS
@given(truthtables(3))
def test_lm_on_3x3_decodes_verified(tt):
    spec = _spec_of(tt)
    if spec is None:
        return
    outcome = solve_lm(spec, 3, 3, _FAST)
    if outcome.status == "sat":
        assert outcome.assignment.realizes(tt)


@_SETTINGS
@given(truthtables(3))
def test_primal_dual_encodings_agree(tt):
    spec = _spec_of(tt)
    if spec is None:
        return
    statuses = {}
    for side in ("primal", "dual"):
        enc = encode_lm(spec, 2, 3, side, EncodeOptions())
        result = solve_cnf(enc.cnf, max_conflicts=50_000)
        statuses[side] = result.status
        if result.is_sat:
            assert enc.decode(result).realizes(tt)
    assert statuses["primal"] == statuses["dual"]
