"""Tests for the JANUS driver."""

import pytest

from repro.core import (
    JanusOptions,
    candidate_shapes,
    fit_columns,
    make_spec,
    solve_lm,
    synthesize,
)


class TestPaperExamples:
    def test_fig1_minimum_4x2(self, fast_options):
        """Paper Fig. 1(d): minimum lattice for abcd + a'b'c'd' is 4x2."""
        result = synthesize("abcd + a'b'c'd'", options=fast_options)
        assert result.size == 8
        assert result.assignment.realizes(result.spec.tt)
        assert result.is_provably_minimum

    def test_fig4_minimum_3x4(self, fast_options):
        """Paper Section III-B: the Fig. 4 function's optimum is 3x4."""
        result = synthesize("cd + c'd' + abe + a'b'e'", options=fast_options)
        assert result.size == 12
        assert (result.rows, result.cols) in [(3, 4), (4, 3)]
        assert result.initial_lower_bound == 12
        assert result.initial_upper_bound == 15


class TestTrivialCases:
    def test_constant_zero(self, fast_options):
        result = synthesize("0", name="zero", options=fast_options)
        assert result.size == 1
        assert result.assignment.realized_truthtable().is_zero()

    def test_constant_one(self, fast_options):
        result = synthesize("1", name="one", options=fast_options)
        assert result.size == 1
        assert result.assignment.realized_truthtable().is_one()

    def test_single_literal(self, fast_options):
        result = synthesize("a", options=fast_options)
        assert result.size == 1
        assert result.assignment.realizes(result.spec.tt)

    def test_single_product_column(self, fast_options):
        result = synthesize("abc", options=fast_options)
        assert (result.rows, result.cols) == (3, 1)
        assert result.is_provably_minimum


class TestSearchInvariants:
    @pytest.mark.parametrize(
        "expr", ["ab + a'b'", "ab + cd", "a + bc", "ab + bc + ca"]
    )
    def test_result_verified_and_bounded(self, expr, fast_options):
        result = synthesize(expr, options=fast_options)
        assert result.assignment.realizes(result.spec.tt)
        assert result.initial_lower_bound <= result.size
        assert result.size <= result.initial_upper_bound

    def test_xor_minimum(self, fast_options):
        # a xor b = ab' + a'b; known minimum 2x2 (VERIFY: lb=4 via shapes).
        result = synthesize("ab' + a'b", options=fast_options)
        assert result.size == 4
        assert result.assignment.realizes(result.spec.tt)

    def test_attempts_recorded(self, fast_options):
        result = synthesize("cd + c'd' + abe + a'b'e'", options=fast_options)
        assert result.attempts
        sat_attempts = [a for a in result.attempts if a.status == "sat"]
        assert sat_attempts, "the search must have found its solution via LM"


class TestCandidateShapes:
    def test_maximal_under_domination(self):
        shapes = candidate_shapes(12)
        assert (3, 4) in shapes and (4, 3) in shapes
        assert (5, 2) not in shapes  # dominated by (6, 2)

    def test_respects_lower_bound(self):
        shapes = candidate_shapes(12, lower_bound=10)
        assert all(m * n >= 10 for m, n in shapes)

    def test_all_areas_at_most_mp(self):
        for mp in (5, 9, 16, 23):
            for m, n in candidate_shapes(mp):
                assert m * n <= mp

    def test_ordering_prefers_large_balanced(self):
        shapes = candidate_shapes(16)
        assert shapes[0] == (4, 4)


class TestSolveLm:
    def test_structural_fail_is_unsat(self, fast_options):
        spec = make_spec("abcd + a'b'c'd'")
        outcome = solve_lm(spec, 2, 4, fast_options)
        assert outcome.status == "unsat"
        assert outcome.attempt.status == "structural"

    def test_sat_is_verified(self, fast_options):
        spec = make_spec("ab + a'b'")
        outcome = solve_lm(spec, 2, 2, fast_options)
        assert outcome.status == "sat"
        assert outcome.assignment.realizes(spec.tt)

    def test_side_recorded(self, fast_options):
        spec = make_spec("ab + a'b'")
        outcome = solve_lm(spec, 2, 2, fast_options)
        assert outcome.attempt.side in ("primal", "dual")
        assert outcome.attempt.complexity > 0


class TestFitColumns:
    def test_finds_minimal_width(self, fast_options):
        spec = make_spec("ab + a'b'")
        la = fit_columns(spec, 2, 4, fast_options)
        assert la is not None
        assert la.cols == 2  # 2x2 is the optimum
        assert la.realizes(spec.tt)

    def test_returns_none_when_impossible(self, fast_options):
        spec = make_spec("abcd + a'b'c'd'")
        assert fit_columns(spec, 2, 3, fast_options) is None

    def test_attempts_collected(self, fast_options):
        spec = make_spec("ab + a'b'")
        attempts = []
        fit_columns(spec, 2, 4, fast_options, attempts=attempts)
        assert attempts


class TestOptions:
    def test_for_subproblems_drops_ds(self):
        options = JanusOptions()
        sub = options.for_subproblems()
        assert "ds" not in sub.ub_methods
        assert sub.ds_depth == 0

    def test_zero_conflict_budget_falls_back_to_bounds(self):
        options = JanusOptions(max_conflicts=0, ub_methods=("dp", "ps", "dps"))
        result = synthesize("ab + a'b'", options=options)
        # With no SAT budget every LM probe is unknown; the initial upper
        # bound must be returned, still verified.
        assert result.assignment.realizes(result.spec.tt)
        assert result.size == result.initial_upper_bound
