"""Tests for engine v2: suite-level result cache, speculative probing,
cgroup-aware job defaults, and warm whole-suite runs.

The suite-cache contract: a warm run performs zero SAT solver calls AND
zero upper-bound computations, and its results are byte-identical to a
cold serial run.
"""

from __future__ import annotations

import pytest

from repro.core.janus import JanusOptions, make_spec, synthesize
from repro.engine import ParallelEngine, default_jobs
from repro.engine.suite import suite_cache_key

EXPRESSIONS = [
    "ab + a'b'c",
    "cd + c'd' + abe",
    "ab + cd",
    "abc + a'd + b'c'd'",
]


@pytest.fixture
def opts() -> JanusOptions:
    return JanusOptions(max_conflicts=20_000)


def attempt_trace(result):
    return [(a.rows, a.cols, a.status) for a in result.attempts]


class TestSuiteKey:
    def test_kind_and_mode_namespace_the_key(self, opts):
        spec = make_spec("ab + a'c")
        base = suite_cache_key(spec, opts)
        assert base != suite_cache_key(spec, opts, kind="bounds")
        assert base != suite_cache_key(spec, opts, mode="portfolio")

    def test_options_fragment_the_key(self, opts):
        spec = make_spec("ab + a'c")
        tighter = JanusOptions(max_conflicts=5)
        assert suite_cache_key(spec, opts) != suite_cache_key(spec, tighter)

    def test_names_are_cosmetic(self, opts):
        from repro.boolf.parse import parse_sop
        from repro.core.target import TargetSpec

        tt = parse_sop("ab + a'c").to_truthtable()
        plain = TargetSpec.from_truthtable(tt, name="x")
        named = TargetSpec.from_truthtable(tt, name="y", names=["p", "q", "r"])
        assert suite_cache_key(plain, opts) == suite_cache_key(named, opts)


class TestSuiteCache:
    def test_warm_run_redoes_no_work(self, tmp_path, opts):
        serial = [synthesize(e, options=opts) for e in EXPRESSIONS]
        with ParallelEngine(jobs=1, cache=tmp_path) as cold:
            cold_runs = [cold.synthesize(e, options=opts) for e in EXPRESSIONS]
        assert cold.stats.suite_misses == len(EXPRESSIONS)
        assert cold.stats.bound_calls > 0

        with ParallelEngine(jobs=1, cache=tmp_path) as warm:
            warm_runs = [warm.synthesize(e, options=opts) for e in EXPRESSIONS]
        # The whole point: not just zero SAT calls — zero bounds work and
        # zero dichotomic batches too.
        assert warm.stats.suite_hits == len(EXPRESSIONS)
        assert warm.stats.solver_calls == 0
        assert warm.stats.bound_calls == 0
        assert warm.stats.batches == 0
        assert warm.stats.cache_misses == 0

        for s, c, w in zip(serial, cold_runs, warm_runs):
            assert c.assignment.entries == s.assignment.entries
            assert w.assignment.entries == s.assignment.entries
            assert w.size == s.size
            assert w.lower_bound == s.lower_bound
            assert w.initial_upper_bound == s.initial_upper_bound
            assert w.initial_lower_bound == s.initial_lower_bound
            assert w.upper_bounds == s.upper_bounds
            assert attempt_trace(w) == attempt_trace(s)
            assert all(a.cached for a in w.attempts)

    def test_suite_layer_can_be_disabled(self, tmp_path, opts):
        expr = EXPRESSIONS[1]
        with ParallelEngine(jobs=1, cache=tmp_path) as cold:
            cold.synthesize(expr, options=opts)
        with ParallelEngine(jobs=1, cache=tmp_path, suite=False) as warm:
            warm.synthesize(expr, options=opts)
        # Probe layer still answers everything; the suite layer was off.
        assert warm.stats.suite_hits == 0
        assert warm.stats.solver_calls == 0
        assert warm.stats.cache_hits > 0

    def test_portfolio_suite_results_live_in_their_own_namespace(
        self, tmp_path, opts
    ):
        expr = EXPRESSIONS[0]
        with ParallelEngine(jobs=2, portfolio=True, cache=tmp_path) as racy:
            racy.synthesize(expr, options=opts)
        with ParallelEngine(jobs=1, cache=tmp_path) as strict:
            strict.synthesize(expr, options=opts)
        # The deterministic engine must not see the portfolio result.
        assert strict.stats.suite_hits == 0

    def test_time_limited_unknown_searches_are_not_suite_cached(
        self, tmp_path
    ):
        # A search that treated a wall-clock "unknown" as unrealizable
        # made a machine-dependent decision; freezing it into the suite
        # cache would serve that machine's (possibly suboptimal) lattice
        # to every later run.  Same policy as the probe cache.
        starved = JanusOptions(
            max_conflicts=1, lm_time_limit=30.0, ub_methods=("dp",)
        )
        expr = "cd + c'd' + abe"
        with ParallelEngine(jobs=1, cache=tmp_path) as cold:
            result = cold.synthesize(expr, options=starved)
        if any(a.status == "unknown" for a in result.attempts):
            with ParallelEngine(jobs=1, cache=tmp_path) as warm:
                warm.synthesize(expr, options=starved)
            assert warm.stats.suite_hits == 0

    def test_deterministic_unknowns_are_suite_cached(self, tmp_path):
        # Without a wall clock, a conflict-budget "unknown" is
        # reproducible and the whole result stays cacheable.
        starved = JanusOptions(max_conflicts=1, ub_methods=("dp",))
        expr = "cd + c'd' + abe"
        with ParallelEngine(jobs=1, cache=tmp_path) as cold:
            cold.synthesize(expr, options=starved)
        with ParallelEngine(jobs=1, cache=tmp_path) as warm:
            warm.synthesize(expr, options=starved)
        assert warm.stats.suite_hits == 1
        assert warm.stats.solver_calls == 0

    def test_corrupt_suite_entry_is_recomputed(self, tmp_path, opts):
        expr = EXPRESSIONS[0]
        with ParallelEngine(jobs=1, cache=tmp_path) as cold:
            baseline = cold.synthesize(expr, options=opts)
        spec = make_spec(expr)
        key = suite_cache_key(spec, opts)
        cold.cache._path(key).write_text('{"format":1,"kind":"synthesis"}')
        with ParallelEngine(jobs=1, cache=tmp_path) as warm:
            again = warm.synthesize(expr, options=opts)
        assert warm.stats.suite_hits == 0
        assert again.assignment.entries == baseline.assignment.entries


class TestSpeculativeProbing:
    # A deliberately loose upper bound (DP only) forces a multi-step
    # dichotomic search, which is what speculation accelerates.
    LOOSE = JanusOptions(max_conflicts=20_000, ub_methods=("dp",))

    def test_byte_identity_with_speculation(self):
        expr = "cd + c'd' + abe"
        serial = synthesize(expr, options=self.LOOSE)
        with ParallelEngine(jobs=2) as engine:
            raced = engine.synthesize(expr, options=self.LOOSE)
        assert raced.assignment.entries == serial.assignment.entries
        assert attempt_trace(raced) == attempt_trace(serial)
        assert raced.size == serial.size
        assert raced.lower_bound == serial.lower_bound

    def test_speculation_prefetches_and_hits(self):
        expr = "cd + c'd' + abe"
        with ParallelEngine(jobs=2) as engine:
            engine.synthesize(expr, options=self.LOOSE)
        assert engine.stats.speculated > 0
        # The second dichotomic step consumed prefetched probes.
        assert engine.stats.speculative_hits > 0

    def test_speculation_can_be_disabled(self):
        expr = "cd + c'd' + abe"
        serial = synthesize(expr, options=self.LOOSE)
        with ParallelEngine(jobs=2, speculate=False) as engine:
            result = engine.synthesize(expr, options=self.LOOSE)
        assert engine.stats.speculated == 0
        assert result.assignment.entries == serial.assignment.entries

    def test_speculative_leftovers_feed_the_cache(self, tmp_path):
        expr = "cd + c'd' + abe"
        with ParallelEngine(jobs=2, cache=tmp_path) as engine:
            engine.synthesize(expr, options=self.LOOSE)
        # Whatever speculation computed beyond the taken branch is
        # content-addressed and reusable, never wrong — waste is bounded
        # accounting, not incorrectness.
        assert engine.stats.speculative_waste >= 0
        assert len(engine.cache) > 0


class TestDefaultJobs:
    def test_respects_affinity_mask(self, monkeypatch):
        import repro.engine.parallel as parallel

        monkeypatch.setattr(
            parallel.os, "sched_getaffinity", lambda pid: {0}, raising=False
        )
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 64)
        assert default_jobs() == 1

    def test_falls_back_to_cpu_count(self, monkeypatch):
        import repro.engine.parallel as parallel

        def unsupported(pid):
            raise AttributeError("sched_getaffinity")

        monkeypatch.setattr(
            parallel.os, "sched_getaffinity", unsupported, raising=False
        )
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 3)
        assert default_jobs() == 3

    def test_at_least_one(self, monkeypatch):
        import repro.engine.parallel as parallel

        monkeypatch.setattr(
            parallel.os, "sched_getaffinity", lambda pid: set(), raising=False
        )
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
        assert default_jobs() == 1


class TestRunnerSuiteCache:
    def test_warm_table2_redoes_no_work(self, tmp_path, opts):
        from repro.bench.runner import run_table2

        names = ["b12_03", "c17_01"]
        serial = run_table2(names, ("janus",), opts)
        cold = run_table2(names, ("janus",), opts, cache=tmp_path)
        warm = run_table2(names, ("janus",), opts, cache=tmp_path)
        for s, c, w in zip(serial, cold, warm):
            assert c.results["janus"].entries == s.results["janus"].entries
            assert w.results["janus"].entries == s.results["janus"].entries
            assert w.bounds.lb == s.bounds.lb
            assert w.bounds.old_ub == s.bounds.old_ub
            assert w.bounds.new_ub == s.bounds.new_ub
            assert w.bounds.per_method == s.bounds.per_method
            # Zero recomputation: no SAT calls, no bound constructions —
            # both the bounds report and the synthesis came from disk.
            assert w.engine["solver_calls"] == 0
            assert w.engine["bound_calls"] == 0
            assert w.engine["suite_hits"] == 2

    def test_sharded_warm_run_matches(self, tmp_path, opts):
        from repro.bench.runner import run_table2

        names = ["b12_03", "c17_01"]
        cold = run_table2(names, ("janus",), opts, jobs=2, cache=tmp_path)
        warm = run_table2(names, ("janus",), opts, jobs=2, cache=tmp_path)
        for c, w in zip(cold, warm):
            assert w.results["janus"].entries == c.results["janus"].entries
            assert w.engine["solver_calls"] == 0
            assert w.engine["bound_calls"] == 0

    def test_portfolio_rows_realize_targets(self, opts):
        from repro.bench.runner import run_table2
        from repro.lattice.assignment import Entry, LatticeAssignment

        names = ["c17_01"]
        rows = run_table2(names, ("janus",), opts, portfolio=True)
        for row in rows:
            aj = row.results["janus"]
            nrows, ncols = (int(x) for x in aj.shape.split("x"))
            entries = [
                Entry.lit(v, p) if v is not None else Entry.const(p)
                for v, p in aj.entries
            ]
            la = LatticeAssignment(
                nrows, ncols, entries, row.spec.num_inputs, row.spec.name_list()
            )
            assert row.spec.accepts(la.realized_truthtable())
            assert row.engine is not None
