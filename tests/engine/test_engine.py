"""Tests for the parallel synthesis engine.

The two contracts that matter: (1) routing JANUS through the engine —
pool or no pool — produces byte-identical lattices to the serial path,
and (2) a warm cache answers every probe, so a repeat run performs zero
SAT solver calls.
"""

from __future__ import annotations

import json

import pytest

from repro.boolf.parse import parse_sop
from repro.core.janus import JanusOptions, make_spec, solve_lm, synthesize
from repro.core.target import TargetSpec
from repro.engine import ParallelEngine, ResultCache, lm_cache_key
from repro.engine.signature import options_fingerprint, spec_fingerprint

EXPRESSIONS = [
    "ab + a'b'c",
    "cd + c'd' + abe",
    "ab + cd",
    "abc + a'd + b'c'd'",
]


@pytest.fixture
def opts() -> JanusOptions:
    # No wall-clock limit: probes must be deterministic for the
    # byte-identity assertions below.
    return JanusOptions(max_conflicts=20_000)


def attempt_trace(result):
    return [(a.rows, a.cols, a.status) for a in result.attempts]


class TestSignature:
    def test_names_are_cosmetic(self, opts):
        tt = parse_sop("ab + a'c").to_truthtable()
        plain = TargetSpec.from_truthtable(tt, name="x")
        named = TargetSpec.from_truthtable(tt, name="y", names=["p", "q", "r"])
        assert spec_fingerprint(plain) == spec_fingerprint(named)
        assert lm_cache_key(plain, 3, 2, opts) == lm_cache_key(named, 3, 2, opts)

    def test_function_shape_and_options_fragment_the_key(self, opts):
        spec = make_spec("ab + a'c")
        other = make_spec("ab + cd")
        assert lm_cache_key(spec, 3, 2, opts) != lm_cache_key(other, 3, 2, opts)
        assert lm_cache_key(spec, 3, 2, opts) != lm_cache_key(spec, 2, 3, opts)
        tighter = JanusOptions(max_conflicts=5)
        assert lm_cache_key(spec, 3, 2, opts) != lm_cache_key(spec, 3, 2, tighter)

    def test_fingerprint_is_json_stable(self, opts):
        fp = options_fingerprint(opts)
        assert json.dumps(fp, sort_keys=True)  # no unserializable leftovers


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, {"status": "unsat"})
        assert cache.get(key)["status"] == "unsat"
        assert key in cache
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get(key) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {"status": "sat"})
        path = cache._path(key)
        path.write_text("{ not json")
        assert cache.get(key) is None


class TestParallelIdentity:
    def test_pool_matches_serial(self, opts):
        serial = [synthesize(e, options=opts) for e in EXPRESSIONS]
        with ParallelEngine(jobs=2) as engine:
            parallel = [engine.synthesize(e, options=opts) for e in EXPRESSIONS]
        for s, p in zip(serial, parallel):
            assert p.size == s.size
            assert p.shape == s.shape
            assert p.lower_bound == s.lower_bound
            assert p.assignment.entries == s.assignment.entries
            assert attempt_trace(p) == attempt_trace(s)

    def test_prober_injection_without_pool(self, opts):
        serial = synthesize(EXPRESSIONS[1], options=opts)
        with ParallelEngine(jobs=1) as engine:
            routed = synthesize(EXPRESSIONS[1], options=opts, prober=engine)
        assert routed.assignment.entries == serial.assignment.entries
        assert engine.stats.solver_calls == len(routed.attempts)


class TestWarmCache:
    def test_zero_solver_calls_and_identical_result(self, tmp_path, opts):
        # suite=False throughout: this test pins down the *probe* cache
        # layer; the suite layer has its own tests in test_suite.py.
        serial = [synthesize(e, options=opts) for e in EXPRESSIONS]
        with ParallelEngine(jobs=1, cache=tmp_path / "cache", suite=False) as cold:
            cold_runs = [cold.synthesize(e, options=opts) for e in EXPRESSIONS]
        assert cold.stats.solver_calls > 0
        assert cold.stats.cache_hits == 0

        with ParallelEngine(jobs=1, cache=tmp_path / "cache", suite=False) as warm:
            warm_runs = [warm.synthesize(e, options=opts) for e in EXPRESSIONS]
        assert warm.stats.solver_calls == 0  # every probe answered from disk
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits == cold.stats.solver_calls

        for s, c, w in zip(serial, cold_runs, warm_runs):
            assert c.assignment.entries == s.assignment.entries
            assert w.assignment.entries == s.assignment.entries
            assert w.size == s.size and w.lower_bound == s.lower_bound

    def test_cached_attempts_are_flagged(self, tmp_path, opts):
        expr = EXPRESSIONS[1]
        with ParallelEngine(jobs=1, cache=tmp_path) as cold:
            cold_result = cold.synthesize(expr, options=opts)
        with ParallelEngine(jobs=1, cache=tmp_path) as warm:
            warm_result = warm.synthesize(expr, options=opts)
        assert any(not a.cached for a in cold_result.attempts)
        assert all(a.cached for a in warm_result.attempts)

    def test_time_limited_unknowns_are_not_cached(self, tmp_path):
        # With a wall-clock limit in play, an "unknown" outcome is not
        # reproducible and must not be persisted.
        starved = JanusOptions(max_conflicts=1, lm_time_limit=30.0)
        spec = make_spec("cd + c'd' + abe")
        with ParallelEngine(jobs=1, cache=tmp_path) as engine:
            outcome = engine.solve(spec, 3, 4, starved)
            if outcome.status == "unknown":
                key = lm_cache_key(spec, 3, 4, starved)
                assert engine.cache.get(key) is None


class TestPortfolio:
    def test_portfolio_probe_agrees_on_status(self, opts):
        spec = make_spec(EXPRESSIONS[0])
        baseline = solve_lm(spec, 3, 2, opts)
        with ParallelEngine(jobs=2, portfolio=True) as engine:
            raced = engine.solve(spec, 3, 2, opts)
        assert raced.status == baseline.status == "sat"
        # Any SAT answer from the portfolio is verified; it need not be
        # the same lattice, but it must realize the target.
        assert spec.accepts(raced.assignment.realized_truthtable())

    def test_portfolio_results_never_poison_deterministic_cache(
        self, tmp_path, opts
    ):
        # Portfolio lattices live under their own cache key: a later
        # deterministic engine sharing the directory must recompute and
        # match the serial path exactly.
        spec = make_spec(EXPRESSIONS[1])
        with ParallelEngine(jobs=2, portfolio=True, cache=tmp_path) as racy:
            racy.solve(spec, 3, 3, opts)
        with ParallelEngine(jobs=1, cache=tmp_path) as strict:
            outcome = strict.solve(spec, 3, 3, opts)
        assert strict.stats.cache_hits == 0
        baseline = solve_lm(spec, 3, 3, opts)
        assert outcome.status == baseline.status
        if baseline.status == "sat":
            assert outcome.assignment.entries == baseline.assignment.entries


class TestRunnerSharding:
    def test_sharded_rows_match_serial(self, opts):
        from repro.bench.runner import run_table2

        names = ["b12_03", "c17_01"]
        serial = run_table2(names, ("janus",), opts)
        sharded = run_table2(names, ("janus",), opts, jobs=2)
        assert [r.name for r in sharded] == names
        for s, p in zip(serial, sharded):
            assert p.results["janus"].size == s.results["janus"].size
            assert p.results["janus"].shape == s.results["janus"].shape
            assert p.bounds.lb == s.bounds.lb
            assert p.bounds.new_ub == s.bounds.new_ub

    def test_sharded_run_with_shared_cache(self, tmp_path, opts):
        from repro.bench.runner import run_table2

        names = ["b12_03"]
        first = run_table2(names, ("janus",), opts, jobs=2, cache=tmp_path)
        again = run_table2(names, ("janus",), opts, jobs=1, cache=tmp_path)
        assert first[0].results["janus"].size == again[0].results["janus"].size
