"""Learned portfolio dispatch at the engine layer.

The contract from the workload-generator loop: a warmed
:class:`~repro.gen.dispatch.DispatchTable` lets portfolio mode launch a
single learned probe per shape instead of the full blind race — strictly
fewer probe launches, identical minimal sizes — and an engine (or
session) that *resolved the table path itself* persists the tallies on
close.
"""

from __future__ import annotations

import pytest

from repro.api.session import Session
from repro.core.janus import JanusOptions, synthesize
from repro.gen import DispatchTable, classify, generated_specs

WORKLOAD = ("random-tt", "pla-cover")


@pytest.fixture(scope="module")
def specs():
    return generated_specs(WORKLOAD, level=1, base_seed=0, count=2)


@pytest.fixture
def opts() -> JanusOptions:
    return JanusOptions(max_conflicts=20_000)


def _warmed_table(specs, min_wins=2) -> DispatchTable:
    table = DispatchTable(min_wins=min_wins, min_share=0.5)
    for spec in specs:
        table.record(classify(spec), "eager:default", count=min_wins)
    return table


def test_warmed_table_races_less_and_matches_serial(specs, opts):
    from repro.engine import ParallelEngine

    serial = {s.name: synthesize(s, name=s.name, options=opts) for s in specs}
    presets = ("agile", "default")

    with ParallelEngine(jobs=2, portfolio=True, presets=presets) as blind:
        for spec in specs:
            blind.synthesize(spec, name=spec.name, options=opts)
    assert blind.stats.dispatch_hits == 0
    assert blind.stats.dispatch_misses == 0  # no table attached at all

    table = _warmed_table(specs)
    with ParallelEngine(
        jobs=2, portfolio=True, presets=presets, dispatch=table
    ) as learned:
        results = {
            spec.name: learned.synthesize(spec, name=spec.name, options=opts)
            for spec in specs
        }

    assert learned.stats.dispatch_hits > 0
    # The learned probe replaces a len(presets)+1 race per shape, so the
    # warmed engine must launch strictly fewer probes than blind racing.
    assert learned.stats.dispatched < blind.stats.dispatched
    for spec in specs:
        got, want = results[spec.name], serial[spec.name]
        # Any valid lattice may win a race, but the minimal *size* is
        # unique — learned dispatch must not change it.
        assert (got.rows * got.cols, got.size) == (
            want.rows * want.cols,
            want.size,
        )
        assert spec.accepts(got.assignment.realized_truthtable())
    # Decisive learned probes keep feeding the tallies they came from.
    # (Not every spec launches a probe — bound closure can settle a shape
    # without the solver — so assert the aggregate grew, not each class.)
    recorded = sum(
        table.wins(classify(spec)).get("eager:default", 0) for spec in specs
    )
    warmed = 2 * len({classify(spec) for spec in specs})
    assert recorded > warmed


def test_unknown_rule_falls_back_to_blind_race(specs, opts):
    from repro.engine import ParallelEngine

    spec = specs[1]  # a spec whose shapes genuinely reach the solver
    table = DispatchTable(min_wins=2, min_share=0.5)
    table.record(classify(spec), "eager:no-such-preset", count=5)
    with ParallelEngine(
        jobs=2, portfolio=True, presets=("agile", "default"), dispatch=table
    ) as engine:
        result = engine.synthesize(spec, name=spec.name, options=opts)
    # The bogus rule is rejected before launching anything; every shape
    # falls through to the race and counts a miss.
    assert engine.stats.dispatch_hits == 0
    assert engine.stats.dispatch_misses > 0
    assert spec.accepts(result.assignment.realized_truthtable())


def test_engine_owns_and_saves_a_path_table(tmp_path, specs, opts):
    from repro.engine import ParallelEngine

    path = tmp_path / "dispatch.json"
    with ParallelEngine(
        jobs=2, portfolio=True, presets=("agile", "default"), dispatch=path
    ) as engine:
        spec = specs[1]  # needs real probes, not bound closure
        engine.synthesize(spec, name=spec.name, options=opts)
        assert engine.stats.dispatch_misses > 0  # cold table: blind races
    assert path.exists()
    assert len(DispatchTable(path)) > 0


def test_session_owns_and_saves_a_path_table(tmp_path, specs, opts):
    from repro.api.schema import RequestOptions

    spec = specs[1]  # needs real probes, not bound closure
    path = tmp_path / "dispatch.json"
    with Session(jobs=2, presets=("agile", "default"), dispatch=path) as s:
        s.synthesize(
            spec,
            name=spec.name,
            backend="portfolio",
            options=RequestOptions(max_conflicts=20_000),
        )
        # The engine received the resolved table but must not own it.
        assert s._portfolio_engine is not None
        assert not s._portfolio_engine._dispatch_owner
    assert path.exists()
    reloaded = DispatchTable(path, min_wins=1, min_share=0.0)
    assert reloaded.best(classify(spec)) is not None
