"""Cross-process cache stress: many writers, one directory, no lies.

``janus serve --workers N`` points every forked worker at one shared
:class:`~repro.engine.cache.ResultCache` directory, relying on the
temp-file + ``os.replace`` writer protocol for correctness.  These tests
are the first to actually exercise that protocol from multiple
*processes* (not threads): several workers hammer one cache with
overlapping puts, gets and gc passes, and afterwards every entry must be
whole, canonical, and ``janus cache verify``-green with no ``.tmp-*``
litter.

The worker count and iteration budget scale with
``JANUS_CACHE_STRESS_PROCS`` / ``JANUS_CACHE_STRESS_ITERS`` for heavier
soak runs; the defaults keep the test inside a few seconds for tier-1.
"""

import hashlib
import json
import multiprocessing
import os
import sys

import pytest

from repro.engine.cache import ResultCache
from repro.engine.gc import gc_cache

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="cross-process stress needs the fork start method",
)

PROCS = max(4, int(os.environ.get("JANUS_CACHE_STRESS_PROCS", "6")))
ITERS = int(os.environ.get("JANUS_CACHE_STRESS_ITERS", "120"))
KEYS = 32


def _key(index: int) -> str:
    return hashlib.sha256(f"stress-key-{index}".encode()).hexdigest()


def _payload(index: int) -> dict:
    # Deterministic per key: every process writes the identical payload
    # for a given key (the cache is content-addressed), so any read must
    # see exactly this dict or a clean miss — anything else is a tear.
    return {
        "result": "sat",
        "rows": index % 7,
        "cols": index % 5,
        "witness": "x" * (50 + 37 * (index % 11)),
        "conflicts": index * 13,
    }


def _canonical_bytes(index: int) -> bytes:
    record = dict(_payload(index))
    record["format"] = 1
    return json.dumps(record, separators=(",", ":")).encode()


def _worker(root: str, seed: int, failures) -> None:
    """One stress process: interleaved puts, gets and gc passes."""
    cache = ResultCache(root)
    state = seed
    for step in range(ITERS):
        state = (state * 1103515245 + 12345) % (2**31)
        index = state % KEYS
        op = state % 16
        try:
            if op < 9:
                if not cache.put(_key(index), _payload(index)):
                    failures.put(f"put({index}) returned False at {step}")
                    return
            elif op < 15:
                seen = cache.get(_key(index))
                if seen is not None:
                    expected = dict(_payload(index))
                    expected["format"] = 1
                    if seen != expected:
                        failures.put(f"torn read for key {index}: {seen}")
                        return
            else:
                # Size-bound eviction keeps shard dirs churning through
                # empty -> pruned -> recreated, the put() race window.
                gc_cache(cache, max_bytes=2048)
        except Exception as exc:  # pragma: no cover - failure detail
            failures.put(f"{type(exc).__name__} at step {step}: {exc}")
            return


@pytest.fixture(scope="module")
def stressed_cache(tmp_path_factory):
    """One shared directory after PROCS processes stressed it."""
    root = str(tmp_path_factory.mktemp("shared-cache"))
    ctx = multiprocessing.get_context("fork")
    failures = ctx.Queue()
    procs = [
        ctx.Process(target=_worker, args=(root, 1000 + i, failures))
        for i in range(PROCS)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    errors = []
    while not failures.empty():
        errors.append(failures.get())
    exit_codes = [proc.exitcode for proc in procs]
    return root, errors, exit_codes


class TestConcurrentWriters:
    def test_no_worker_reported_a_tear_or_failed_write(self, stressed_cache):
        root, errors, exit_codes = stressed_cache
        assert errors == []
        assert exit_codes == [0] * PROCS

    def test_no_temp_litter_survives(self, stressed_cache):
        root, _, _ = stressed_cache
        cache = ResultCache(root)
        assert list(cache.iter_temps()) == []

    def test_every_surviving_entry_is_byte_canonical(self, stressed_cache):
        # Whatever subset survived the interleaved gc passes, each file
        # must hold exactly the canonical bytes of its key's payload —
        # concurrent rewrites of one key may only ever collapse to the
        # identical content, never interleave.
        root, _, _ = stressed_cache
        cache = ResultCache(root)
        expected = {_key(i): _canonical_bytes(i) for i in range(KEYS)}
        entries = list(cache.iter_entries())
        assert entries, "stress run left an empty cache"
        for path in entries:
            key = path.name[: -len(".json")]
            assert key in expected, f"foreign entry {path.name}"
            assert path.read_bytes() == expected[key]

    def test_cache_verify_stays_green(self, stressed_cache):
        from repro.engine import verify_cache

        root, _, _ = stressed_cache
        report = verify_cache(ResultCache(root))
        assert report.ok
        assert report.corrupt == 0

    def test_cli_cache_verify_exit_code(self, stressed_cache, capsys):
        from repro.cli import main

        root, _, _ = stressed_cache
        assert main(["cache", "verify", root]) == 0
        assert "0 mismatched" in capsys.readouterr().out


class TestGcRaceHardening:
    def test_put_retries_when_shard_dir_vanishes(self, tmp_path, monkeypatch):
        # The gc dir-prune race: the shard directory disappears between
        # put()'s mkdir and mkstemp.  One retry must absorb it without
        # flipping the cache read-only.
        import tempfile as tempfile_module

        cache = ResultCache(tmp_path / "cache")
        real_mkstemp = tempfile_module.mkstemp
        raised = {"count": 0}

        def flaky_mkstemp(*args, **kwargs):
            if raised["count"] == 0:
                raised["count"] += 1
                raise FileNotFoundError(2, "No such file or directory")
            return real_mkstemp(*args, **kwargs)

        monkeypatch.setattr(
            "repro.engine.cache.tempfile.mkstemp", flaky_mkstemp
        )
        assert cache.put(_key(0), _payload(0)) is True
        assert raised["count"] == 1
        assert cache.get(_key(0)) is not None
        assert cache._writable is True

    def test_put_gives_up_after_persistent_vanishing(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "cache")

        def always_gone(*args, **kwargs):
            raise FileNotFoundError(2, "No such file or directory")

        monkeypatch.setattr(
            "repro.engine.cache.tempfile.mkstemp", always_gone
        )
        with pytest.warns(RuntimeWarning, match="kept vanishing"):
            assert cache.put(_key(1), _payload(1)) is False
        assert cache._writable is False


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-v"]))
