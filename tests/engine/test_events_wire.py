"""Event wire-form round-trips and emitter/session unsubscription."""

import pytest

from repro.engine.events import (
    EVENT_KINDS,
    BoundComputed,
    CacheEvent,
    EventEmitter,
    ProbeFinished,
    ProbeStarted,
    SynthesisFinished,
    SynthesisStarted,
    event_from_wire,
    event_to_wire,
)

SAMPLES = [
    ProbeStarted("f", 3, 4, speculative=True),
    ProbeFinished("f", 3, 4, "unsat", conflicts=7, wall_time=0.25,
                  cached=True, side="dual"),
    BoundComputed("g", "dps", 5, 2, 10),
    CacheEvent("g", "suite", True, "abc123"),
    SynthesisStarted("h", backend="portfolio"),
    SynthesisFinished("h", 3, 2, 6, 1.5, from_cache=True),
]


class TestWireRoundTrip:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).__name__)
    def test_round_trip_is_exact(self, event):
        wire = event_to_wire(event)
        assert wire["event"] in EVENT_KINDS
        assert wire["name"] == event.name
        assert event_from_wire(wire) == event

    def test_wire_form_is_json_safe(self):
        import json

        for event in SAMPLES:
            json.dumps(event_to_wire(event))

    def test_every_kind_is_covered_by_samples(self):
        assert {type(e) for e in SAMPLES} == set(EVENT_KINDS.values())

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            event_from_wire({"event": "nope", "name": "f"})

    def test_non_event_is_rejected(self):
        with pytest.raises(TypeError):
            event_to_wire("not an event")


class TestUnsubscribe:
    def test_emitter_unsubscribe_stops_delivery(self):
        seen, other = [], []
        emitter = EventEmitter(seen.append)
        emitter.emit(SAMPLES[0])
        emitter.unsubscribe(other.append)  # different callback: noop
        emitter.emit(SAMPLES[1])
        emitter.unsubscribe(seen.append)
        emitter.emit(SAMPLES[2])
        assert seen == [SAMPLES[0], SAMPLES[1]]

    def test_unsubscribe_missing_callback_is_noop(self):
        emitter = EventEmitter()
        emitter.unsubscribe(lambda e: None)  # must not raise

    def test_session_unsubscribe_detaches_from_live_engine(self):
        from repro.api import RequestOptions, Session

        options = RequestOptions(max_conflicts=20_000)
        first, second = [], []
        with Session() as session:
            session.subscribe(first.append)
            session.synthesize("ab + a'b'c", options=options)
            assert first  # channel live
            session.unsubscribe(first.append)
            session.subscribe(second.append)
            session.synthesize("ab + cd", options=options)
        count_after = len(first)
        assert count_after == len(first)  # nothing new arrived
        assert second  # replacement listener did receive the second run
