"""Tests for cache hygiene: entry counting, write degradation, GC.

The bugs these pin down: ``__len__``/``clear`` used to glob ``*/*.json``,
which also matches ``.tmp-*.json`` leftovers from crashed writers; and
``put`` used to propagate ``OSError`` out of a synthesis run when the
cache directory was unwritable.
"""

from __future__ import annotations

import os

import pytest

from repro.core.janus import JanusOptions, synthesize
from repro.engine import ParallelEngine, ResultCache, cache_stats, gc_cache

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62
KEY_C = "cc" + "2" * 62


def _make_temp(cache: ResultCache, shard: str = "aa", name: str = ".tmp-x1.json"):
    """Simulate a writer that died between mkstemp and os.replace."""
    shard_dir = cache.root / shard
    shard_dir.mkdir(parents=True, exist_ok=True)
    path = shard_dir / name
    path.write_text('{"status":"sat"}')
    return path


def _age(path, seconds: float) -> None:
    past = path.stat().st_mtime - seconds
    os.utime(path, (past, past))


class TestTempFilesAreNotEntries:
    def test_len_ignores_crashed_writer_temps(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "unsat"})
        _make_temp(cache)
        _make_temp(cache, shard="bb", name=".tmp-x2.json")
        assert len(cache) == 1

    def test_clear_removes_only_real_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "unsat"})
        cache.put(KEY_B, {"status": "sat"})
        temp = _make_temp(cache)
        assert cache.clear() == 2
        assert len(cache) == 0
        # The temp is GC's business (an in-flight writer may still own it).
        assert temp.exists()

    def test_non_hex_json_droppings_are_not_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "unsat"})
        (cache.root / "aa" / "README.json").write_text("{}")
        assert len(cache) == 1
        assert cache.clear() == 1


class TestPutDegradesOnOSError:
    def test_put_warns_and_returns_false(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)

        def boom(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.engine.cache.os.replace", boom)
        with pytest.warns(RuntimeWarning, match="cache write"):
            assert cache.put(KEY_A, {"status": "sat"}) is False
        # Degraded: later writes are silently skipped, no warning spam.
        assert cache.put(KEY_B, {"status": "sat"}) is False
        assert len(cache) == 0

    def test_reads_keep_working_after_write_failure(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "unsat"})
        monkeypatch.setattr(
            "repro.engine.cache.tempfile.mkstemp",
            lambda *a, **k: (_ for _ in ()).throw(OSError(30, "Read-only")),
        )
        with pytest.warns(RuntimeWarning):
            assert cache.put(KEY_B, {"status": "sat"}) is False
        assert cache.get(KEY_A)["status"] == "unsat"  # warm reads still serve

    def test_synthesis_survives_unwritable_cache(self, tmp_path, monkeypatch):
        opts = JanusOptions(max_conflicts=20_000)
        baseline = synthesize("cd + c'd' + abe", options=opts)
        monkeypatch.setattr(
            "repro.engine.cache.os.replace",
            lambda *a, **k: (_ for _ in ()).throw(OSError(30, "Read-only")),
        )
        with ParallelEngine(jobs=1, cache=tmp_path) as engine:
            with pytest.warns(RuntimeWarning):
                result = engine.synthesize("cd + c'd' + abe", options=opts)
        assert result.assignment.entries == baseline.assignment.entries
        assert engine.stats.solver_calls > 0  # ran uncached, did not abort


class TestGc:
    def test_sweeps_only_stale_temps(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "sat"})
        stale = _make_temp(cache, name=".tmp-stale.json")
        fresh = _make_temp(cache, name=".tmp-fresh.json")
        _age(stale, 7200)
        report = gc_cache(cache, tmp_grace=3600)
        assert report.swept_temps == 1
        assert not stale.exists() and fresh.exists()
        assert len(cache) == 1  # entries untouched

    def test_age_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "sat"})
        cache.put(KEY_B, {"status": "unsat"})
        _age(cache._path(KEY_A), 100 * 86400)
        report = gc_cache(cache, max_age=30 * 86400)
        assert report.evicted_by_age == 1
        assert KEY_A not in cache and KEY_B in cache

    def test_size_eviction_drops_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i, key in enumerate([KEY_A, KEY_B, KEY_C]):
            cache.put(key, {"status": "sat", "pad": "x" * 200})
            _age(cache._path(key), (3 - i) * 1000)  # A oldest, C newest
        entry_size = cache._path(KEY_C).stat().st_size
        report = gc_cache(cache, max_bytes=2 * entry_size)
        assert report.evicted_by_size == 1
        assert KEY_A not in cache  # the oldest went first
        assert KEY_B in cache and KEY_C in cache

    def test_prunes_empty_shard_dirs(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "sat"})
        _age(cache._path(KEY_A), 100)
        report = gc_cache(cache, max_age=50)
        assert report.evicted_by_age == 1
        assert report.pruned_dirs == 1
        assert not (cache.root / "aa").exists()

    def test_no_bounds_means_no_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "sat"})
        report = gc_cache(cache)
        assert report.evicted == 0
        assert len(cache) == 1


class TestCacheStats:
    def test_counts_entries_and_temps(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "sat"})
        cache.put(KEY_B, {"status": "unsat"})
        _make_temp(cache)
        st = cache_stats(cache)
        assert st.entries == 2
        assert st.temp_files == 1
        assert st.entry_bytes > 0 and st.temp_bytes > 0

    def test_ages_are_ordered(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, {"status": "sat"})
        cache.put(KEY_B, {"status": "sat"})
        _age(cache._path(KEY_A), 5000)
        st = cache_stats(cache)
        assert st.oldest_age >= 5000 > st.newest_age
