"""Tests for the in-memory LRU layer above the on-disk result cache."""

import pytest

from repro.core.janus import JanusOptions, make_spec
from repro.engine import CacheEvent, LruCache, ParallelEngine


@pytest.fixture
def opts():
    return JanusOptions(max_conflicts=20_000)


class TestLruCache:
    def test_put_get_and_contains(self):
        lru = LruCache(4)
        lru.put("a", {"v": 1})
        assert lru.get("a") == {"v": 1}
        assert "a" in lru and "b" not in lru
        assert lru.get("b") is None
        assert lru.hits == 1 and lru.misses == 1

    def test_eviction_is_least_recently_used(self):
        lru = LruCache(2)
        lru.put("a", {})
        lru.put("b", {})
        assert lru.get("a") is not None  # refresh "a"
        lru.put("c", {})  # evicts "b", the LRU entry
        assert "a" in lru and "c" in lru and "b" not in lru
        assert lru.evictions == 1

    def test_overwrite_refreshes_without_growth(self):
        lru = LruCache(2)
        lru.put("a", {"v": 1})
        lru.put("a", {"v": 2})
        assert len(lru) == 1
        assert lru.get("a") == {"v": 2}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LruCache(0)


class TestEngineMemoryLayer:
    def test_repeat_probe_served_from_memory(self, tmp_path, opts):
        spec = make_spec("ab + a'b'c")
        with ParallelEngine(jobs=1, cache=tmp_path) as engine:
            first = engine.solve(spec, 3, 2, opts)
            second = engine.solve(spec, 3, 2, opts)
        assert engine.stats.solver_calls == 1
        assert engine.stats.memory_hits == 1
        assert engine.stats.cache_hits == 1
        assert second.status == first.status
        assert second.assignment.entries == first.assignment.entries
        assert second.attempt.cached

    def test_disk_hits_promote_into_memory(self, tmp_path, opts):
        spec = make_spec("ab + a'b'c")
        with ParallelEngine(jobs=1, cache=tmp_path) as cold:
            cold.solve(spec, 3, 2, opts)
        with ParallelEngine(jobs=1, cache=tmp_path) as warm:
            warm.solve(spec, 3, 2, opts)  # disk hit, promoted
            warm.solve(spec, 3, 2, opts)  # memory hit
        assert warm.stats.solver_calls == 0
        assert warm.stats.memory_hits == 1
        assert warm.stats.cache_hits == 2

    def test_memory_zero_disables_the_layer(self, tmp_path, opts):
        spec = make_spec("ab + a'b'c")
        with ParallelEngine(jobs=1, cache=tmp_path, memory=0) as engine:
            engine.solve(spec, 3, 2, opts)
            engine.solve(spec, 3, 2, opts)
        assert engine.memory is None
        assert engine.stats.memory_hits == 0
        assert engine.stats.cache_hits == 1  # served from disk instead

    def test_no_disk_cache_means_no_memory_layer(self, opts):
        with ParallelEngine(jobs=1) as engine:
            assert engine.memory is None

    def test_memory_cache_events(self, tmp_path, opts):
        events = []
        spec = make_spec("ab + a'b'c")
        with ParallelEngine(
            jobs=1, cache=tmp_path, events=events.append
        ) as engine:
            engine.solve(spec, 3, 2, opts)
            engine.solve(spec, 3, 2, opts)
        cache_events = [e for e in events if isinstance(e, CacheEvent)]
        assert ("memory", True) in {(e.layer, e.hit) for e in cache_events}
        assert ("disk", False) in {(e.layer, e.hit) for e in cache_events}

    def test_lru_bound_is_respected(self, tmp_path, opts):
        spec = make_spec("ab + a'b'c")
        with ParallelEngine(jobs=1, cache=tmp_path, memory=1) as engine:
            engine.solve(spec, 3, 2, opts)
            engine.solve(spec, 2, 3, opts)  # evicts the 3x2 payload
            engine.solve(spec, 3, 2, opts)  # must fall through to disk
        assert engine.memory is not None and len(engine.memory) == 1
        assert engine.stats.solver_calls == 2
        assert engine.stats.cache_hits == 1
        assert engine.stats.memory_hits == 0
