"""Tests for cache verification (``janus cache verify``)."""

import json

import pytest

from repro.cli import main
from repro.core.janus import JanusOptions, make_spec
from repro.engine import ParallelEngine, ResultCache, verify_cache


@pytest.fixture
def opts():
    return JanusOptions(max_conflicts=20_000)


def _populate(tmp_path, opts, expr="cd + c'd' + abe"):
    with ParallelEngine(jobs=1, cache=tmp_path) as engine:
        engine.synthesize(expr, options=opts)
    return ResultCache(tmp_path)


def _sat_entry_paths(cache):
    """Entries that store an assignment (and are therefore replayable)."""
    out = []
    for path in cache.iter_entries():
        payload = json.loads(path.read_text())
        if payload.get("assignment") is not None:
            out.append(path)
    return out


class TestVerifyCache:
    def test_fresh_cache_verifies_clean(self, tmp_path, opts):
        cache = _populate(tmp_path, opts)
        report = verify_cache(cache)
        assert report.ok
        assert report.checked >= 1
        assert report.verified == report.checked
        assert report.mismatched == 0
        assert report.unverifiable == 0

    def test_corrupted_assignment_is_flagged(self, tmp_path, opts):
        cache = _populate(tmp_path, opts)
        victim = _sat_entry_paths(cache)[0]
        payload = json.loads(victim.read_text())
        # Flip every switch to the complementary literal: the stored
        # lattice no longer realizes the function it is keyed by.
        payload["assignment"]["entries"] = [
            [var, not positive] if var is not None else [var, positive]
            for var, positive in payload["assignment"]["entries"]
        ]
        victim.write_text(json.dumps(payload))
        report = verify_cache(cache)
        assert not report.ok
        assert report.mismatched >= 1
        assert any(key in victim.name for key in report.mismatches)

    def test_entry_without_snapshot_is_unverifiable(self, tmp_path, opts):
        cache = _populate(tmp_path, opts)
        victim = _sat_entry_paths(cache)[0]
        payload = json.loads(victim.read_text())
        payload.pop("spec", None)
        victim.write_text(json.dumps(payload))
        report = verify_cache(cache)
        assert report.ok  # old-format entries are skipped, not failed
        assert report.unverifiable >= 1

    def test_unsat_entries_are_skipped(self, tmp_path, opts):
        spec = make_spec("cd + c'd' + abe")
        with ParallelEngine(jobs=1, cache=tmp_path) as engine:
            outcome = engine.solve(spec, 2, 2, opts)  # too small: unsat
        assert outcome.status == "unsat"
        report = verify_cache(ResultCache(tmp_path))
        assert report.skipped >= 1
        assert report.ok


class TestVerifyCli:
    def test_clean_cache_exits_zero(self, tmp_path, opts, capsys):
        _populate(tmp_path, opts)
        assert main(["cache", "verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "0 mismatched" in out

    def test_corrupt_cache_exits_nonzero(self, tmp_path, opts, capsys):
        cache = _populate(tmp_path, opts)
        victim = _sat_entry_paths(cache)[0]
        payload = json.loads(victim.read_text())
        payload["assignment"]["entries"] = [
            [var, not positive] if var is not None else [var, positive]
            for var, positive in payload["assignment"]["entries"]
        ]
        victim.write_text(json.dumps(payload))
        assert main(["cache", "verify", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "MISMATCH" in captured.err
