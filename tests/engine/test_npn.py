"""NPN-class suite-cache aliasing: NP-equivalent functions share one
whole-result entry (opt-in), with the donor lattice relabeled through
the input transform and re-verified before it is trusted."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boolf.truthtable import TruthTable
from repro.core.janus import JanusOptions
from repro.core.target import TargetSpec
from repro.engine import ParallelEngine
from repro.engine.signature import InputTransform, npn_alias_key, npn_canonical

OPTS = JanusOptions(max_conflicts=10_000)


class TestInputTransform:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_inverse_and_compose_laws(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        bits = rng.random(1 << n) < 0.5
        tt = TruthTable(bits, n)
        perm_a = tuple(rng.permutation(n).tolist())
        perm_b = tuple(rng.permutation(n).tolist())
        a = InputTransform(perm_a, int(rng.integers(0, 1 << n)))
        b = InputTransform(perm_b, int(rng.integers(0, 1 << n)))
        assert a.inverse().apply_tt(a.apply_tt(tt)) == tt
        assert a.compose(b).apply_tt(tt) == a.apply_tt(b.apply_tt(tt))

    def test_entry_transform_matches_function_transform(self):
        # x0 & ~x1 under swap+negate
        t = InputTransform((1, 0), 0b01)
        assert t.apply_entry(0, True) == (1, False)
        assert t.apply_entry(1, False) == (0, False)
        assert t.apply_entry(None, True) == (None, True)


class TestCanonicalization:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_np_equivalent_specs_share_canonical_form(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        bits = rng.random(1 << n) < 0.5
        if not bits.any() or bits.all():
            bits[0] = True
            bits[-1] = False
        tt = TruthTable(bits, n)
        t = InputTransform(
            tuple(rng.permutation(n).tolist()), int(rng.integers(0, 1 << n))
        )
        spec_a = TargetSpec.from_truthtable(tt, name="a")
        spec_b = TargetSpec.from_truthtable(t.apply_tt(tt), name="b")
        canon_a = npn_canonical(spec_a)
        canon_b = npn_canonical(spec_b)
        assert canon_a is not None and canon_b is not None
        assert canon_a[0] == canon_b[0]
        # The recorded transforms actually reach the canonical form.
        fp_a, t_a = canon_a
        reached = t_a.apply_tt(tt)
        assert np.packbits(
            reached.values, bitorder="little"
        ).tobytes().hex() == fp_a["tt"]

    def test_wide_inputs_fall_back_to_none(self):
        rng = np.random.default_rng(0)
        bits = rng.random(1 << 7) < 0.5
        spec = TargetSpec.from_truthtable(TruthTable(bits, 7), name="wide")
        assert npn_canonical(spec) is None
        assert npn_alias_key(spec, OPTS) is None


class TestAliasSharing:
    def test_equivalent_functions_share_suite_entry(self, tmp_path):
        cache = tmp_path / "cache"
        with ParallelEngine(jobs=1, cache=cache, npn=True) as engine:
            donor = engine.synthesize("ab + ac'", name="donor", options=OPTS)
            assert engine.stats.npn_hits == 0
        with ParallelEngine(jobs=1, cache=cache, npn=True) as engine:
            twin = engine.synthesize("ab + bc'", name="twin", options=OPTS)
            assert engine.stats.npn_hits == 1
            assert engine.stats.solver_calls == 0  # whole result reused
            assert twin.size == donor.size
            # The relabeled lattice genuinely realizes the twin target.
            assert twin.spec.accepts(twin.assignment.realized_truthtable())

    def test_npn_off_by_default(self, tmp_path):
        cache = tmp_path / "cache"
        with ParallelEngine(jobs=1, cache=cache) as engine:
            engine.synthesize("ab + ac'", name="donor", options=OPTS)
        with ParallelEngine(jobs=1, cache=cache) as engine:
            engine.synthesize("ab + bc'", name="twin", options=OPTS)
            assert engine.stats.npn_hits == 0
            assert engine.stats.suite_hits == 0  # no whole-result reuse

    def test_exact_entry_takes_precedence_over_alias(self, tmp_path):
        """A warm re-run of the same spec must serve its own entry, so
        results stay byte-identical run over run even with npn on."""
        cache = tmp_path / "cache"
        with ParallelEngine(jobs=1, cache=cache, npn=True) as engine:
            first = engine.synthesize("ab + ac'", name="f", options=OPTS)
        with ParallelEngine(jobs=1, cache=cache, npn=True) as engine:
            second = engine.synthesize("ab + ac'", name="f", options=OPTS)
            assert engine.stats.suite_hits == 1
            assert engine.stats.npn_hits == 0
        assert first.assignment.entries == second.assignment.entries

    def test_corrupt_alias_degrades_to_miss(self, tmp_path):
        from repro.engine.signature import npn_alias_key

        cache = tmp_path / "cache"
        with ParallelEngine(jobs=1, cache=cache, npn=True) as engine:
            engine.synthesize("ab + ac'", name="donor", options=OPTS)
        # Point the twin's alias at a missing exact entry.
        from repro.core.janus import make_spec

        twin_spec = make_spec("ab + bc'", name="twin")
        alias_key, _ = npn_alias_key(twin_spec, OPTS)
        from repro.engine.cache import ResultCache

        ResultCache(cache).put(
            alias_key,
            {"kind": "npn-alias", "exact_key": "0" * 64,
             "perm": [0, 1, 2], "mask": 0},
        )
        with ParallelEngine(jobs=1, cache=cache, npn=True) as engine:
            result = engine.synthesize("ab + bc'", name="twin", options=OPTS)
            assert engine.stats.npn_hits == 0
            assert result.spec.accepts(result.assignment.realized_truthtable())
