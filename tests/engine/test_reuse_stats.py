"""Solver-reuse counters and deep speculation through the engine layer:
attempts carry per-probe solver work over the wire, the engine
aggregates it into :class:`EngineStats`, and the speculation chain
prefetches grandchild midpoints when workers are idle."""

from dataclasses import asdict

import pytest

from repro.core.janus import JanusOptions, LmAttempt
from repro.engine import ParallelEngine
from repro.engine.wire import attempt_from_wire, attempt_to_wire

OPTS = JanusOptions(max_conflicts=10_000)


class TestAttemptWire:
    def test_roundtrip_carries_reuse_fields(self):
        attempt = LmAttempt(
            rows=3, cols=4, status="unsat", side="primal", complexity=99,
            conflicts=7, wall_time=0.5, propagations=123, restarts=2,
            reused=True, pruned=True,
        )
        back = attempt_from_wire(attempt_to_wire(attempt))
        assert back.propagations == 123
        assert back.restarts == 2
        assert back.reused and back.pruned

    def test_old_payloads_default_reuse_fields_off(self):
        """Cache entries written before the incremental engine lack the
        new keys and must still decode."""
        legacy = {
            "rows": 2, "cols": 2, "status": "sat", "side": "dual",
            "complexity": 5, "conflicts": 1, "wall_time": 0.1,
        }
        back = attempt_from_wire(legacy, cached=True)
        assert back.propagations == 0
        assert back.restarts == 0
        assert not back.reused and not back.pruned
        assert back.cached


class TestEngineAggregation:
    def test_propagations_aggregate_across_probes(self):
        with ParallelEngine(jobs=1) as engine:
            # 3-input parity: the bounds never close the gap, so the
            # dichotomic loop performs real SAT probes.
            result = engine.synthesize(
                "a'b'c' + a'bc + ab'c + abc'", options=OPTS
            )
        probed = [a for a in result.attempts if a.propagations > 0]
        assert probed, "expected at least one real SAT probe"
        assert engine.stats.propagations >= sum(a.propagations for a in probed)

    def test_stats_snapshot_has_reuse_keys(self):
        with ParallelEngine(jobs=1) as engine:
            engine.synthesize("ab + a'b'c", options=OPTS)
            snapshot = asdict(engine.stats)
        for key in ("propagations", "reuse_hits", "pruned_shapes",
                    "solver_restarts", "restarts_avoided",
                    "speculated_deep", "npn_hits"):
            assert key in snapshot

    def test_restarts_avoided_counts_cache_replays(self, tmp_path):
        expr = "a'b'c' + a'bc + ab'c + abc'"
        with ParallelEngine(jobs=1, cache=tmp_path / "c", suite=False) as one:
            first = one.synthesize(expr, options=OPTS)
        restarts = sum(a.restarts for a in first.attempts)
        with ParallelEngine(jobs=1, cache=tmp_path / "c", suite=False) as two:
            two.synthesize(expr, options=OPTS)
            assert two.stats.restarts_avoided == restarts


class TestDeepSpeculation:
    def test_depth_two_prefetches_grandchildren(self):
        """With enough idle workers, the UNSAT-branch grandchild
        midpoint is prefetched alongside the child's."""
        with ParallelEngine(jobs=4, speculate_depth=2) as engine:
            serial_like = engine.synthesize(
                "a'b'c' + a'bc + ab'c + abc'", options=OPTS
            )
        assert serial_like is not None
        # Depth-2 items only exist when the search had room to recurse;
        # the counter must at least be consistent with totals.
        assert engine.stats.speculated_deep <= engine.stats.speculated

    def test_depth_one_never_prefetches_grandchildren(self):
        with ParallelEngine(jobs=4, speculate_depth=1) as engine:
            engine.synthesize("a'b'c' + a'bc + ab'c + abc'", options=OPTS)
        assert engine.stats.speculated_deep == 0

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_results_identical_across_depths(self, depth):
        from repro.core.janus import synthesize

        expr = "a'b'c' + a'bc + ab'c + abc'"
        serial = synthesize(expr, options=OPTS)
        with ParallelEngine(jobs=2, speculate_depth=depth) as engine:
            pooled = engine.synthesize(expr, options=OPTS)
        assert pooled.assignment.entries == serial.assignment.entries
        assert (pooled.size, pooled.shape) == (serial.size, serial.shape)


class TestCoreTally:
    """`EngineStats.cores` counts which propagation core served each
    *solver-backed* probe — structural prechecks never construct a
    solver and must stay out of the tally."""

    def test_cores_tally_counts_only_solver_backed_probes(self):
        from repro.sat.solver import resolve_core_class

        with ParallelEngine(jobs=1) as engine:
            result = engine.synthesize("cd + c'd' + abe", options=OPTS)
            cores = dict(engine.stats.cores)
        solver_backed = [
            a for a in result.attempts
            if a.status != "structural" and not (a.cached or a.pruned)
        ]
        structural = [a for a in result.attempts if a.status == "structural"]
        assert structural, "workload should include structural prechecks"
        assert sum(cores.values()) == len(solver_backed)
        # Every label is a real core, and the ambient core is among them.
        assert set(cores) <= {"pure", "native"}
        assert resolve_core_class().core_name in cores

    def test_structural_only_run_records_no_cores(self):
        # 2x2 constant-ish target: bounds close the gap, zero SAT probes.
        with ParallelEngine(jobs=1) as engine:
            engine.synthesize("ab", options=OPTS)
            assert engine.stats.cores == {}
