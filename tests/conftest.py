"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.boolf import Cube, Sop, TruthTable
from repro.core import JanusOptions


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running soak/stress tests (run with -m slow on the "
        "nightly path; brief versions run by default)",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fast_options() -> JanusOptions:
    """Small budgets for unit tests."""
    return JanusOptions(max_conflicts=20_000)


# ------------------------------------------------------ hypothesis strategies
def truthtables(num_vars: int = 4):
    """Strategy producing TruthTable objects over ``num_vars`` variables."""
    size = 1 << num_vars
    return st.integers(min_value=0, max_value=(1 << size) - 1).map(
        lambda bits: TruthTable(
            np.array([(bits >> i) & 1 == 1 for i in range(size)], dtype=bool),
            num_vars,
        )
    )


def cubes(num_vars: int = 4):
    """Strategy producing consistent cubes over ``num_vars`` variables."""

    def build(choices: list[int]) -> Cube:
        pos = neg = 0
        for var, c in enumerate(choices):
            if c == 1:
                pos |= 1 << var
            elif c == 2:
                neg |= 1 << var
        return Cube(pos, neg, num_vars)

    return st.lists(
        st.integers(min_value=0, max_value=2),
        min_size=num_vars,
        max_size=num_vars,
    ).map(build)


def sops(num_vars: int = 4, max_products: int = 5):
    return st.lists(cubes(num_vars), min_size=0, max_size=max_products).map(
        lambda cs: Sop(cs, num_vars)
    )
