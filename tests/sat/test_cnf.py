"""Tests for CNF containers and the variable pool."""

import pytest

from repro.errors import EncodingError
from repro.sat import Cnf, VarPool


class TestVarPool:
    def test_fresh_sequential(self):
        pool = VarPool()
        assert pool.fresh() == 1
        assert pool.fresh() == 2
        assert pool.num_vars == 2

    def test_keyed_variables_stable(self):
        pool = VarPool()
        v1 = pool.var(("m", 0, 1))
        v2 = pool.var(("m", 0, 1))
        assert v1 == v2
        assert pool.var(("m", 0, 2)) != v1

    def test_lookup_and_key_of(self):
        pool = VarPool()
        v = pool.var("x")
        assert pool.lookup("x") == v
        assert pool.lookup("y") is None
        assert pool.key_of(v) == "x"
        assert pool.key_of(99) is None

    def test_items(self):
        pool = VarPool()
        pool.var("a")
        pool.var("b")
        assert dict(pool.items()) == {"a": 1, "b": 2}

    def test_start_below_one_rejected(self):
        with pytest.raises(EncodingError):
            VarPool(start=0)


class TestCnf:
    def test_add_and_len(self):
        cnf = Cnf()
        a, b = cnf.pool.fresh(), cnf.pool.fresh()
        cnf.add([a, -b])
        assert len(cnf) == 1
        assert cnf.num_vars == 2

    def test_complexity_is_vars_times_clauses(self):
        cnf = Cnf()
        a = cnf.pool.fresh()
        cnf.add([a])
        cnf.add([-a])
        assert cnf.complexity == 2

    def test_zero_literal_rejected(self):
        cnf = Cnf()
        cnf.pool.fresh()
        with pytest.raises(EncodingError):
            cnf.add([0])

    def test_unallocated_variable_rejected(self):
        cnf = Cnf()
        with pytest.raises(EncodingError):
            cnf.add([5])

    def test_extend_and_iter(self):
        cnf = Cnf()
        a, b = cnf.pool.fresh(), cnf.pool.fresh()
        cnf.extend([[a], [b], [-a, -b]])
        assert list(cnf) == [[a], [b], [-a, -b]]

    def test_repr(self):
        assert "Cnf" in repr(Cnf())
