"""Solver-level contracts the incremental probe engine stands on:
per-call budgets on a reused solver, learned-clause retention across
assumption probes, and final-conflict cores that stay usable probe after
probe."""

import pytest

from repro.sat import CdclSolver


def _php_clauses(holes: int) -> tuple[list[list[int]], int]:
    """Pigeonhole PHP(holes+1, holes): small but nontrivially UNSAT."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses, pigeons * holes


class TestPerCallBudgets:
    def test_budget_applies_per_call_not_per_lifetime(self):
        clauses, _ = _php_clauses(5)
        solver = CdclSolver(max_conflicts=2)
        for clause in clauses:
            solver.add_clause(clause)
        # The tiny constructor budget makes each call give up...
        assert solver.solve().status == "unknown"
        # ...and a fresh allowance applies on the next call, so repeated
        # calls keep making progress instead of dying instantly.
        assert solver.solve().status == "unknown"
        # A per-call override lifts the cap for one call only.
        assert solver.solve(max_conflicts=None).status == "unsat"

    def test_per_call_override_tightens(self):
        clauses, _ = _php_clauses(5)
        solver = CdclSolver()  # no lifetime budget
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve(max_conflicts=1).status == "unknown"
        # The override does not stick: the unbudgeted default returns.
        assert solver.solve().status == "unsat"

    def test_per_call_time_budget(self):
        clauses, _ = _php_clauses(7)
        solver = CdclSolver()
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve(max_time=0.0).status == "unknown"


class TestLearnedClauseRetention:
    def test_reprobe_same_assumptions_is_cheap(self):
        """An assumption-UNSAT probe leaves its learned clauses behind;
        re-probing the same assumptions must cost almost nothing."""
        clauses, num_vars = _php_clauses(4)
        sel = num_vars + 1  # guard literal activating the PHP clauses
        solver = CdclSolver()
        for clause in clauses:
            solver.add_clause([-sel] + clause)
        first = solver.solve([sel])
        assert first.is_unsat
        conflicts_first = solver.stats.conflicts
        assert conflicts_first > 0
        second = solver.solve([sel])
        assert second.is_unsat
        # The replay rides on retained learned clauses: at most a couple
        # of conflicts, not a second refutation from scratch.
        assert solver.stats.conflicts - conflicts_first <= conflicts_first // 4
        # And the solver is still usable without the guard.
        assert solver.solve([-sel]).is_sat

    def test_learnts_survive_between_calls(self):
        clauses, _ = _php_clauses(4)
        solver = CdclSolver()
        for clause in clauses:
            solver.add_clause(clause)
        solver.solve(max_conflicts=8)
        learned_mid = solver.stats.learned
        assert learned_mid > 0
        solver.solve(max_conflicts=8)
        assert solver.stats.learned >= learned_mid

    def test_phase_saving_reuses_previous_model_region(self):
        """A satisfiable re-probe after a model was found should be far
        cheaper than the first probe (saved phases steer straight back)."""
        clauses, num_vars = _php_clauses(4)
        # Satisfiable variant: drop one pigeon's at-least-one clause.
        solver = CdclSolver()
        for clause in clauses[1:]:
            solver.add_clause(clause)
        first = solver.solve()
        assert first.is_sat
        decisions_first = solver.stats.decisions
        second = solver.solve()
        assert second.is_sat
        assert solver.stats.decisions - decisions_first <= decisions_first


class TestCoresAcrossProbes:
    def test_core_identifies_the_guilty_selector(self):
        """Guarded sub-formulas: the core names only the selector whose
        formula is contradictory, probe after probe."""
        solver = CdclSolver()
        # Selector 1 guards an UNSAT pair, selector 2 a satisfiable one.
        solver.add_clause([-1, 3])
        solver.add_clause([-1, -3])
        solver.add_clause([-2, 4])
        result = solver.solve([2, 1])
        assert result.is_unsat
        assert result.core is not None
        assert 1 in result.core
        assert 2 not in result.core
        # The untouched selector still works on its own.
        assert solver.solve([2]).is_sat
        # And the guilty one keeps producing a core on re-probe.
        again = solver.solve([2, 1])
        assert again.is_unsat and 1 in again.core

    def test_clause_addition_between_assumption_probes(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]).is_sat
        solver.add_clause([-2, 3])
        result = solver.solve([-1, -3])
        assert result.is_unsat
        assert set(result.core) <= {-1, -3}

    @pytest.mark.parametrize("holes", [3, 4])
    def test_budgeted_probe_then_full_refutation(self, holes):
        """A budget-capped probe must leave the solver consistent for a
        follow-up full probe of the same assumptions."""
        clauses, num_vars = _php_clauses(holes)
        sel = num_vars + 1
        solver = CdclSolver()
        for clause in clauses:
            solver.add_clause([-sel] + clause)
        capped = solver.solve([sel], max_conflicts=1)
        assert capped.status in ("unknown", "unsat")
        full = solver.solve([sel])
        assert full.is_unsat
        assert full.core is not None and set(full.core) <= {sel}
