"""Tests for the k-cardinality encodings (sequential counter, totalizer).

Each encoding is validated by exhaustive model enumeration: over n input
variables, the number of models projected onto the inputs must equal the
number of 0/1 vectors satisfying the bound.
"""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.sat import (
    CdclSolver,
    Cnf,
    Totalizer,
    at_least_k_totalizer,
    at_most_k_sequential,
    at_most_k_totalizer,
    exactly_k,
)


def count_projected_models(cnf: Cnf, num_inputs: int) -> int:
    """Count assignments of vars 1..num_inputs extendable to a model."""
    count = 0
    for bits in itertools.product([False, True], repeat=num_inputs):
        solver = CdclSolver()
        for clause in cnf:
            solver.add_clause(clause)
        assumptions = [
            (i + 1) if bit else -(i + 1) for i, bit in enumerate(bits)
        ]
        if solver.solve(assumptions).is_sat:
            count += 1
    return count


def binomial_at_most(n: int, k: int) -> int:
    return sum(math.comb(n, j) for j in range(0, min(k, n) + 1))


class TestAtMostKSequential:
    @pytest.mark.parametrize("n,k", [(1, 1), (3, 1), (4, 2), (5, 3), (6, 2)])
    def test_projected_model_count(self, n, k):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(n)]
        at_most_k_sequential(cnf, lits, k)
        assert count_projected_models(cnf, n) == binomial_at_most(n, k)

    def test_k_zero_forces_all_false(self):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(3)]
        at_most_k_sequential(cnf, lits, 0)
        assert count_projected_models(cnf, 3) == 1

    def test_k_negative_rejected(self):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(2)]
        with pytest.raises(EncodingError):
            at_most_k_sequential(cnf, lits, -1)

    def test_k_ge_n_unconstrained(self):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(3)]
        at_most_k_sequential(cnf, lits, 3)
        assert cnf.num_clauses == 0


class TestTotalizer:
    @pytest.mark.parametrize("n,k", [(1, 1), (3, 1), (4, 2), (5, 3), (5, 4)])
    def test_at_most_projected_model_count(self, n, k):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(n)]
        at_most_k_totalizer(cnf, lits, k)
        assert count_projected_models(cnf, n) == binomial_at_most(n, k)

    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 5)])
    def test_at_least_projected_model_count(self, n, k):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(n)]
        at_least_k_totalizer(cnf, lits, k)
        expected = sum(math.comb(n, j) for j in range(k, n + 1))
        assert count_projected_models(cnf, n) == expected

    @pytest.mark.parametrize("n,k", [(3, 0), (4, 2), (5, 5)])
    def test_exactly_k_projected_model_count(self, n, k):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(n)]
        exactly_k(cnf, lits, k)
        assert count_projected_models(cnf, n) == math.comb(n, k)

    def test_outputs_are_a_unary_counter(self):
        # With inputs fixed, output j must be true iff at least j+1 inputs
        # are true.
        n = 4
        for true_count in range(n + 1):
            cnf = Cnf()
            lits = [cnf.pool.fresh() for _ in range(n)]
            tot = Totalizer(cnf, lits)
            solver = CdclSolver()
            for clause in cnf:
                solver.add_clause(clause)
            assumptions = [
                lit if i < true_count else -lit for i, lit in enumerate(lits)
            ]
            result = solver.solve(assumptions)
            assert result.is_sat
            for j, out in enumerate(tot.outputs):
                assert result.value(out) == (true_count >= j + 1)

    def test_at_least_over_capacity_rejected(self):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(2)]
        with pytest.raises(EncodingError):
            at_least_k_totalizer(cnf, lits, 3)

    def test_empty_input_rejected(self):
        with pytest.raises(EncodingError):
            Totalizer(Cnf(), [])

    def test_exactly_k_out_of_range_rejected(self):
        cnf = Cnf()
        lits = [cnf.pool.fresh() for _ in range(2)]
        with pytest.raises(EncodingError):
            exactly_k(cnf, lits, 3)


class TestEncodingAgreement:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_sequential_and_totalizer_agree(self, n, k):
        counts = []
        for encoder in (at_most_k_sequential, at_most_k_totalizer):
            cnf = Cnf()
            lits = [cnf.pool.fresh() for _ in range(n)]
            encoder(cnf, lits, k)
            counts.append(count_projected_models(cnf, n))
        assert counts[0] == counts[1] == binomial_at_most(n, k)
