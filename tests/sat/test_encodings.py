"""Tests for cardinality encodings: semantic equivalence by enumeration."""

import itertools

import pytest

from repro.errors import EncodingError
from repro.sat import Cnf, exactly_one
from repro.sat.encodings import (
    at_least_one,
    at_most_one_commander,
    at_most_one_pairwise,
    at_most_one_sequential,
)


def models_over(cnf: Cnf, base_vars: list[int]) -> set[tuple[bool, ...]]:
    """Projections onto base_vars of all satisfying assignments."""
    n = cnf.num_vars
    out = set()
    for assignment in range(1 << n):
        ok = all(
            any(
                (lit > 0) == bool(assignment >> (abs(lit) - 1) & 1)
                for lit in clause
            )
            for clause in cnf.clauses
        )
        if ok:
            out.add(tuple(bool(assignment >> (v - 1) & 1) for v in base_vars))
    return out


def expected_amo(n: int) -> set[tuple[bool, ...]]:
    return {
        tuple(bits)
        for bits in itertools.product([False, True], repeat=n)
        if sum(bits) <= 1
    }


def expected_eo(n: int) -> set[tuple[bool, ...]]:
    return {
        tuple(bits)
        for bits in itertools.product([False, True], repeat=n)
        if sum(bits) == 1
    }


@pytest.mark.parametrize("n", [1, 2, 3, 5])
@pytest.mark.parametrize(
    "encoder",
    [at_most_one_pairwise, at_most_one_sequential, at_most_one_commander],
    ids=["pairwise", "sequential", "commander"],
)
def test_amo_semantics(n, encoder):
    cnf = Cnf()
    lits = [cnf.pool.fresh() for _ in range(n)]
    encoder(cnf, lits)
    assert models_over(cnf, lits) == expected_amo(n)


@pytest.mark.parametrize("method", ["pairwise", "sequential", "commander"])
@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_exactly_one_semantics(method, n):
    cnf = Cnf()
    lits = [cnf.pool.fresh() for _ in range(n)]
    exactly_one(cnf, lits, method=method)
    assert models_over(cnf, lits) == expected_eo(n)


def test_commander_recursion_kicks_in():
    cnf = Cnf()
    lits = [cnf.pool.fresh() for _ in range(9)]
    at_most_one_commander(cnf, lits, group_size=3)
    assert cnf.num_vars > 9  # commander variables were introduced
    assert models_over(cnf, lits) == expected_amo(9)


def test_sequential_uses_linear_clauses():
    cnf_seq = Cnf()
    lits = [cnf_seq.pool.fresh() for _ in range(12)]
    at_most_one_sequential(cnf_seq, lits)
    cnf_pw = Cnf()
    lits2 = [cnf_pw.pool.fresh() for _ in range(12)]
    at_most_one_pairwise(cnf_pw, lits2)
    assert cnf_seq.num_clauses < cnf_pw.num_clauses


def test_at_least_one_empty_rejected():
    with pytest.raises(EncodingError):
        at_least_one(Cnf(), [])


def test_unknown_method_rejected():
    cnf = Cnf()
    lits = [cnf.pool.fresh()]
    with pytest.raises(EncodingError):
        exactly_one(cnf, lits, method="magic")
