"""Tests for DIMACS import/export."""

import pytest

from repro.errors import ParseError
from repro.sat import Cnf, read_dimacs, solve_cnf, write_dimacs

SAMPLE = """\
c a small instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
"""


class TestRead:
    def test_basic(self):
        cnf = read_dimacs(SAMPLE)
        assert cnf.num_vars == 3
        assert cnf.clauses == [[1, -2], [2, 3], [-1]]

    def test_multiline_clause(self):
        cnf = read_dimacs("p cnf 2 1\n1\n2 0\n")
        assert cnf.clauses == [[1, 2]]

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError):
            read_dimacs("1 2 0\n")

    def test_bad_header_rejected(self):
        with pytest.raises(ParseError):
            read_dimacs("p sat 3 1\n1 0\n")

    def test_percent_terminator(self):
        cnf = read_dimacs("p cnf 2 1\n1 2 0\n%\n0\n")
        assert cnf.clauses == [[1, 2]]

    def test_solvable(self):
        result = solve_cnf(read_dimacs(SAMPLE))
        assert result.is_sat
        assert not result.value(1)
        assert not result.value(2)
        assert result.value(3)


class TestWrite:
    def test_round_trip(self):
        cnf = Cnf()
        a, b = cnf.pool.fresh(), cnf.pool.fresh()
        cnf.add([a, b])
        cnf.add([-a])
        text = write_dimacs(cnf, comment="hello\nworld")
        back = read_dimacs(text)
        assert back.clauses == cnf.clauses
        assert back.num_vars == cnf.num_vars
        assert text.startswith("c hello")

    def test_header_counts(self):
        cnf = Cnf()
        a = cnf.pool.fresh()
        cnf.add([a])
        assert "p cnf 1 1" in write_dimacs(cnf)
