"""SolverConfig: presets, the kwarg shim, wire forms, keys, and proofs.

The contract this file pins down:

* the default :class:`SolverConfig` is **byte-identical** to the
  historical solver — same trajectory at the CDCL level, same
  ``SynthesisResult`` end to end;
* the legacy ``CdclSolver`` kwargs are a faithful shim over the config;
* every named preset round-trips through the wire form, and the default
  config normalizes to the absent/null spelling;
* differently-tuned option sets get different cache keys;
* every preset's UNSAT trajectory emits a DRAT proof that checks;
* the portfolio engine races the presets and tallies per-preset wins.
"""

import dataclasses

import pytest

from repro.errors import SolverError, ValidationError
from repro.sat import SOLVER_PRESETS, CdclSolver, SolverConfig, check_refutation
from repro.sat.solver import solve_cnf


def php_clauses(holes: int) -> list[list[int]]:
    """Pigeonhole principle: holes+1 pigeons into ``holes`` holes — UNSAT."""
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def random_3cnf(num_vars: int, num_clauses: int, seed: int) -> list[list[int]]:
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


def run_solver(clauses, **kwargs):
    solver = CdclSolver(**kwargs)
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    return result, solver


def trajectory(result, solver):
    """Everything observable about one solve, for identity comparisons."""
    return (
        result.status,
        result.model,
        dataclasses.asdict(solver.stats),
    )


class TestConfigValidation:
    def test_default_and_named_presets(self):
        assert SolverConfig.default() == SolverConfig()
        assert set(SOLVER_PRESETS) >= {"default", "agile", "stable", "heavy"}
        assert SOLVER_PRESETS["default"] == SolverConfig()
        for name, config in SOLVER_PRESETS.items():
            assert SolverConfig.preset(name) == config

    def test_unknown_preset_raises(self):
        with pytest.raises(SolverError, match="agile"):
            SolverConfig.preset("bogus")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"restart_strategy": "fibonacci"},
            {"phase_saving": "sometimes"},
            {"restart_base": 0},
            {"restart_growth": 1.0},
            {"var_decay": 0.0},
            {"var_decay": 1.5},
            {"clause_decay": -0.1},
            {"reduce_base": 0},
            {"reduce_growth": 0.5},
            {"max_conflicts": -1},
            {"max_time": -0.5},
        ],
    )
    def test_bad_fields_raise(self, kwargs):
        with pytest.raises(SolverError):
            SolverConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SolverConfig().restart_base = 7


class TestByteIdentity:
    """The default config must reproduce the historical solver exactly."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_default_config_solver_trajectory(self, seed):
        clauses = random_3cnf(12, 50, seed)
        plain = trajectory(*run_solver(clauses))
        explicit = trajectory(*run_solver(clauses, config=SolverConfig()))
        preset = trajectory(
            *run_solver(clauses, config=SolverConfig.preset("default"))
        )
        assert plain == explicit == preset

    def test_default_config_synthesis_result(self):
        from repro.core.janus import JanusOptions, synthesize

        spec_str = "ab + a'b'c"
        base = synthesize(spec_str, options=JanusOptions())
        explicit = synthesize(
            spec_str, options=JanusOptions(solver=SolverConfig())
        )
        assert base.assignment.entries == explicit.assignment.entries
        assert base.shape == explicit.shape
        assert base.size == explicit.size
        assert base.lower_bound == explicit.lower_bound
        assert base.upper_bounds == explicit.upper_bounds
        assert [
            (a.rows, a.cols, a.status, a.conflicts) for a in base.attempts
        ] == [
            (a.rows, a.cols, a.status, a.conflicts) for a in explicit.attempts
        ]


class TestKwargShim:
    def test_legacy_kwargs_match_config(self):
        clauses = random_3cnf(12, 50, 7)
        legacy = trajectory(
            *run_solver(clauses, restart_base=32, var_decay=0.9)
        )
        configured = trajectory(
            *run_solver(
                clauses,
                config=SolverConfig(restart_base=32, var_decay=0.9),
            )
        )
        assert legacy == configured

    def test_explicit_kwargs_override_config(self):
        base = SOLVER_PRESETS["stable"]
        solver = CdclSolver(config=base, restart_base=64)
        assert solver.config == dataclasses.replace(base, restart_base=64)
        assert solver.restart_base == 64
        # Untouched fields come from the config, not the old defaults.
        assert solver.config.var_decay == base.var_decay

    def test_budget_kwargs_override_config_budgets(self):
        config = SolverConfig(max_conflicts=10, max_time=1.0)
        solver = CdclSolver(config=config, max_conflicts=99)
        assert solver.max_conflicts == 99
        assert solver.max_time == 1.0

    def test_config_budgets_apply_when_not_overridden(self):
        solver = CdclSolver(config=SolverConfig(max_conflicts=5))
        assert solver.max_conflicts == 5


class TestWireRoundTrips:
    @pytest.mark.parametrize("name", sorted(SOLVER_PRESETS))
    def test_preset_round_trips(self, name):
        from repro.engine.wire import (
            solver_config_from_wire,
            solver_config_to_wire,
        )

        config = SOLVER_PRESETS[name]
        payload = solver_config_to_wire(config)
        assert solver_config_from_wire(payload) == config
        if name == "default":
            assert payload is None  # the back-compat spelling

    @pytest.mark.parametrize("name", sorted(SOLVER_PRESETS))
    def test_request_options_round_trip(self, name):
        from repro.api.schema import RequestOptions

        options = RequestOptions(solver_config=SOLVER_PRESETS[name])
        again = RequestOptions.from_wire(options.to_wire())
        assert again == options

    def test_explicit_default_normalizes_to_absent(self):
        from repro.api.schema import RequestOptions

        explicit = RequestOptions(solver_config=SolverConfig())
        absent = RequestOptions()
        assert explicit == absent
        assert explicit.solver_config is None
        assert explicit.to_wire() == absent.to_wire()
        assert "solver_config" in explicit.to_wire()
        assert explicit.to_wire()["solver_config"] is None

    def test_malformed_block_rejected(self):
        from repro.api.schema import RequestOptions

        good = RequestOptions().to_wire()
        for bad in (
            {**good, "solver_config": {"bogus_field": 1}},
            {**good, "solver_config": {"var_decay": 7.0}},
            {**good, "solver_config": 42},
        ):
            with pytest.raises(ValidationError):
                RequestOptions.from_wire(bad)


class TestCacheKeys:
    def test_fingerprint_carries_solver_config(self):
        from repro.core.janus import JanusOptions
        from repro.engine.signature import options_fingerprint

        fp = options_fingerprint(JanusOptions())
        assert "solver" not in fp
        block = fp["solver_config"]
        for field in dataclasses.fields(SolverConfig):
            assert field.name in block

    def test_distinct_configs_get_distinct_keys(self):
        from repro.core.janus import JanusOptions, make_spec
        from repro.engine.signature import lm_cache_key

        spec = make_spec("ab + a'b'c")
        keys = {
            lm_cache_key(
                spec,
                3,
                2,
                JanusOptions(solver=SOLVER_PRESETS[name]),
            )
            for name in sorted(SOLVER_PRESETS)
        }
        assert len(keys) == len(SOLVER_PRESETS)
        # ...and the default-config key is the pre-SolverConfig key shape:
        # explicit default and plain options collide on purpose.
        assert lm_cache_key(spec, 3, 2, JanusOptions()) == lm_cache_key(
            spec, 3, 2, JanusOptions(solver=SolverConfig())
        )


class TestPresetProofs:
    """Every preset's non-default trajectory must stay DRAT-checkable."""

    @pytest.mark.parametrize("name", sorted(SOLVER_PRESETS))
    def test_unsat_trajectory_emits_valid_refutation(self, name):
        clauses = php_clauses(3)
        solver = CdclSolver(config=SOLVER_PRESETS[name], proof=True)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.is_unsat
        check = check_refutation(clauses, solver.proof)
        assert check.valid, check.reason

    @pytest.mark.parametrize("name", sorted(set(SOLVER_PRESETS) - {"default"}))
    def test_presets_change_the_trajectory_yet_agree(self, name):
        # Sanity that the knobs are actually plumbed in: a tuned preset
        # must diverge from the default trajectory on a hard instance
        # while reaching the same verdict.
        clauses = php_clauses(5)
        default_result, default_solver = run_solver(
            clauses, config=SolverConfig()
        )
        tuned_result, tuned_solver = run_solver(
            clauses, config=SOLVER_PRESETS[name]
        )
        assert default_result.is_unsat and tuned_result.is_unsat
        assert dataclasses.asdict(default_solver.stats) != dataclasses.asdict(
            tuned_solver.stats
        )


class TestSolveCnfPlumbing:
    def test_solve_cnf_forwards_config(self):
        from repro.sat.cnf import Cnf, VarPool

        pool = VarPool()
        a, b = pool.fresh(), pool.fresh()
        cnf = Cnf(pool)
        cnf.add([a, b])
        cnf.add([-a])
        budgeted = solve_cnf(cnf, config=SolverConfig(max_conflicts=1))
        assert budgeted.status == "sat"
        assert budgeted.value(b)


class TestPortfolioPresetRace:
    def test_preset_race_tallies_wins(self):
        from repro.api import Session
        from repro.engine.parallel import DEFAULT_PORTFOLIO_PRESETS

        assert len(DEFAULT_PORTFOLIO_PRESETS) >= 3
        with Session(jobs=2, portfolio=True) as session:
            response = session.synthesize(
                "cd + c'd' + abe + a'b'e'", backend="portfolio"
            )
        assert response.assignment is not None
        wins = response.stats["preset_wins"]
        assert wins, "the race decided probes but tallied no preset wins"
        valid = {
            f"eager:{name}" for name in DEFAULT_PORTFOLIO_PRESETS
        } | {"lazy:default"}
        assert set(wins) <= valid
        assert all(count > 0 for count in wins.values())

    def test_custom_preset_list_names_the_cache_namespace(self):
        from repro.engine.parallel import ParallelEngine

        engine = ParallelEngine(jobs=2, portfolio=True, presets=("agile", "heavy"))
        try:
            assert engine._mode == "portfolio[agile,heavy]"
        finally:
            engine.close()

    def test_unknown_preset_rejected_at_engine_construction(self):
        from repro.engine.parallel import ParallelEngine

        with pytest.raises(SolverError):
            ParallelEngine(jobs=2, portfolio=True, presets=("bogus",))
