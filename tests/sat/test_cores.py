"""Tests for unsat-core extraction under assumptions."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.sat import CdclSolver


def brute_force_sat(clauses: list[list[int]], num_vars: int) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        def true(lit: int) -> bool:
            val = bits[abs(lit) - 1]
            return val if lit > 0 else not val

        if all(any(true(l) for l in c) for c in clauses):
            return True
    return False


class TestCoreBasics:
    def test_no_core_on_sat(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        result = solver.solve([1])
        assert result.is_sat
        assert result.core is None

    def test_directly_conflicting_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])  # keep the solver non-trivial
        result = solver.solve([3, -3])
        assert result.is_unsat
        assert result.core is not None
        assert set(result.core) == {3, -3}

    def test_core_through_propagation(self):
        solver = CdclSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve([1, -3])
        assert result.is_unsat
        assert set(result.core) == {1, -3}

    def test_core_excludes_irrelevant_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([-1, -2])
        # Assumption 5 is unrelated to the conflict between 1 and 2.
        result = solver.solve([5, 1, 2])
        assert result.is_unsat
        assert 5 not in set(result.core)
        assert {1, 2} <= set(result.core)

    def test_globally_unsat_has_empty_core(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        result = solver.solve([2])
        assert result.is_unsat
        assert result.core == []

    def test_incremental_reuse_after_core(self):
        solver = CdclSolver()
        solver.add_clause([-1, -2])
        assert solver.solve([1, 2]).is_unsat
        # The solver must remain usable without the failing assumptions.
        assert solver.solve([1]).is_sat
        assert solver.solve([2]).is_sat


class TestCoreIsUnsatSubset:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_core_plus_formula_is_unsat(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        num_vars = 6
        clauses = []
        for _ in range(14):
            variables = rng.choice(num_vars, size=3, replace=False)
            clauses.append(
                [int(v + 1) * (1 if rng.random() < 0.5 else -1) for v in variables]
            )
        assumptions = [
            int(v + 1) * (1 if rng.random() < 0.5 else -1)
            for v in rng.choice(num_vars, size=4, replace=False)
        ]
        solver = CdclSolver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve(assumptions)
        if not result.is_unsat:
            return
        core = result.core
        assert core is not None
        assert set(core) <= set(assumptions)
        # Adding the core literals as units must make the formula UNSAT.
        assert not brute_force_sat(
            clauses + [[lit] for lit in core], num_vars
        )
