"""Tests for DRUP proof logging and checking."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.sat import CdclSolver, check_refutation, check_rup, read_drat, write_drat


def php_clauses(holes: int) -> list[list[int]]:
    """Pigeonhole principle: holes+1 pigeons into `holes` holes — UNSAT."""
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def random_clauses(
    num_vars: int, num_clauses: int, width: int, seed: int
) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.choice(num_vars, size=min(width, num_vars), replace=False)
        clauses.append(
            [int(v + 1) * (1 if rng.random() < 0.5 else -1) for v in variables]
        )
    return clauses


class TestRupCheck:
    def test_unit_consequence_is_rup(self):
        clauses = [[1, 2], [-2]]
        assert check_rup(clauses, [1])

    def test_non_consequence_is_not_rup(self):
        clauses = [[1, 2]]
        assert not check_rup(clauses, [1])

    def test_empty_clause_rup_iff_conflict(self):
        assert check_rup([[1], [-1]], [])
        assert not check_rup([[1, 2]], [])

    def test_tautological_lemma_is_rup(self):
        assert check_rup([[1, 2]], [3, -3])


class TestSolverProofs:
    def test_php_refutation_checks(self):
        clauses = php_clauses(3)
        solver = CdclSolver(proof=True)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.is_unsat
        check = check_refutation(clauses, solver.proof)
        assert check.valid, check.reason

    def test_proof_not_logged_by_default(self):
        solver = CdclSolver()
        solver.add_clause([1])
        assert solver.proof is None

    def test_immediate_contradiction(self):
        solver = CdclSolver(proof=True)
        solver.add_clause([1])
        ok = solver.add_clause([-1])
        assert not ok
        check = check_refutation([[1], [-1]], solver.proof)
        assert check.valid, check.reason

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_unsat_formulas_yield_valid_proofs(self, seed):
        # Dense random 3-SAT at 8 vars / 60 clauses is almost surely UNSAT;
        # skip the occasional SAT instance.
        clauses = random_clauses(num_vars=8, num_clauses=60, width=3, seed=seed)
        solver = CdclSolver(proof=True)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        if not result.is_unsat:
            return
        check = check_refutation(clauses, solver.proof)
        assert check.valid, check.reason

    def test_corrupted_proof_rejected(self):
        clauses = php_clauses(2)
        solver = CdclSolver(proof=True)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().is_unsat
        proof = list(solver.proof)
        # Corrupt the first addition into a unit over a fresh variable —
        # never a consequence of the formula.
        for i, (kind, lits) in enumerate(proof):
            if kind == "a" and lits:
                proof[i] = ("a", (99,))
                break
        check = check_refutation(clauses, proof)
        assert not check.valid

    def test_truncated_proof_rejected(self):
        clauses = php_clauses(2)
        solver = CdclSolver(proof=True)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().is_unsat
        proof = [step for step in solver.proof if step[1]]  # drop empty clause
        check = check_refutation(clauses, proof)
        assert not check.valid
        assert "empty clause" in check.reason

    def test_deleting_missing_clause_rejected(self):
        check = check_refutation([[1], [-1]], [("d", (5, 6)), ("a", ())])
        assert not check.valid
        assert "not present" in check.reason


class TestDratIo:
    def test_roundtrip(self):
        proof = [("a", (1, -2)), ("d", (3,)), ("a", ())]
        buf = io.StringIO()
        write_drat(proof, buf)
        buf.seek(0)
        assert read_drat(buf) == proof

    def test_text_format(self):
        buf = io.StringIO()
        write_drat([("a", (1, -2)), ("d", (3,)), ("a", ())], buf)
        assert buf.getvalue() == "1 -2 0\nd 3 0\n0\n"

    def test_read_skips_comments_and_blanks(self):
        buf = io.StringIO("c comment\n\n1 0\n")
        assert read_drat(buf) == [("a", (1,))]

    def test_read_rejects_missing_terminator(self):
        with pytest.raises(SolverError):
            read_drat(io.StringIO("1 2\n"))

    def test_solver_proof_roundtrips_through_text(self):
        clauses = php_clauses(2)
        solver = CdclSolver(proof=True)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().is_unsat
        buf = io.StringIO()
        write_drat(solver.proof, buf)
        buf.seek(0)
        assert check_refutation(clauses, read_drat(buf)).valid
