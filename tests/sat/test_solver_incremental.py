"""Incremental-solving regression tests.

The CEGAR LM solver leans on the solve / add_clause / solve pattern, so
its contract gets its own test file: clause additions after a solve must
be honoured, models must stay consistent, learnt clauses must never
change satisfiability, and assumption-based queries must not pollute
later unconditional ones.
"""

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sat import CdclSolver


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        def true(lit):
            val = bits[abs(lit) - 1]
            return val if lit > 0 else not val

        if all(any(true(l) for l in c) for c in clauses):
            return True
    return False


class TestIncrementalBasics:
    def test_tightening_to_unsat(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve().is_sat
        solver.add_clause([-1])
        assert solver.solve().is_sat
        solver.add_clause([-2])
        assert solver.solve().is_unsat
        # Once UNSAT, always UNSAT.
        assert solver.solve().is_unsat

    def test_models_respect_late_clauses(self):
        solver = CdclSolver()
        solver.add_clause([1, 2, 3])
        first = solver.solve()
        assert first.is_sat
        # Ban the returned model, ask again; repeat until UNSAT.  Counts
        # exactly the 7 models of (1|2|3).
        count = 0
        while True:
            result = solver.solve()
            if not result.is_sat:
                break
            count += 1
            assert count <= 7, "more models than the formula has"
            banned = [
                -(v + 1) if result.model[v] else (v + 1) for v in range(3)
            ]
            solver.add_clause(banned)
        assert count == 7

    def test_assumptions_do_not_leak(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]).is_sat
        assert solver.solve([-2]).is_sat
        assert solver.solve([-1, -2]).is_unsat
        # No assumptions: still satisfiable.
        assert solver.solve().is_sat

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=40, deadline=None)
    def test_incremental_matches_monolithic(self, seed):
        rng = np.random.default_rng(seed)
        num_vars = 6
        clauses = []
        for _ in range(16):
            width = int(rng.integers(1, 4))
            variables = rng.choice(num_vars, size=width, replace=False)
            clauses.append(
                [int(v + 1) * (1 if rng.random() < 0.5 else -1) for v in variables]
            )
        # Incremental: solve after every third clause.
        solver = CdclSolver()
        ok = True
        for i, clause in enumerate(clauses):
            ok = solver.add_clause(clause) and ok
            if i % 3 == 2 and ok:
                solver.solve()
        final = (
            solver.solve().is_sat if ok and solver.ok else False
        )
        assert final == brute_force_sat(clauses, num_vars)
