"""Tests for the CDCL solver, including brute-force cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.sat import CdclSolver, Cnf, solve_cnf
from repro.sat.solver import _luby


def brute_force_sat(clauses: list[list[int]], num_vars: int):
    """Reference decision by exhaustive enumeration."""
    for assignment in range(1 << num_vars):
        if all(
            any(
                (lit > 0) == bool(assignment >> (abs(lit) - 1) & 1)
                for lit in clause
            )
            for clause in clauses
        ):
            return True
    return False


def check_model(clauses, model):
    return all(
        any((lit > 0) == model[abs(lit) - 1] for lit in clause)
        for clause in clauses
    )


def solve_clauses(clauses, num_vars):
    solver = CdclSolver(num_vars=num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            return "unsat", None
    result = solver.solve()
    return result.status, result.model


clause_lists = st.lists(
    st.lists(
        st.integers(min_value=-6, max_value=6).filter(lambda x: x != 0),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=25,
)


class TestAgainstBruteForce:
    @settings(max_examples=200, deadline=None)
    @given(clause_lists)
    def test_status_and_model(self, clauses):
        want = brute_force_sat(clauses, 6)
        status, model = solve_clauses(clauses, 6)
        assert (status == "sat") == want
        if status == "sat":
            assert check_model(clauses, model)

    def test_many_seeded_random_3sat(self):
        for trial in range(150):
            rng = np.random.default_rng(trial)
            clauses = []
            for _ in range(26):
                k = int(rng.integers(1, 4))
                vs = rng.choice(7, size=k, replace=False) + 1
                signs = rng.integers(0, 2, size=k) * 2 - 1
                clauses.append([int(v * s) for v, s in zip(vs, signs)])
            want = brute_force_sat(clauses, 7)
            status, model = solve_clauses(clauses, 7)
            assert (status == "sat") == want, f"trial {trial}"
            if status == "sat":
                assert check_model(clauses, model), f"trial {trial}"


class TestStructuredInstances:
    def test_pigeonhole_unsat(self):
        # PHP(n+1, n): n+1 pigeons into n holes — classically hard UNSAT.
        n = 5
        cnf = Cnf()
        p = [[cnf.pool.var((i, j)) for j in range(n)] for i in range(n + 1)]
        for i in range(n + 1):
            cnf.add(p[i])
        for j in range(n):
            for i in range(n + 1):
                for k in range(i + 1, n + 1):
                    cnf.add([-p[i][j], -p[k][j]])
        assert solve_cnf(cnf).status == "unsat"

    def test_graph_coloring_sat(self):
        cnf = Cnf()
        num, colors = 20, 3
        var = [[cnf.pool.var((i, c)) for c in range(colors)] for i in range(num)]
        rng = np.random.default_rng(3)
        edges = {(i, (i + 1) % num) for i in range(num)}  # a cycle: 3-colorable
        for i in range(num):
            cnf.add(var[i])
        for a, b in edges:
            for c in range(colors):
                cnf.add([-var[a][c], -var[b][c]])
        result = solve_cnf(cnf)
        assert result.is_sat

    def test_empty_formula_sat(self):
        assert CdclSolver(num_vars=3).solve().status == "sat"

    def test_single_unit(self):
        s = CdclSolver()
        assert s.add_clause([2])
        r = s.solve()
        assert r.is_sat and r.value(2)

    def test_contradictory_units(self):
        s = CdclSolver()
        s.add_clause([1])
        assert not s.add_clause([-1])

    def test_tautological_clause_ignored(self):
        s = CdclSolver()
        assert s.add_clause([1, -1])
        assert s.solve().is_sat

    def test_duplicate_literals_deduped(self):
        s = CdclSolver()
        assert s.add_clause([1, 1, 1])
        r = s.solve()
        assert r.is_sat and r.value(1)

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            CdclSolver().add_clause([0])


class TestBudgets:
    def _php(self, n):
        cnf = Cnf()
        p = [[cnf.pool.var((i, j)) for j in range(n)] for i in range(n + 1)]
        for i in range(n + 1):
            cnf.add(p[i])
        for j in range(n):
            for i in range(n + 1):
                for k in range(i + 1, n + 1):
                    cnf.add([-p[i][j], -p[k][j]])
        return cnf

    def test_conflict_budget_unknown(self):
        result = solve_cnf(self._php(6), max_conflicts=20)
        assert result.status == "unknown"

    def test_time_budget_unknown(self):
        result = solve_cnf(self._php(8), max_time=0.01)
        assert result.status in ("unknown", "unsat")

    def test_stats_populated(self):
        result = solve_cnf(self._php(4))
        assert result.status == "unsat"
        assert result.stats.conflicts > 0
        assert result.stats.propagations > 0
        assert result.wall_time >= 0


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = CdclSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, b])
        r = s.solve(assumptions=[a])
        assert r.is_sat and r.value(a) and r.value(b)

    def test_conflicting_assumptions(self):
        s = CdclSolver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve(assumptions=[-a]).status == "unsat"

    def test_incremental_reuse(self):
        s = CdclSolver()
        a, b, c = (s.new_var() for _ in range(3))
        s.add_clause([-a, b])
        s.add_clause([-b, c])
        assert s.solve(assumptions=[a, -c]).status == "unsat"
        assert s.solve(assumptions=[a]).status == "sat"
        assert s.solve(assumptions=[-c]).status == "sat"

    def test_value_without_model_raises(self):
        s = CdclSolver()
        s.add_clause([1])
        s.add_clause([-1])
        with pytest.raises(SolverError):
            s.solve().value(1)


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_monotone_peaks(self):
        peaks = [_luby((1 << k) - 1) for k in range(1, 8)]
        assert peaks == [1 << (k - 1) for k in range(1, 8)]


class TestSolveRequest:
    """Picklable solve requests (the parallel engine's IPC unit)."""

    def _cnf(self, clauses, num_vars):
        from repro.sat import VarPool

        pool = VarPool()
        for _ in range(num_vars):
            pool.fresh()
        cnf = Cnf(pool)
        for clause in clauses:
            cnf.add(clause)
        return cnf

    def test_pickle_roundtrip_and_solve(self):
        import pickle

        from repro.sat import SolveRequest, solve_request

        cnf = self._cnf([[1, 2], [-1, 2]], 2)
        request = SolveRequest.from_cnf(cnf, max_conflicts=1_000)
        revived = pickle.loads(pickle.dumps(request))
        result = solve_request(revived)
        assert result.is_sat
        assert result.value(2) is True

    def test_matches_solve_cnf(self):
        from repro.sat import SolveRequest

        cnf = self._cnf([[1, 2], [-1], [-2]], 2)
        assert SolveRequest.from_cnf(cnf).run().status == solve_cnf(cnf).status

    def test_trivially_unsat_during_load(self):
        from repro.sat import SolveRequest

        request = SolveRequest(clauses=((1,), (-1,)), num_vars=1)
        assert request.run().is_unsat

    def test_assumptions_carried(self):
        from repro.sat import SolveRequest

        cnf = self._cnf([[1, 2]], 2)
        request = SolveRequest.from_cnf(cnf, assumptions=[-1, -2])
        assert request.run().is_unsat
