"""Tests for the SatELite-style preprocessor.

The headline property: for random CNFs, preprocessing preserves
satisfiability, and extend_model turns any model of the reduced formula
into a model of the original — both checked against brute force.
"""

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sat import CdclSolver, Cnf, VarPool, preprocess


def make_cnf(clauses: list[list[int]], num_vars: int) -> Cnf:
    pool = VarPool()
    for _ in range(num_vars):
        pool.fresh()
    cnf = Cnf(pool)
    for clause in clauses:
        cnf.add(clause)
    return cnf


def brute_force_models(clauses, num_vars):
    models = []
    for bits in itertools.product([False, True], repeat=num_vars):
        def true(lit):
            val = bits[abs(lit) - 1]
            return val if lit > 0 else not val

        if all(any(true(l) for l in c) for c in clauses):
            models.append(list(bits))
    return models


def check_model(clauses, model):
    def true(lit):
        val = model[abs(lit) - 1]
        return val if lit > 0 else not val

    return all(any(true(l) for l in c) for c in clauses)


def random_clauses(num_vars, num_clauses, seed):
    rng = np.random.default_rng(seed)
    clauses = []
    for _ in range(num_clauses):
        width = int(rng.integers(1, 4))
        variables = rng.choice(num_vars, size=min(width, num_vars), replace=False)
        clauses.append(
            [int(v + 1) * (1 if rng.random() < 0.5 else -1) for v in variables]
        )
    return clauses


class TestSubsumption:
    def test_subsumed_clause_removed(self):
        # Every variable occurs in both polarities so pure-literal
        # elimination cannot swallow the instance first.
        cnf = make_cnf([[1, 2], [1, 2, 3], [-1, -2], [-2, -3]], 3)
        result = preprocess(cnf)
        assert result.stats.subsumed >= 1

    def test_self_subsumption_strengthens(self):
        # (1 2) self-subsumes (-1 2 3) into (2 3); extra clauses keep all
        # polarities impure.
        cnf = make_cnf([[1, 2], [-1, 2, 3], [-2, -3], [1, -2, -3]], 3)
        result = preprocess(cnf)
        assert result.stats.strengthened >= 1
        assert not result.is_unsat

    def test_duplicate_clauses_collapse(self):
        cnf = make_cnf([[1, 2], [2, 1], [1, 2]], 2)
        result = preprocess(cnf)
        assert result.cnf is not None
        assert result.cnf.num_clauses <= 1 or result.stats.eliminated_vars


class TestBve:
    def test_low_occurrence_variable_eliminated(self):
        # Each variable occurs in both polarities (no pure literals); the
        # 2-occurrence variables are always growth-free to eliminate.
        cnf = make_cnf([[1, 2], [-2, 3], [-1, -3, 2]], 3)
        result = preprocess(cnf)
        assert result.stats.eliminated_vars >= 1

    def test_unsat_detected_through_resolution(self):
        cnf = make_cnf([[1], [-1]], 1)
        result = preprocess(cnf)
        assert result.is_unsat

    def test_elimination_records_reconstruction(self):
        cnf = make_cnf([[1, 2], [-2, 3], [3, 1]], 3)
        result = preprocess(cnf)
        for var, saved in result.eliminated:
            assert all(var in c or -var in c for c in saved)


class TestEquisatisfiability:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=80, deadline=None)
    def test_preprocess_preserves_satisfiability(self, seed):
        num_vars = 6
        clauses = random_clauses(num_vars, 12, seed)
        original_sat = bool(brute_force_models(clauses, num_vars))
        result = preprocess(make_cnf(clauses, num_vars))
        if result.is_unsat:
            assert not original_sat
            return
        assert result.cnf is not None
        solver = CdclSolver()
        ok = True
        for clause in result.cnf:
            ok = solver.add_clause(clause) and ok
        reduced_sat = ok and solver.solve().is_sat
        assert reduced_sat == original_sat

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=80, deadline=None)
    def test_extend_model_yields_model_of_original(self, seed):
        num_vars = 6
        clauses = random_clauses(num_vars, 10, seed)
        result = preprocess(make_cnf(clauses, num_vars))
        if result.is_unsat:
            return
        assert result.cnf is not None
        solver = CdclSolver(num_vars=num_vars)
        ok = True
        for clause in result.cnf:
            ok = solver.add_clause(clause) and ok
        if not ok:
            return
        solve = solver.solve()
        if not solve.is_sat:
            return
        model = result.extend_model(solve.model, num_vars)
        assert check_model(clauses, model)

    def test_extend_model_with_empty_reduction(self):
        # Fully solvable by units: reduced formula is empty.
        clauses = [[1], [-1, 2], [-2, 3]]
        result = preprocess(make_cnf(clauses, 3))
        assert not result.is_unsat
        assert result.cnf is not None
        model = result.extend_model([], 3)
        assert check_model(clauses, model)


class TestStats:
    def test_rounds_bounded(self):
        clauses = random_clauses(8, 20, seed=7)
        result = preprocess(make_cnf(clauses, 8), max_rounds=2)
        assert result.stats.rounds <= 2
