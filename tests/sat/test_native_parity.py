"""Byte-identity between the pure and native propagation cores.

The native kernel is only allowed to make the solver *faster*, never
*different*: for any workload, preset, and budget, both cores must
produce the same decisions, the same learnt clauses, the same
statistics, the same models, the same UNSAT assumption cores, and the
same DRUP proof — byte for byte.  These tests pin that contract, plus
the selection seam around it (``JANUS_NATIVE``, missing-extension
fallback, pickle round-trips of :class:`SolveRequest`).

When the extension is not built, the parity matrix skips (there is
nothing to compare against) but the fallback tests still run — a
pure-only checkout must pass this file.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import asdict

import pytest

from repro.errors import SolverError
from repro.sat import _native, check_refutation
from repro.sat.solver import (
    SOLVER_PRESETS,
    CdclSolver,
    PurePythonCore,
    SolveRequest,
    available_cores,
    resolve_core_class,
    solve_request,
)

NATIVE = "native" in available_cores()
needs_native = pytest.mark.skipif(
    not NATIVE, reason="native kernel not built (run `make native`)"
)


# ------------------------------------------------------------- workloads
def rand3sat(num_vars: int, num_clauses: int, seed: int) -> list[list[int]]:
    rng = random.Random(seed)
    return [
        [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 3)
        ]
        for _ in range(num_clauses)
    ]


def pigeonhole(holes: int) -> list[list[int]]:
    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(holes + 1)]
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def trajectory(core, clauses, preset="default", assumptions=(), **kwargs):
    """Everything observable about one solve, as plain data."""
    solver = CdclSolver(
        config=SOLVER_PRESETS[preset], core=core, proof=True, **kwargs
    )
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    result = (
        solver.solve(assumptions=list(assumptions))
        if ok
        else None
    )
    return {
        "added_ok": ok,
        "status": result.status if result else "unsat",
        "model": result.model if result else None,
        "unsat_core": result.core if result else None,
        "stats": {
            k: v
            for k, v in asdict(solver.stats).items()
            if k != "core"  # the one field allowed to differ
        },
        "proof": list(solver.proof),
    }


CASES = [
    pytest.param(rand3sat(40, 168, seed), (), id=f"r3-{seed}")
    for seed in range(6)
] + [
    pytest.param(pigeonhole(4), (), id="php4"),
    pytest.param(rand3sat(40, 160, 99), (1, -2, 3, -4, 5), id="assumptions"),
]


# ------------------------------------------------------- the parity matrix
@needs_native
@pytest.mark.parametrize("preset", sorted(SOLVER_PRESETS))
@pytest.mark.parametrize("clauses,assumptions", CASES)
def test_trajectory_identity(preset, clauses, assumptions):
    pure = trajectory("pure", clauses, preset, assumptions)
    native = trajectory("native", clauses, preset, assumptions)
    assert pure == native


@needs_native
def test_analyze_at_levels_beyond_var_count():
    """Satisfied/duplicate assumptions open *empty* decision levels, so
    a conflict can be analyzed at a level far beyond the variable
    count.  Regression: the native kernel sized its per-level LBD stamp
    array by variable capacity and wrote out of bounds here; it must be
    sized by decision level."""
    clauses = [[-1, 2], [-3, 4], [-3, -4]]
    # 1 decides level 1 and implies 2; every repeated "2" is already
    # satisfied and opens an empty level; 3 then conflicts at a level
    # ~500 with only 4 variables allocated.
    assumptions = [1] + [2] * 500 + [3]
    pure = trajectory("pure", clauses, assumptions=assumptions)
    native = trajectory("native", clauses, assumptions=assumptions)
    assert pure == native
    assert native["status"] == "unsat"
    assert 3 in (native["unsat_core"] or [])


@needs_native
def test_stats_report_which_core_served():
    clauses = rand3sat(20, 84, 0)
    assert trajectory is not None  # keep imports honest
    for core in ("pure", "native"):
        solver = CdclSolver(core=core)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.stats.core == core


@needs_native
@pytest.mark.parametrize("seed", range(4))
def test_unsat_proofs_match_and_check(seed):
    clauses = rand3sat(30, 180, 1000 + seed)  # dense: usually unsat
    pure = trajectory("pure", clauses)
    native = trajectory("native", clauses)
    assert pure == native
    if pure["status"] == "unsat" and pure["added_ok"]:
        check = check_refutation(clauses, pure["proof"])
        assert check.valid
        assert check_refutation(clauses, native["proof"]).valid


@needs_native
def test_budget_cutoffs_agree():
    clauses = pigeonhole(7)  # hard enough to hit a small budget
    pure = trajectory("pure", clauses, max_conflicts=200)
    native = trajectory("native", clauses, max_conflicts=200)
    assert pure["status"] == "unknown"
    assert pure == native


@needs_native
def test_incremental_reuse_stays_identical():
    clauses = rand3sat(30, 120, 7)
    solvers = {
        core: CdclSolver(core=core, config=SOLVER_PRESETS["stable"])
        for core in ("pure", "native")
    }
    for solver in solvers.values():
        for clause in clauses:
            solver.add_clause(clause)
    for assumptions in ([1, 2], [-1, -2, -3], [], [5, -6]):
        results = {
            core: solver.solve(assumptions=assumptions)
            for core, solver in solvers.items()
        }
        assert results["pure"].status == results["native"].status
        assert results["pure"].model == results["native"].model
        assert results["pure"].core == results["native"].core
        pure_stats = asdict(results["pure"].stats)
        native_stats = asdict(results["native"].stats)
        pure_stats.pop("core"), native_stats.pop("core")
        assert pure_stats == native_stats


# ------------------------------------------------------ the selection seam
def test_env_zero_forces_pure(monkeypatch):
    monkeypatch.setenv("JANUS_NATIVE", "0")
    assert resolve_core_class() is PurePythonCore
    assert CdclSolver().core_name == "pure"


@needs_native
def test_env_one_requires_native(monkeypatch):
    monkeypatch.setenv("JANUS_NATIVE", "1")
    assert CdclSolver().core_name == "native"


def test_env_one_without_extension_raises(monkeypatch):
    monkeypatch.setenv("JANUS_NATIVE", "1")
    monkeypatch.setattr(_native, "NativeCore", None)
    with pytest.raises(SolverError, match="make native"):
        resolve_core_class()


def test_missing_extension_falls_back_to_pure(monkeypatch):
    monkeypatch.delenv("JANUS_NATIVE", raising=False)
    monkeypatch.setattr(_native, "NativeCore", None)
    assert resolve_core_class() is PurePythonCore
    clauses = rand3sat(15, 40, 3)
    solver = CdclSolver()
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    assert result.stats.core == "pure"


def test_unknown_core_name_rejected():
    with pytest.raises(SolverError, match="unknown propagation core"):
        CdclSolver(core="cython")


# -------------------------------------------------- pickle seam round-trip
@pytest.mark.parametrize("env", ["0", ""])
def test_solve_request_pickle_round_trip(monkeypatch, env):
    """The request never pins a core; each process resolves its own —
    parity makes the answer identical either way."""
    if env:
        monkeypatch.setenv("JANUS_NATIVE", env)
    else:
        monkeypatch.delenv("JANUS_NATIVE", raising=False)
    clauses = tuple(tuple(c) for c in rand3sat(25, 100, 11))
    request = SolveRequest(clauses=clauses, num_vars=25, assumptions=(1, -2))
    thawed = pickle.loads(pickle.dumps(request))
    assert thawed == request
    first = solve_request(request)
    second = solve_request(thawed)
    assert first.status == second.status
    assert first.model == second.model
    expected = "pure" if env == "0" or not NATIVE else "native"
    assert first.stats.core == expected == second.stats.core
