"""Tests for CNF preprocessing."""

from hypothesis import given, settings, strategies as st

from repro.sat import Cnf, simplify, solve_cnf
from repro.sat.cnf import VarPool


def make_cnf(clauses, num_vars):
    pool = VarPool()
    for _ in range(num_vars):
        pool.fresh()
    cnf = Cnf(pool)
    for clause in clauses:
        cnf.add(clause)
    return cnf


class TestUnits:
    def test_unit_propagation(self):
        cnf = make_cnf([[1], [-1, 2], [-2, 3]], 3)
        result = simplify(cnf)
        assert not result.is_unsat
        assert result.forced == {1: True, 2: True, 3: True}
        assert result.cnf.num_clauses == 0

    def test_unsat_detected(self):
        cnf = make_cnf([[1], [-1]], 1)
        assert simplify(cnf).is_unsat

    def test_tautologies_removed(self):
        cnf = make_cnf([[1, -1], [2, 3]], 3)
        result = simplify(cnf, pure_literals=False)
        assert result.cnf.num_clauses == 1

    def test_pure_literal_elimination(self):
        cnf = make_cnf([[1, 2], [1, 3]], 3)
        result = simplify(cnf)
        assert result.forced.get(1) is True
        assert result.cnf.num_clauses == 0

    def test_extend_model(self):
        cnf = make_cnf([[1], [2, 3]], 3)
        result = simplify(cnf, pure_literals=False)
        model = result.extend_model([False, True, False])
        assert model[0] is True  # forced by the unit


clause_lists = st.lists(
    st.lists(
        st.integers(min_value=-5, max_value=5).filter(lambda x: x != 0),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=15,
)


@settings(max_examples=100, deadline=None)
@given(clause_lists)
def test_simplification_preserves_satisfiability(clauses):
    cnf = make_cnf(clauses, 5)
    original = solve_cnf(make_cnf(clauses, 5)).status
    result = simplify(cnf)
    if result.is_unsat:
        assert original == "unsat"
        return
    simplified_status = solve_cnf(result.cnf).status
    assert simplified_status == original


@settings(max_examples=60, deadline=None)
@given(clause_lists)
def test_extended_model_satisfies_original(clauses):
    cnf = make_cnf(clauses, 5)
    result = simplify(cnf)
    if result.is_unsat:
        return
    sub = solve_cnf(result.cnf)
    if not sub.is_sat:
        return
    model = result.extend_model(sub.model)
    while len(model) < 5:
        model.append(False)
    assert all(
        any((lit > 0) == model[abs(lit) - 1] for lit in clause)
        for clause in clauses
    )
