"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_args(self):
        args = build_parser().parse_args(["synth", "ab", "--max-conflicts", "5"])
        assert args.expression == "ab"
        assert args.max_conflicts == 5

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--pool", "3", "--jobs", "2"]
        )
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.pool == 3
        assert args.jobs == 2
        assert args.cache is None


class TestCommands:
    def test_synth_expression(self, capsys):
        assert main(["synth", "ab + a'b'", "--max-conflicts", "20000"]) == 0
        out = capsys.readouterr().out
        assert "solution" in out
        assert "switches" in out

    def test_synth_requires_input(self, capsys):
        assert main(["synth"]) == 2

    def test_synth_pla(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n.ilb a b\n.ob f\n11 1\n00 1\n.e\n")
        assert main(["synth", "--pla", str(pla), "-o", "0"]) == 0
        out = capsys.readouterr().out
        assert "#pi=2" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--max", "4"]) == 0
        assert "match the paper" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "3x4" in out

    def test_table2_single_instance(self, capsys):
        assert main(["table2", "--names", "b12_03"]) == 0
        assert "b12_03" in capsys.readouterr().out


class TestRenderCommand:
    def test_ascii_output(self, capsys):
        assert main(["render", "ab + a'b'"]) == 0
        out = capsys.readouterr().out
        assert "top" in out and "bottom" in out

    def test_svg_output(self, tmp_path, capsys):
        svg = tmp_path / "lattice.svg"
        assert main(["render", "ab", "--svg", str(svg)]) == 0
        content = svg.read_text()
        assert content.startswith("<svg")
        assert "wrote" in capsys.readouterr().out

    def test_minterm_highlight_warning(self, capsys):
        assert main(["render", "ab", "--minterm", "0"]) == 0
        assert "not in the onset" in capsys.readouterr().out


class TestDecomposeCommand:
    def test_autosymmetric_function(self, capsys):
        assert main(["decompose", "ab' + a'b"]) == 0
        out = capsys.readouterr().out
        assert "autosymmetry degree k = 1" in out
        assert "a ^ b" in out

    def test_plain_function(self, capsys):
        assert main(["decompose", "ab + a'c + bc'"]) == 0
        out = capsys.readouterr().out
        assert "k = 0" in out
        assert "D-reducible: no" in out


class TestDratCheckCommand:
    def test_valid_refutation(self, tmp_path, capsys):
        from repro.sat import CdclSolver, write_drat

        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text("p cnf 1 2\n1 0\n-1 0\n")
        solver = CdclSolver(proof=True)
        solver.add_clause([1])
        solver.add_clause([-1])
        proof_path = tmp_path / "f.drat"
        with open(proof_path, "w") as fh:
            write_drat(solver.proof, fh)
        assert main(["drat-check", str(cnf_path), str(proof_path)]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_invalid_refutation(self, tmp_path, capsys):
        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text("p cnf 2 1\n1 2 0\n")
        proof_path = tmp_path / "f.drat"
        proof_path.write_text("0\n")
        assert main(["drat-check", str(cnf_path), str(proof_path)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestFaultsCommand:
    def test_reports_and_test_set(self, capsys):
        assert main(["faults", "ab + a'b'"]) == 0
        out = capsys.readouterr().out
        assert "testable" in out
        assert "minimal test set" in out


class TestCacheCommand:
    def _populate(self, tmp_path):
        from repro.engine import ResultCache

        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, {"status": "sat"})
        cache.put("cd" + "1" * 62, {"status": "unsat"})
        (cache.root / "ab" / ".tmp-dead.json").write_text("{}")
        return cache

    def test_stats(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["cache", "stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 2" in out
        assert "temp files: 1" in out

    def test_clear(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["cache", "clear", str(tmp_path)]) == 0
        assert "removed 2 entries" in capsys.readouterr().out

    def test_gc_sweeps_stale_temps(self, tmp_path, capsys):
        import os

        cache = self._populate(tmp_path)
        temp = cache.root / "ab" / ".tmp-dead.json"
        past = temp.stat().st_mtime - 7200
        os.utime(temp, (past, past))
        assert main(["cache", "gc", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "swept 1 temp files" in out
        assert not temp.exists()

    def test_gc_age_bound(self, tmp_path, capsys):
        import os

        cache = self._populate(tmp_path)
        entry = cache._path("ab" + "0" * 62)
        past = entry.stat().st_mtime - 100 * 86400
        os.utime(entry, (past, past))
        assert main(["cache", "gc", str(tmp_path), "--max-age-days", "30"]) == 0
        assert "1 by age" in capsys.readouterr().out

    def test_stats_on_missing_dir_reports_empty_cache(self, tmp_path, capsys):
        # A cache dir that was never created is just an empty cache:
        # stats must report zeros, exit 0, and NOT create the directory.
        missing = tmp_path / "nope"
        assert main(["cache", "stats", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 0" in out
        assert "not created yet" in out
        assert not missing.exists()

    def test_stats_on_file_is_an_error(self, tmp_path, capsys):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        assert main(["cache", "stats", str(not_a_dir)]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_gc_on_missing_dir_is_an_error(self, tmp_path, capsys):
        # Mutating actions on a nonexistent cache stay errors — only
        # the read-only stats degrades to "empty".
        missing = tmp_path / "nope"
        assert main(["cache", "gc", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestJsonOutput:
    def test_synth_json_emits_the_wire_schema(self, capsys):
        from repro.api import SynthesisResponse

        assert main(
            ["synth", "ab + a'b'", "--max-conflicts", "20000", "--json"]
        ) == 0
        out = capsys.readouterr().out.strip()
        response = SynthesisResponse.from_json(out)
        assert response.backend == "janus"
        assert response.size >= 1
        assert response.to_json() == out  # canonical form

    def test_synth_json_with_backend(self, capsys):
        from repro.api import SynthesisResponse

        assert main(
            [
                "synth", "ab + a'b'",
                "--max-conflicts", "20000",
                "--backend", "heuristic",
                "--json",
            ]
        ) == 0
        response = SynthesisResponse.from_json(capsys.readouterr().out)
        assert response.backend == "heuristic"

    def test_synth_unknown_backend_is_a_clean_error(self, capsys):
        assert main(["synth", "ab", "--backend", "warp"]) == 1
        assert "unknown backend" in capsys.readouterr().err

    def test_table2_json_emits_a_batch(self, capsys):
        from repro.api import BatchResponse

        assert main(["table2", "--names", "b12_03", "--json"]) == 0
        out = capsys.readouterr().out.strip()
        batch = BatchResponse.from_json(out)
        assert len(batch) == 1
        assert batch.responses[0].name == "b12_03"
        assert batch.responses[0].backend == "janus"
        assert batch.to_json() == out


class TestWarmSuiteCacheCommand:
    def test_table2_warm_run_reports_zero_work(self, tmp_path, capsys):
        argv = ["table2", "--names", "c17_01", "--cache", str(tmp_path)]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "engine    :" in cold_out
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert "solver_calls=0" in warm_out
        assert "bound_calls=0" in warm_out
        assert "suite hits/misses=2/0" in warm_out


class TestLintCommand:
    def test_lint_args(self):
        args = build_parser().parse_args(["lint", "--strict", "--json"])
        assert args.strict and args.json
        assert args.only is None

    def test_lint_repo_is_clean(self, capsys):
        # The committed tree must pass its own analyzer with an empty
        # baseline — the CI gate in miniature.
        assert main(["lint", "--strict"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_unknown_checker_is_usage_error(self, capsys):
        assert main(["lint", "--only", "nonsense"]) == 2


class TestGenCommand:
    def test_gen_args(self):
        args = build_parser().parse_args(
            ["gen", "--family", "random-tt", "--level", "2", "--seed", "9"]
        )
        assert args.family == "random-tt"
        assert args.level == 2
        assert args.seed == 9
        assert args.count == 1
        assert not args.twins

    def test_gen_list_catalogs_families(self, capsys):
        assert main(["gen", "--list"]) == 0
        out = capsys.readouterr().out
        for kind in ("random-tt", "pla-cover", "autosymmetric",
                     "d-reducible", "multi-output", "fault"):
            assert kind in out

    def test_gen_output_is_byte_reproducible(self, capsys):
        argv = ["gen", "--family", "mixed", "--level", "0",
                "--seed", "3", "--count", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["kind"] == "batch_request"

    def test_gen_unknown_family_is_a_clean_error(self, capsys):
        assert main(["gen", "--family", "nonsense"]) == 1
        assert "unknown family kind" in capsys.readouterr().err

    def test_gen_pipes_into_synth_request(self, tmp_path, capsys):
        doc = tmp_path / "batch.json"
        assert main(["gen", "--family", "random-tt", "--level", "0",
                     "--seed", "0", "--count", "2",
                     "--out", str(doc)]) == 0
        capsys.readouterr()
        assert main(["synth", "--request", str(doc),
                     "--max-conflicts", "20000"]) == 0
        out = capsys.readouterr().out
        assert "random-tt-L0:0" in out and "random-tt-L0:1" in out
        assert "switches" in out

    def test_gen_synth_request_json_is_a_batch_response(
        self, tmp_path, capsys
    ):
        doc = tmp_path / "batch.json"
        assert main(["gen", "--family", "pla-cover", "--level", "0",
                     "--seed", "1", "--out", str(doc)]) == 0
        capsys.readouterr()
        assert main(["synth", "--request", str(doc), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "batch_response"
        assert payload["responses"][0]["name"] == "pla-cover-L0:1"

    def test_dispatch_summary_line_appears_when_learning(
        self, tmp_path, capsys
    ):
        doc = tmp_path / "batch.json"
        table = tmp_path / "dispatch.json"
        assert main(["gen", "--family", "random-tt", "--level", "1",
                     "--seed", "1", "--backend", "portfolio",
                     "--out", str(doc)]) == 0
        capsys.readouterr()
        assert main(["synth", "--request", str(doc),
                     "--dispatch", str(table),
                     "--max-conflicts", "20000"]) == 0
        out = capsys.readouterr().out
        assert "dispatch  : learned hits/misses=" in out
        assert table.exists()  # the CLI session owns and persists it
