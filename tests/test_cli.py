"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_args(self):
        args = build_parser().parse_args(["synth", "ab", "--max-conflicts", "5"])
        assert args.expression == "ab"
        assert args.max_conflicts == 5


class TestCommands:
    def test_synth_expression(self, capsys):
        assert main(["synth", "ab + a'b'", "--max-conflicts", "20000"]) == 0
        out = capsys.readouterr().out
        assert "solution" in out
        assert "switches" in out

    def test_synth_requires_input(self, capsys):
        assert main(["synth"]) == 2

    def test_synth_pla(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n.ilb a b\n.ob f\n11 1\n00 1\n.e\n")
        assert main(["synth", "--pla", str(pla), "-o", "0"]) == 0
        out = capsys.readouterr().out
        assert "#pi=2" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--max", "4"]) == 0
        assert "match the paper" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "3x4" in out

    def test_table2_single_instance(self, capsys):
        assert main(["table2", "--names", "b12_03"]) == 0
        assert "b12_03" in capsys.readouterr().out


class TestRenderCommand:
    def test_ascii_output(self, capsys):
        assert main(["render", "ab + a'b'"]) == 0
        out = capsys.readouterr().out
        assert "top" in out and "bottom" in out

    def test_svg_output(self, tmp_path, capsys):
        svg = tmp_path / "lattice.svg"
        assert main(["render", "ab", "--svg", str(svg)]) == 0
        content = svg.read_text()
        assert content.startswith("<svg")
        assert "wrote" in capsys.readouterr().out

    def test_minterm_highlight_warning(self, capsys):
        assert main(["render", "ab", "--minterm", "0"]) == 0
        assert "not in the onset" in capsys.readouterr().out


class TestDecomposeCommand:
    def test_autosymmetric_function(self, capsys):
        assert main(["decompose", "ab' + a'b"]) == 0
        out = capsys.readouterr().out
        assert "autosymmetry degree k = 1" in out
        assert "a ^ b" in out

    def test_plain_function(self, capsys):
        assert main(["decompose", "ab + a'c + bc'"]) == 0
        out = capsys.readouterr().out
        assert "k = 0" in out
        assert "D-reducible: no" in out


class TestDratCheckCommand:
    def test_valid_refutation(self, tmp_path, capsys):
        from repro.sat import CdclSolver, write_drat

        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text("p cnf 1 2\n1 0\n-1 0\n")
        solver = CdclSolver(proof=True)
        solver.add_clause([1])
        solver.add_clause([-1])
        proof_path = tmp_path / "f.drat"
        with open(proof_path, "w") as fh:
            write_drat(solver.proof, fh)
        assert main(["drat-check", str(cnf_path), str(proof_path)]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_invalid_refutation(self, tmp_path, capsys):
        cnf_path = tmp_path / "f.cnf"
        cnf_path.write_text("p cnf 2 1\n1 2 0\n")
        proof_path = tmp_path / "f.drat"
        proof_path.write_text("0\n")
        assert main(["drat-check", str(cnf_path), str(proof_path)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestFaultsCommand:
    def test_reports_and_test_set(self, capsys):
        assert main(["faults", "ab + a'b'"]) == 0
        out = capsys.readouterr().out
        assert "testable" in out
        assert "minimal test set" in out
