"""Tests for the experiment runner."""

import pytest

from repro.bench import (
    compute_bounds_report,
    default_options,
    format_table2,
    profile_names,
    run_algorithm,
    run_table2,
    run_table2_instance,
)
from repro.bench.instances import build_instance


class TestProfiles:
    def test_fast_profile_small_instances(self):
        names = profile_names("fast")
        assert names
        from repro.bench import PAPER_TABLE2

        by_name = {r.name: r for r in PAPER_TABLE2}
        assert all(by_name[n].num_inputs <= 7 for n in names)

    def test_profiles_nested(self):
        fast = set(profile_names("fast"))
        medium = set(profile_names("medium"))
        full = set(profile_names("full"))
        assert fast <= medium <= full
        assert len(full) == 48

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            profile_names("turbo")

    def test_default_options_budgets_grow(self):
        assert (
            default_options("fast").max_conflicts
            < default_options("medium").max_conflicts
            < default_options("full").max_conflicts
        )


class TestRunner:
    def test_bounds_report(self):
        spec = build_instance("b12_03")
        report = compute_bounds_report(spec)
        assert report.lb <= report.new_ub <= report.old_ub
        assert "dp" in report.per_method

    def test_run_algorithm_janus(self, fast_options):
        spec = build_instance("b12_03")
        result = run_algorithm("janus", spec, fast_options)
        assert result.size >= 1
        assert result.algorithm == "janus"

    def test_run_instance_and_format(self, fast_options):
        row = run_table2_instance("b12_03", ("janus",), fast_options)
        assert "janus" in row.results
        text = format_table2([row])
        assert "b12_03" in text
        assert "nub(paper)" in text

    def test_run_table2_multiple(self, fast_options):
        rows = run_table2(["b12_03", "c17_01"], ("janus",), fast_options)
        assert len(rows) == 2
