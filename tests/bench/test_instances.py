"""Tests for benchmark instance construction."""

import pytest

from repro.bench.instances import stable_seed
from repro.bench import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    build_instance,
    build_multi_instance,
    clpl_output,
    instance_names,
    squar5_outputs,
    synth_signature,
)


class TestPaperData:
    def test_48_instances(self):
        assert len(PAPER_TABLE2) == 48

    def test_paper_averages(self):
        """Sanity-check the transcription against the paper's average row:
        #in 7.2, #pi 7.3, delta 4.0, lb 15.5, oub 41.1, nub 23.5."""
        n = len(PAPER_TABLE2)
        assert round(sum(r.num_inputs for r in PAPER_TABLE2) / n, 1) == 7.2
        assert round(sum(r.num_products for r in PAPER_TABLE2) / n, 1) == 7.3
        assert round(sum(r.degree for r in PAPER_TABLE2) / n, 1) == 4.0
        assert round(sum(r.lb for r in PAPER_TABLE2) / n, 1) == 15.5
        assert round(sum(r.oub for r in PAPER_TABLE2) / n, 1) == 41.1
        assert round(sum(r.nub for r in PAPER_TABLE2) / n, 1) == 23.5

    def test_janus_size_helper(self):
        row = next(r for r in PAPER_TABLE2 if r.name == "5xp1_1")
        assert row.janus_size == 24  # 4x6

    def test_table3_entries(self):
        assert set(PAPER_TABLE3) == {"bw", "misex1", "squar5"}
        assert PAPER_TABLE3["squar5"]["mf_size"] == 108

    def test_instance_names_order(self):
        names = instance_names()
        assert names[0] == "5xp1_1"
        assert len(names) == 48


class TestExactRebuilds:
    @pytest.mark.parametrize("name,k", [("clpl_00", 4), ("clpl_03", 6), ("clpl_04", 5)])
    def test_clpl_signature(self, name, k):
        row = next(r for r in PAPER_TABLE2 if r.name == name)
        sop = clpl_output(k)
        assert sop.num_vars == row.num_inputs
        assert sop.num_products == row.num_products
        assert sop.degree == row.degree

    def test_clpl_cover_is_minimal(self):
        spec = build_instance("clpl_03")
        assert spec.num_products == 6
        assert spec.degree == 6
        spec.validate()

    def test_squar5_outputs(self):
        outs = squar5_outputs()
        assert len(outs) == 8
        # output k is bit k+2 of x^2: check x=5 -> 25 = 0b11001
        for k, tt in enumerate(outs):
            assert tt.evaluate(5) == bool(25 >> (k + 2) & 1)
            assert tt.evaluate(31) == bool(961 >> (k + 2) & 1)


class TestSynthesized:
    @pytest.mark.parametrize("name", ["b12_03", "dc1_00", "misex1_00", "mp2d_06"])
    def test_signature_match(self, name):
        row = next(r for r in PAPER_TABLE2 if r.name == name)
        spec = build_instance(name)
        assert spec.num_inputs == row.num_inputs
        assert spec.num_products == row.num_products
        assert spec.degree == row.degree
        spec.validate()

    def test_deterministic(self):
        a = build_instance("dc1_02")
        b = build_instance("dc1_02")
        assert a is b  # cached
        fresh = synth_signature(4, 4, 3, name="dc1_02", base_seed=stable_seed("dc1_02"))
        assert fresh.tt == a.tt

    def test_unknown_instance_rejected(self):
        with pytest.raises(KeyError):
            build_instance("nonexistent_99")

    def test_impossible_signature_raises_structured_error(self):
        from repro.errors import SynthesisError, UnsatisfiableSignatureError

        # degree > #inputs used to surface as a raw numpy ValueError from
        # cube sampling; now it names the instance and the violated rule.
        with pytest.raises(UnsatisfiableSignatureError) as err:
            synth_signature(3, 2, 5, name="bogus_row")
        assert isinstance(err.value, SynthesisError)
        assert err.value.instance == "bogus_row"
        assert (err.value.num_inputs, err.value.num_products,
                err.value.degree) == (3, 2, 5)
        assert "more literals" in err.value.reason
        assert "bogus_row" in str(err.value)

    def test_degenerate_signature_raises_structured_error(self):
        from repro.errors import UnsatisfiableSignatureError

        with pytest.raises(UnsatisfiableSignatureError) as err:
            synth_signature(4, 0, 2)
        assert "at least 1" in err.value.reason


class TestMultiInstances:
    def test_squar5_multi(self):
        specs = build_multi_instance("squar5")
        assert len(specs) == 8

    def test_misex1_multi(self):
        specs = build_multi_instance("misex1")
        assert len(specs) == 7

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_multi_instance("nope")
