"""Tests for the table regenerators."""

from repro.bench import fig4, table1, table3
from repro.bench.tables import FIG4_PAPER_BOUNDS


class TestTable1:
    def test_small_table_checked(self):
        report = table1(4, 4)
        assert "all entries match the paper" in report

    def test_unchecked_mode(self):
        report = table1(3, 3, check=False)
        assert "unchecked" in report


class TestFig4:
    def test_report_matches_paper(self, fast_options):
        report = fig4(fast_options)
        for method, shape in FIG4_PAPER_BOUNDS.items():
            assert report.bounds[method] == shape, method
        assert report.lb == 12
        assert report.solution[0] * report.solution[1] == 12
        text = report.format()
        assert "3x4" in text


class TestTable3:
    def test_two_output_toy(self, fast_options):
        # Full Table III is a benchmark; here only the plumbing is tested
        # on squar5 truncated via direct calls in benchmarks.  Use misex1's
        # smallest two outputs through the public API instead.
        from repro.core import synthesize_multi, merge_straightforward, make_spec

        specs = [make_spec("ab + a'b'", name="t0"), make_spec("ac", name="t1")]
        sf = merge_straightforward(specs, fast_options)
        mf = synthesize_multi(specs, options=fast_options)
        assert mf.size <= sf.size
