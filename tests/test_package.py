"""Package-level tests: public API surface and end-to-end smoke."""

import repro


class TestApi:
    def test_version(self):
        assert repro.__version__ == "1.5.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        result = repro.synthesize(
            "ab + a'b'c", options=repro.JanusOptions(max_conflicts=20_000)
        )
        assert result.size >= 1
        assert "x" in result.shape
        text = result.assignment.to_text()
        assert text.count("\n") == result.rows - 1


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in (
            "ParseError",
            "DimensionError",
            "EncodingError",
            "SolverError",
            "SynthesisError",
            "BudgetExceeded",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)
