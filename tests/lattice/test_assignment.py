"""Tests for lattice assignments and the connectivity checker.

The key property: evaluating an assigned lattice by union-find/flood-fill
connectivity must agree with evaluating it through the enumerated minimal
paths — two independent implementations of the same semantics.
"""

import numpy as np
import pytest

from repro.boolf import TruthTable, parse_sop
from repro.errors import DimensionError
from repro.lattice import (
    CONST0,
    CONST1,
    Entry,
    LatticeAssignment,
    left_right_paths8,
    top_bottom_paths,
)


def random_assignment(rng, rows, cols, num_vars) -> LatticeAssignment:
    entries = []
    for _ in range(rows * cols):
        kind = rng.integers(0, 4)
        if kind == 0:
            entries.append(CONST0)
        elif kind == 1:
            entries.append(CONST1)
        else:
            entries.append(
                Entry.lit(int(rng.integers(0, num_vars)), bool(rng.integers(0, 2)))
            )
    return LatticeAssignment(rows, cols, entries, num_vars)


def eval_via_paths(la: LatticeAssignment, minterm: int, dual_side=False) -> bool:
    paths = (
        left_right_paths8(la.rows, la.cols)
        if dual_side
        else top_bottom_paths(la.rows, la.cols)
    )
    conducting = la.conducting_mask(minterm)
    return any(mask & conducting == mask for mask in paths)


class TestEntry:
    def test_literal_evaluation(self):
        e = Entry.lit(1, True)
        assert e.evaluate(0b10)
        assert not e.evaluate(0b01)
        assert Entry.lit(1, False).evaluate(0b01)

    def test_constants(self):
        assert CONST1.evaluate(0)
        assert not CONST0.evaluate(0)
        assert CONST0.is_const

    def test_to_string(self):
        assert Entry.lit(0, True).to_string() == "a"
        assert Entry.lit(0, False).to_string() == "a'"
        assert CONST0.to_string() == "0"
        assert Entry.lit(0, True).to_string(["clk"]) == "clk"

    def test_negative_var_rejected(self):
        with pytest.raises(DimensionError):
            Entry.lit(-1)


class TestCheckerAgreesWithPaths:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 3), (3, 3), (3, 4), (4, 3)])
    def test_top_bottom_equivalence(self, rng, shape):
        for _ in range(15):
            la = random_assignment(rng, *shape, num_vars=3)
            for m in range(8):
                assert la.evaluate(m) == eval_via_paths(la, m)

    @pytest.mark.parametrize("shape", [(2, 2), (3, 3), (3, 4)])
    def test_left_right_equivalence(self, rng, shape):
        for _ in range(15):
            la = random_assignment(rng, *shape, num_vars=3)
            for m in range(8):
                assert la.evaluate_dual_side(m) == eval_via_paths(
                    la, m, dual_side=True
                )

    def test_duality_of_literal_assignments(self, rng):
        """For literal-only assignments, TB function == dual of LR8
        function (composition commutes because literals complement with
        their inputs)."""
        for _ in range(10):
            entries = [
                Entry.lit(int(rng.integers(0, 3)), bool(rng.integers(0, 2)))
                for _ in range(9)
            ]
            la = LatticeAssignment(3, 3, entries, 3)
            assert la.realized_truthtable() == la.realized_dual_side_truthtable().dual()

    def test_duality_with_constants_needs_flip(self, rng):
        """With constants, duality holds after complementing the constant
        cells — the rule the dual-side decoder implements."""
        for _ in range(20):
            la = random_assignment(rng, 3, 3, num_vars=3)
            flipped_entries = [
                (CONST0 if e.positive else CONST1) if e.is_const else e
                for e in la.entries
            ]
            flipped = LatticeAssignment(3, 3, flipped_entries, 3)
            assert (
                flipped.realized_truthtable()
                == la.realized_dual_side_truthtable().dual()
            )


class TestRealization:
    def test_fig1d_4x2(self):
        """Paper Fig. 1(d): f = abcd + a'b'c'd' on a 4x2 lattice."""
        f = parse_sop("abcd + a'b'c'd'")
        entries = [
            Entry.lit(0, True), Entry.lit(0, False),
            Entry.lit(1, True), Entry.lit(1, False),
            Entry.lit(2, True), Entry.lit(2, False),
            Entry.lit(3, True), Entry.lit(3, False),
        ]
        la = LatticeAssignment(4, 2, entries, 4, f.names)
        assert la.realizes(f.to_truthtable())

    def test_constant_lattice(self):
        la = LatticeAssignment(2, 2, [CONST1] * 4, 2)
        assert la.realized_truthtable().is_one()
        la0 = LatticeAssignment(2, 2, [CONST0] * 4, 2)
        assert la0.realized_truthtable().is_zero()

    def test_realizes_rejects_wrong_universe(self):
        la = LatticeAssignment(1, 1, [CONST1], 2)
        with pytest.raises(DimensionError):
            la.realizes(TruthTable.ones(3))

    def test_entry_count_checked(self):
        with pytest.raises(DimensionError):
            LatticeAssignment(2, 2, [CONST1] * 3, 1)

    def test_entry_variable_range_checked(self):
        with pytest.raises(DimensionError):
            LatticeAssignment(1, 1, [Entry.lit(5)], 2)


class TestSurgery:
    def test_transpose_involution(self, rng):
        la = random_assignment(rng, 3, 4, 3)
        assert la.transposed().transposed() == la

    def test_padded_bottom_preserves_function(self, rng):
        """Appending constant-1 rows never changes the TB function."""
        for _ in range(20):
            la = random_assignment(rng, 3, 3, 3)
            padded = la.padded_bottom(2, CONST1)
            assert padded.rows == 5
            assert padded.realized_truthtable() == la.realized_truthtable()

    def test_zero_padding_blocks(self):
        la = LatticeAssignment(1, 1, [CONST1], 1)
        padded = la.padded_bottom(1, CONST0)
        assert padded.realized_truthtable().is_zero()

    def test_hstack_with_isolation_is_or(self, rng):
        for _ in range(20):
            a = random_assignment(rng, 3, 2, 3)
            b = random_assignment(rng, 3, 3, 3)
            stacked = LatticeAssignment.hstack([a, b], isolation=CONST0)
            want = a.realized_truthtable() | b.realized_truthtable()
            assert stacked.realized_truthtable() == want

    def test_hstack_pads_shorter_parts(self, rng):
        a = random_assignment(rng, 2, 2, 2)
        b = random_assignment(rng, 4, 2, 2)
        stacked = LatticeAssignment.hstack([a, b], isolation=CONST0)
        assert stacked.rows == 4
        assert stacked.cols == 5
        want = a.realized_truthtable() | b.realized_truthtable()
        assert stacked.realized_truthtable() == want

    def test_hstack_universe_mismatch(self, rng):
        a = random_assignment(rng, 2, 2, 2)
        b = random_assignment(rng, 2, 2, 3)
        with pytest.raises(DimensionError):
            LatticeAssignment.hstack([a, b])

    def test_hstack_empty(self):
        with pytest.raises(DimensionError):
            LatticeAssignment.hstack([])

    def test_negative_padding_rejected(self, rng):
        la = random_assignment(rng, 2, 2, 2)
        with pytest.raises(DimensionError):
            la.padded_bottom(-1)


class TestTrimming:
    def test_trims_zero_edge_columns(self):
        la = LatticeAssignment(
            2, 3,
            [CONST0, Entry.lit(0), CONST0,
             CONST0, Entry.lit(1), CONST0],
            2,
        )
        trimmed = la.trimmed()
        assert trimmed.cols == 1
        assert trimmed.realized_truthtable() == la.realized_truthtable()

    def test_trims_one_edge_rows(self):
        la = LatticeAssignment(
            3, 1,
            [CONST1, Entry.lit(0), CONST1],
            1,
        )
        trimmed = la.trimmed()
        assert trimmed.rows == 1
        assert trimmed.realized_truthtable() == la.realized_truthtable()

    def test_keeps_interior_isolation(self):
        # A middle all-0 column separates two blocks; it must stay.
        la = LatticeAssignment(
            1, 3,
            [Entry.lit(0), CONST0, Entry.lit(1)],
            2,
        )
        assert la.trimmed().cols == 3

    def test_trim_preserves_function_random(self, rng):
        for _ in range(15):
            la = random_assignment(rng, 3, 3, 3)
            padded = LatticeAssignment.hstack(
                [la], isolation=None
            ).padded_bottom(1, CONST1)
            trimmed = padded.trimmed()
            assert trimmed.realized_truthtable() == la.realized_truthtable()


class TestText:
    def test_to_text_shape(self):
        la = LatticeAssignment(
            2, 2, [Entry.lit(0), CONST0, CONST1, Entry.lit(1, False)], 2
        )
        lines = la.to_text().splitlines()
        assert len(lines) == 2
        assert "a" in lines[0]
        assert "b'" in lines[1]

    def test_repr(self):
        la = LatticeAssignment(1, 2, [CONST0, CONST1], 1)
        assert "1x2" in repr(la)
