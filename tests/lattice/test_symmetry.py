"""Tests for lattice symmetry operations and canonical forms."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.lattice import (
    CONST0,
    CONST1,
    Entry,
    LatticeAssignment,
    canonical_form,
    equivalent,
    flip_horizontal,
    flip_vertical,
    orbit,
    rotate_180,
)


def random_assignment(rows, cols, num_vars, seed):
    rng = np.random.default_rng(seed)
    entries = []
    for _ in range(rows * cols):
        kind = rng.random()
        if kind < 0.15:
            entries.append(CONST0)
        elif kind < 0.3:
            entries.append(CONST1)
        else:
            entries.append(
                Entry.lit(int(rng.integers(0, num_vars)), bool(rng.random() < 0.5))
            )
    return LatticeAssignment(rows, cols, entries, num_vars)


@st.composite
def assignments(draw):
    rows = draw(st.integers(min_value=1, max_value=4))
    cols = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_assignment(rows, cols, 3, seed)


class TestGroupLaws:
    @given(assignments())
    @settings(max_examples=40, deadline=None)
    def test_flips_are_involutions(self, a):
        assert flip_horizontal(flip_horizontal(a)) == a
        assert flip_vertical(flip_vertical(a)) == a
        assert rotate_180(rotate_180(a)) == a

    @given(assignments())
    @settings(max_examples=40, deadline=None)
    def test_flips_commute(self, a):
        assert flip_horizontal(flip_vertical(a)) == flip_vertical(
            flip_horizontal(a)
        )

    @given(assignments())
    @settings(max_examples=20, deadline=None)
    def test_orbit_size_divides_group_order(self, a):
        keys = {tuple(img.entries) for img in orbit(a)}
        assert len(keys) in (1, 2, 4)


class TestFunctionPreservation:
    @given(assignments())
    @settings(max_examples=30, deadline=None)
    def test_symmetries_preserve_realized_function(self, a):
        reference = a.realized_truthtable()
        for image in orbit(a):
            assert image.realized_truthtable() == reference

    @given(assignments())
    @settings(max_examples=20, deadline=None)
    def test_symmetries_preserve_dual_side_function(self, a):
        reference = a.realized_dual_side_truthtable()
        for image in orbit(a):
            assert image.realized_dual_side_truthtable() == reference


class TestCanonicalForm:
    @given(assignments())
    @settings(max_examples=40, deadline=None)
    def test_canonical_form_is_orbit_invariant(self, a):
        canon = canonical_form(a)
        for image in orbit(a):
            assert canonical_form(image) == canon

    @given(assignments())
    @settings(max_examples=40, deadline=None)
    def test_equivalence_with_own_images(self, a):
        for image in orbit(a):
            assert equivalent(a, image)

    def test_inequivalent_when_content_differs(self):
        a = LatticeAssignment(1, 2, [Entry.lit(0), Entry.lit(1)], 2)
        b = LatticeAssignment(1, 2, [Entry.lit(0), Entry.lit(0)], 2)
        assert not equivalent(a, b)

    def test_shape_mismatch_never_equivalent(self):
        a = LatticeAssignment(1, 2, [Entry.lit(0), Entry.lit(1)], 2)
        b = LatticeAssignment(2, 1, [Entry.lit(0), Entry.lit(1)], 2)
        assert not equivalent(a, b)

    def test_flipped_assignments_are_equivalent(self):
        a = random_assignment(3, 4, 3, seed=5)
        assert equivalent(a, flip_horizontal(a))
        assert equivalent(a, flip_vertical(a))
        assert equivalent(a, rotate_180(a))
