"""Tests for the Table I regenerator."""

from repro.lattice import (
    PAPER_TABLE1,
    count_products,
    format_table1,
    products_table,
)


class TestProductsTable:
    def test_small_table_matches_paper(self):
        for entry in products_table(4, 4):
            want = PAPER_TABLE1[(entry.rows, entry.cols)]
            assert (entry.products, entry.dual_products) == want

    def test_entry_count(self):
        assert len(products_table(5, 6)) == 4 * 5

    def test_count_products_tuple(self):
        assert count_products(3, 3) == (9, 17)

    def test_asymmetry_noted_in_paper(self):
        """Table I is not symmetric: f_2x4 vs f_4x2 and the 8x4 example."""
        assert count_products(2, 4) != count_products(4, 2)

    def test_same_size_different_product_counts(self):
        """Paper: f_3x8 has 64 products while f_6x4 has 236."""
        assert count_products(3, 8)[0] == 64
        assert count_products(6, 4)[0] == 236


class TestFormat:
    def test_format_contains_counts(self):
        text = format_table1(products_table(3, 3))
        assert "9" in text and "17" in text
        assert text.splitlines()[0].strip().startswith("m/n")

    def test_format_empty(self):
        assert format_table1([]) == "(empty)"
