"""Tests for single-switch fault analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DimensionError
from repro.lattice import CONST0, CONST1, Entry, LatticeAssignment
from repro.lattice.faults import (
    STUCK_OFF,
    STUCK_ON,
    Fault,
    detecting_vectors,
    fault_coverage,
    fault_table,
    fault_universe,
    inject,
    minimal_test_set,
)


def and_lattice() -> LatticeAssignment:
    """2x1 lattice realizing a AND b."""
    return LatticeAssignment(2, 1, [Entry.lit(0), Entry.lit(1)], 2)


def or_lattice() -> LatticeAssignment:
    """1x2 lattice realizing a OR b."""
    return LatticeAssignment(1, 2, [Entry.lit(0), Entry.lit(1)], 2)


def random_assignment(rows, cols, num_vars, seed):
    rng = np.random.default_rng(seed)
    entries = []
    for _ in range(rows * cols):
        kind = rng.random()
        if kind < 0.15:
            entries.append(CONST0)
        elif kind < 0.3:
            entries.append(CONST1)
        else:
            entries.append(
                Entry.lit(int(rng.integers(0, num_vars)), bool(rng.random() < 0.5))
            )
    return LatticeAssignment(rows, cols, entries, num_vars)


class TestInject:
    def test_stuck_off_kills_conduction(self):
        lattice = and_lattice()
        faulty = inject(lattice, Fault(0, 0, STUCK_OFF))
        assert faulty.realized_truthtable().is_zero()

    def test_stuck_on_shortens_path(self):
        lattice = and_lattice()
        faulty = inject(lattice, Fault(0, 0, STUCK_ON))
        # a stuck ON: function degenerates to b.
        from repro.boolf import TruthTable

        assert faulty.realized_truthtable() == TruthTable.variable(1, 2)

    def test_original_unchanged(self):
        lattice = and_lattice()
        inject(lattice, Fault(0, 0, STUCK_ON))
        assert lattice.entry(0, 0) == Entry.lit(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(DimensionError):
            inject(and_lattice(), Fault(5, 0, STUCK_ON))

    def test_bad_kind_rejected(self):
        with pytest.raises(DimensionError):
            Fault(0, 0, "stuck-sideways")


class TestUniverse:
    def test_two_faults_per_literal_cell(self):
        assert len(fault_universe(and_lattice())) == 4

    def test_vacuous_faults_excluded(self):
        lattice = LatticeAssignment(1, 2, [CONST0, CONST1], 1)
        universe = fault_universe(lattice)
        assert Fault(0, 0, STUCK_OFF) not in universe
        assert Fault(0, 1, STUCK_ON) not in universe
        assert len(universe) == 2


class TestDetection:
    def test_and_lattice_faults_all_testable(self):
        report = fault_table(and_lattice())
        assert not report.redundant
        assert report.num_faults == 4

    def test_detecting_vectors_definition(self):
        lattice = and_lattice()
        vectors = detecting_vectors(lattice, Fault(0, 0, STUCK_ON))
        # a stuck ON turns f from ab into b: differs where b=1, a=0.
        assert vectors == [0b10]

    def test_redundant_fault_found(self):
        # Two parallel columns both carrying `a`: one column stuck OFF is
        # masked by the other.
        lattice = LatticeAssignment(1, 2, [Entry.lit(0), Entry.lit(0)], 1)
        report = fault_table(lattice)
        off_faults = [f for f in report.redundant if f.kind == STUCK_OFF]
        assert len(off_faults) == 2


class TestTestSets:
    def test_minimal_set_covers_everything(self):
        report = fault_table(and_lattice())
        tests = minimal_test_set(report)
        assert fault_coverage(report, tests) == 1.0

    def test_and_needs_three_vectors(self):
        # Classic result: testing a 2-input AND needs 3 vectors
        # (11 for stuck-off, 01 and 10 for the stuck-ons).
        report = fault_table(and_lattice())
        tests = minimal_test_set(report)
        assert len(tests) == 3

    def test_or_needs_three_vectors(self):
        report = fault_table(or_lattice())
        assert len(minimal_test_set(report)) == 3

    def test_coverage_fractions(self):
        report = fault_table(and_lattice())
        assert fault_coverage(report, []) == 0.0
        full = minimal_test_set(report)
        assert 0.0 < fault_coverage(report, full[:1]) < 1.0

    def test_coverage_vacuous_when_no_testable_faults(self):
        lattice = LatticeAssignment(1, 1, [CONST1], 1)
        report = fault_table(lattice)
        # Only a stuck-off fault exists and it is testable (1 -> 0)...
        if report.testable:
            assert fault_coverage(report, minimal_test_set(report)) == 1.0


class TestRandomizedInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_every_testable_fault_has_real_witnesses(self, seed):
        lattice = random_assignment(2, 3, 3, seed)
        report = fault_table(lattice)
        good = lattice.realized_truthtable()
        for fault, vectors in report.testable.items():
            faulty = inject(lattice, fault).realized_truthtable()
            for vec in vectors:
                assert good.evaluate(vec) != faulty.evaluate(vec)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_minimal_set_full_coverage(self, seed):
        lattice = random_assignment(3, 2, 3, seed)
        report = fault_table(lattice)
        tests = minimal_test_set(report)
        assert fault_coverage(report, tests) == 1.0
        # Greedy never uses more vectors than faults.
        assert len(tests) <= max(1, len(report.testable))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_stuck_on_monotone_stuck_off_antitone(self, seed):
        # Stuck-ON can only add conduction; stuck-OFF can only remove it.
        lattice = random_assignment(2, 2, 2, seed)
        good = lattice.realized_truthtable()
        for fault in fault_universe(lattice):
            bad = inject(lattice, fault).realized_truthtable()
            if fault.kind == STUCK_ON:
                assert good.implies(bad)
            else:
                assert bad.implies(good)
