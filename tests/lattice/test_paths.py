"""Tests for irredundant path enumeration."""

import pytest

from repro.lattice import (
    Grid,
    count_left_right_paths8,
    count_top_bottom_paths,
    left_right_paths8,
    top_bottom_paths,
)
from repro.lattice.count import PAPER_TABLE1


class TestAgainstPaper:
    @pytest.mark.parametrize("m", range(2, 6))
    @pytest.mark.parametrize("n", range(2, 6))
    def test_table1_counts_small(self, m, n):
        want = PAPER_TABLE1[(m, n)]
        assert count_top_bottom_paths(m, n) == want[0]
        assert count_left_right_paths8(m, n) == want[1]

    @pytest.mark.parametrize(
        "shape", [(2, 8), (3, 7), (6, 3), (4, 6), (7, 2), (3, 8)]
    )
    def test_table1_counts_elongated(self, shape):
        m, n = shape
        want = PAPER_TABLE1[(m, n)]
        assert count_top_bottom_paths(m, n) == want[0]
        assert count_left_right_paths8(m, n) == want[1]

    def test_paper_f3x3_products(self):
        """The paper lists f_3x3 explicitly: 9 specific products."""
        # Cell x_i (1-based, row-major) -> bit i-1.
        def mask(*cells):
            return sum(1 << (c - 1) for c in cells)

        expected = {
            mask(1, 4, 7), mask(2, 5, 8), mask(3, 6, 9),
            mask(1, 4, 5, 8), mask(2, 5, 4, 7), mask(2, 5, 6, 9),
            mask(3, 6, 5, 8), mask(1, 4, 5, 6, 9), mask(3, 6, 5, 4, 7),
        }
        assert set(top_bottom_paths(3, 3)) == expected

    def test_paper_dual_3x3_products(self):
        """Footnote 1 of the paper lists all 17 dual products of f_3x3."""
        def mask(*cells):
            return sum(1 << (c - 1) for c in cells)

        expected = {
            mask(1, 2, 3), mask(1, 2, 6), mask(1, 5, 3), mask(1, 5, 6),
            mask(1, 5, 9), mask(4, 2, 3), mask(4, 2, 6), mask(4, 5, 3),
            mask(4, 5, 6), mask(4, 5, 9), mask(4, 8, 6), mask(4, 8, 9),
            mask(7, 5, 3), mask(7, 5, 6), mask(7, 5, 9), mask(7, 8, 6),
            mask(7, 8, 9),
        }
        assert set(left_right_paths8(3, 3)) == expected


class TestStructuralProperties:
    @pytest.mark.parametrize("shape", [(2, 2), (3, 3), (3, 4), (4, 3), (4, 4)])
    def test_irredundancy(self, shape):
        """No product's cell set may contain another's."""
        for paths in (top_bottom_paths(*shape), left_right_paths8(*shape)):
            for i, a in enumerate(paths):
                for j, b in enumerate(paths):
                    if i != j:
                        assert a & b != a, "product contained in another"

    @pytest.mark.parametrize("shape", [(3, 3), (4, 3), (3, 4)])
    def test_tb_paths_touch_both_plates_once(self, shape):
        g = Grid(*shape)
        for mask in top_bottom_paths(*shape):
            assert (mask & g.top_mask).bit_count() == 1
            assert (mask & g.bottom_mask).bit_count() == 1

    @pytest.mark.parametrize("shape", [(3, 3), (4, 3)])
    def test_lr_paths_touch_both_plates_once(self, shape):
        g = Grid(*shape)
        for mask in left_right_paths8(*shape):
            assert (mask & g.left_mask).bit_count() == 1
            assert (mask & g.right_mask).bit_count() == 1

    @pytest.mark.parametrize("shape", [(3, 3), (4, 4)])
    def test_tb_paths_are_connected(self, shape):
        g = Grid(*shape)
        for mask in top_bottom_paths(*shape):
            seed = mask & -mask
            reached = seed
            frontier = seed
            while frontier:
                nxt = 0
                m = frontier
                while m:
                    bit = m & -m
                    m ^= bit
                    nxt |= g.nbr4[bit.bit_length() - 1]
                frontier = nxt & mask & ~reached
                reached |= frontier
            assert reached == mask

    def test_path_lengths_bounded(self):
        # A 4-connected minimal path in m x n spans at least m cells.
        for mask in top_bottom_paths(4, 3):
            assert mask.bit_count() >= 4

    def test_single_row(self):
        # 1 x n: every cell touches both plates: n one-cell paths.
        assert count_top_bottom_paths(1, 4) == 4

    def test_single_column(self):
        # m x 1: the only path is the whole column.
        paths = top_bottom_paths(4, 1)
        assert len(paths) == 1
        assert paths[0].bit_count() == 4

    def test_counting_matches_enumeration(self):
        assert count_top_bottom_paths(4, 4) == len(top_bottom_paths(4, 4))
        assert count_left_right_paths8(4, 4) == len(left_right_paths8(4, 4))

    def test_memoization_returns_same_object(self):
        assert top_bottom_paths(3, 3) is top_bottom_paths(3, 3)
