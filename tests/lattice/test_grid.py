"""Tests for lattice geometry."""

import pytest

from repro.errors import DimensionError
from repro.lattice import Grid


class TestConstruction:
    def test_size(self):
        g = Grid(3, 4)
        assert g.size == 12
        assert g.rows == 3
        assert g.cols == 4

    def test_degenerate_rejected(self):
        with pytest.raises(DimensionError):
            Grid(0, 3)
        with pytest.raises(DimensionError):
            Grid(3, 0)

    def test_index_coords_round_trip(self):
        g = Grid(3, 4)
        for r in range(3):
            for c in range(4):
                assert g.coords(g.index(r, c)) == (r, c)

    def test_index_out_of_range(self):
        g = Grid(2, 2)
        with pytest.raises(DimensionError):
            g.index(2, 0)
        with pytest.raises(DimensionError):
            g.coords(4)


class TestNeighbourhoods:
    def test_corner_has_two_4neighbours(self):
        g = Grid(3, 3)
        assert g.nbr4[0].bit_count() == 2
        assert g.nbr8[0].bit_count() == 3

    def test_center_has_four_and_eight(self):
        g = Grid(3, 3)
        center = g.index(1, 1)
        assert g.nbr4[center].bit_count() == 4
        assert g.nbr8[center].bit_count() == 8

    def test_neighbourhood_symmetry(self):
        g = Grid(4, 5)
        for i in range(g.size):
            for j in range(g.size):
                assert bool(g.nbr4[i] >> j & 1) == bool(g.nbr4[j] >> i & 1)
                assert bool(g.nbr8[i] >> j & 1) == bool(g.nbr8[j] >> i & 1)

    def test_nbr4_subset_of_nbr8(self):
        g = Grid(4, 4)
        for i in range(g.size):
            assert g.nbr4[i] & ~g.nbr8[i] == 0

    def test_single_cell_lattice(self):
        g = Grid(1, 1)
        assert g.nbr4[0] == 0
        assert g.top_mask == g.bottom_mask == 1


class TestPlateMasks:
    def test_masks_3x3(self):
        g = Grid(3, 3)
        assert g.top_mask == 0b000000111
        assert g.bottom_mask == 0b111000000
        assert g.left_mask == 0b001001001
        assert g.right_mask == 0b100100100

    def test_row_col_cells(self):
        g = Grid(2, 3)
        assert g.row_cells(1) == [3, 4, 5]
        assert g.col_cells(2) == [2, 5]

    def test_transpose_index(self):
        g = Grid(2, 3)
        assert g.transpose_index(g.index(0, 2)) == 4  # (2,0) in 3x2

    def test_equality_and_hash(self):
        assert Grid(2, 3) == Grid(2, 3)
        assert Grid(2, 3) != Grid(3, 2)
        assert hash(Grid(2, 3)) == hash(Grid(2, 3))

    def test_cells_iterator(self):
        assert list(Grid(2, 2).cells()) == [(0, 0), (0, 1), (1, 0), (1, 1)]
