"""Tests for ASCII/SVG lattice rendering."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.lattice import (
    CONST0,
    CONST1,
    Entry,
    LatticeAssignment,
    conducting_cells,
    render_ascii,
    render_svg,
)


def fig1c_lattice() -> LatticeAssignment:
    """A 2x2 lattice realizing a AND b on variables (a, b)."""
    entries = [
        Entry.lit(0), Entry.lit(0),
        Entry.lit(1), Entry.lit(1),
    ]
    return LatticeAssignment(2, 2, entries, 2)


class TestConductingCells:
    def test_no_conduction_empty(self):
        lattice = fig1c_lattice()
        assert conducting_cells(lattice, 0b00) == set()
        assert conducting_cells(lattice, 0b01) == set()

    def test_full_conduction(self):
        lattice = fig1c_lattice()
        assert conducting_cells(lattice, 0b11) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_component_not_reaching_bottom_excluded(self):
        entries = [
            Entry.lit(0), CONST0,
            CONST0, Entry.lit(1),
        ]
        lattice = LatticeAssignment(2, 2, entries, 2)
        # a=1, b=1: a is on at top-left, b at bottom-right, but they are
        # not 4-connected — nothing conducts.
        assert conducting_cells(lattice, 0b11) == set()

    def test_matches_evaluate(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            entries = []
            for _ in range(9):
                var = int(rng.integers(0, 3))
                kind = rng.random()
                if kind < 0.2:
                    entries.append(CONST0)
                elif kind < 0.4:
                    entries.append(CONST1)
                else:
                    entries.append(Entry.lit(var, bool(rng.random() < 0.5)))
            lattice = LatticeAssignment(3, 3, entries, 3)
            for minterm in range(8):
                cells = conducting_cells(lattice, minterm)
                assert bool(cells) == lattice.evaluate(minterm)


class TestRenderAscii:
    def test_contains_all_labels_and_plates(self):
        lattice = fig1c_lattice()
        text = render_ascii(lattice)
        assert "top" in text and "bottom" in text
        assert "a" in text and "b" in text

    def test_highlight_star(self):
        lattice = fig1c_lattice()
        text = render_ascii(lattice, minterm=0b11)
        assert "a*" in text and "b*" in text
        no_path = render_ascii(lattice, minterm=0b01)
        assert "*" not in no_path

    def test_no_plates(self):
        text = render_ascii(fig1c_lattice(), show_plates=False)
        assert "top" not in text
        assert text.count("\n") == 1  # two rows

    def test_rows_aligned(self):
        entries = [Entry.lit(0), CONST1, Entry.lit(1, False), CONST0]
        lattice = LatticeAssignment(2, 2, entries, 2)
        lines = render_ascii(lattice, show_plates=False).splitlines()
        assert len({len(line) for line in lines}) == 1


class TestRenderSvg:
    def test_well_formed_and_complete(self):
        lattice = fig1c_lattice()
        svg = render_svg(lattice)
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        # 4 cells + 2 plates = 6 rects.
        assert svg.count("<rect") == 6
        assert svg.count("<text") == 4

    def test_highlighting_changes_fill(self):
        lattice = fig1c_lattice()
        plain = render_svg(lattice)
        lit = render_svg(lattice, minterm=0b11)
        assert "#ffd27f" not in plain
        assert lit.count("#ffd27f") == 4

    def test_label_escaping(self):
        # Variable names with XML-special characters must be escaped.
        entries = [Entry.lit(0)]
        lattice = LatticeAssignment(1, 1, entries, 1, names=["a<b&c"])
        svg = render_svg(lattice)
        assert "a&lt;b&amp;c" in svg

    def test_invalid_cell_size(self):
        with pytest.raises(DimensionError):
            render_svg(fig1c_lattice(), cell_size=0)
