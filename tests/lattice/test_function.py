"""Tests for symbolic lattice functions and the duality theorem."""

import pytest

from repro.errors import DimensionError
from repro.lattice import lattice_dual_function, lattice_function, switch_names


class TestLatticeFunction:
    def test_f3x3_matches_paper(self):
        f = lattice_function(3, 3)
        assert f.num_products == 9
        assert f.degree == 5
        # The paper writes f_3x3 explicitly; spot-check two products.
        text = f.to_string()
        assert "x1x4x7" in text
        assert "x3x6x9" in text

    def test_dual_3x3_has_17_products(self):
        assert lattice_dual_function(3, 3).num_products == 17

    @pytest.mark.parametrize("shape", [(2, 2), (2, 3), (3, 2), (3, 3), (3, 4)])
    def test_duality_theorem(self, shape):
        """TB(4-conn) function and LR(8-conn) function are duals
        (Altun & Riedel 2012, used throughout the paper)."""
        f = lattice_function(*shape).to_truthtable()
        g = lattice_dual_function(*shape).to_truthtable()
        assert f.dual() == g

    def test_switch_names_row_major(self):
        assert switch_names(2, 2) == ["x1", "x2", "x3", "x4"]

    def test_symbolic_limit(self):
        with pytest.raises(DimensionError):
            lattice_function(8, 8)

    def test_f2x2(self):
        f = lattice_function(2, 2)
        assert f.to_string() == "x1x3 + x2x4"
