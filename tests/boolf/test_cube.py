"""Unit and property tests for repro.boolf.cube."""

import pytest
from hypothesis import given

from repro.boolf import Cube
from repro.errors import DimensionError
from tests.conftest import cubes


class TestConstruction:
    def test_top_has_no_literals(self):
        c = Cube.top(4)
        assert c.num_literals == 0
        assert c.is_tautology()

    def test_contradictory_literals_rejected(self):
        with pytest.raises(ValueError):
            Cube(0b1, 0b1, 3)

    def test_mask_outside_universe_rejected(self):
        with pytest.raises(DimensionError):
            Cube(0b1000, 0, 3)

    def test_negative_num_vars_rejected(self):
        with pytest.raises(ValueError):
            Cube(0, 0, -1)

    def test_from_literals(self):
        c = Cube.from_literals([(0, True), (2, False)], 4)
        assert c.pos == 0b0001
        assert c.neg == 0b0100
        assert c.num_literals == 2

    def test_from_minterm(self):
        c = Cube.from_minterm(0b0101, 4)
        assert c.evaluate(0b0101)
        assert not c.evaluate(0b0100)
        assert c.num_literals == 4
        assert c.size() == 1

    def test_immutability(self):
        c = Cube.top(2)
        with pytest.raises(AttributeError):
            c.pos = 3


class TestEvaluation:
    def test_evaluate_positive(self):
        c = Cube.from_literals([(1, True)], 3)
        assert c.evaluate(0b010)
        assert not c.evaluate(0b101)

    def test_evaluate_negative(self):
        c = Cube.from_literals([(1, False)], 3)
        assert not c.evaluate(0b010)
        assert c.evaluate(0b101)

    def test_tautology_evaluates_everywhere(self):
        c = Cube.top(3)
        assert all(c.evaluate(m) for m in range(8))

    @given(cubes(4))
    def test_minterms_match_evaluate(self, c):
        listed = set(c.minterms())
        by_eval = {m for m in range(16) if c.evaluate(m)}
        assert listed == by_eval

    @given(cubes(4))
    def test_size_counts_minterms(self, c):
        assert c.size() == len(list(c.minterms()))


class TestSetOperations:
    def test_contains_is_literal_subset(self):
        ab = Cube.from_literals([(0, True), (1, True)], 3)
        a = Cube.from_literals([(0, True)], 3)
        assert a.contains(ab)
        assert not ab.contains(a)

    def test_intersects_disjoint(self):
        a = Cube.from_literals([(0, True)], 2)
        na = Cube.from_literals([(0, False)], 2)
        assert not a.intersects(na)
        assert a.intersection(na) is None

    @given(cubes(4), cubes(4))
    def test_intersection_is_conjunction(self, a, b):
        inter = a.intersection(b)
        for m in range(16):
            want = a.evaluate(m) and b.evaluate(m)
            got = inter is not None and inter.evaluate(m)
            assert got == want

    @given(cubes(4), cubes(4))
    def test_supercube_contains_both(self, a, b):
        sup = a.supercube(b)
        assert sup.contains(a)
        assert sup.contains(b)

    @given(cubes(4), cubes(4))
    def test_distance_counts_clashes(self, a, b):
        clashes = sum(
            1
            for v in range(4)
            if (a.pos >> v & 1 and b.neg >> v & 1)
            or (a.neg >> v & 1 and b.pos >> v & 1)
        )
        assert a.distance(b) == clashes

    def test_consensus(self):
        x = Cube.from_literals([(0, True), (1, True)], 3)
        y = Cube.from_literals([(0, False), (2, True)], 3)
        cons = x.consensus(y)
        assert cons == Cube.from_literals([(1, True), (2, True)], 3)

    def test_consensus_none_when_distance_not_one(self):
        x = Cube.from_literals([(0, True), (1, True)], 3)
        y = Cube.from_literals([(0, False), (1, False)], 3)
        assert x.consensus(y) is None

    def test_universe_mismatch_raises(self):
        with pytest.raises(DimensionError):
            Cube.top(2).contains(Cube.top(3))


class TestManipulation:
    def test_cofactor_removes_literal(self):
        c = Cube.from_literals([(0, True), (1, False)], 3)
        c1 = c.cofactor(0, True)
        assert c1 == Cube.from_literals([(1, False)], 3)

    def test_cofactor_vanishes_on_conflict(self):
        c = Cube.from_literals([(0, True)], 3)
        assert c.cofactor(0, False) is None

    def test_without_drops_variable(self):
        c = Cube.from_literals([(0, True), (1, True)], 3)
        assert c.without(0) == Cube.from_literals([(1, True)], 3)

    def test_complement_literals(self):
        c = Cube.from_literals([(0, True), (1, False)], 3)
        assert c.complement_literals() == Cube.from_literals(
            [(0, False), (1, True)], 3
        )

    def test_lift(self):
        c = Cube.from_literals([(0, True)], 2)
        lifted = c.lift(5)
        assert lifted.num_vars == 5
        assert lifted.pos == c.pos

    def test_lift_shrink_rejected(self):
        with pytest.raises(DimensionError):
            Cube.top(4).lift(2)


class TestStringsAndOrdering:
    def test_to_string_default_names(self):
        c = Cube.from_literals([(0, True), (1, False), (2, True)], 3)
        assert c.to_string() == "ab'c"

    def test_to_string_tautology(self):
        assert Cube.top(3).to_string() == "1"

    def test_to_string_custom_names(self):
        c = Cube.from_literals([(0, True)], 2)
        assert c.to_string(["sel", "en"]) == "sel"

    def test_hash_and_eq(self):
        a = Cube.from_literals([(0, True)], 3)
        b = Cube.from_literals([(0, True)], 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Cube.from_literals([(0, False)], 3)

    def test_ordering_by_literal_count(self):
        small = Cube.from_literals([(0, True)], 3)
        big = Cube.from_literals([(0, True), (1, True)], 3)
        assert small < big

    def test_repr_round_readable(self):
        c = Cube.from_literals([(1, True)], 3)
        assert "b" in repr(c)
