"""Unit and property tests for repro.boolf.sop."""

import pytest
from hypothesis import given

from repro.boolf import Cube, Sop, TruthTable, parse_sop
from repro.errors import DimensionError
from tests.conftest import sops, truthtables


class TestBasics:
    def test_zero_and_one(self):
        assert Sop.zero(3).is_zero()
        assert Sop.one(3).is_one()
        assert Sop.one(3).to_truthtable().is_one()

    def test_universe_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            Sop([Cube.top(2)], 3)

    def test_num_products_and_degree(self):
        f = parse_sop("ab + c")
        assert f.num_products == 2
        assert f.degree == 2
        assert f.min_degree == 1
        assert f.num_literals == 3

    def test_literal_set(self):
        f = parse_sop("ab' + a'c")
        assert f.literal_set() == {(0, True), (1, False), (0, False), (2, True)}

    def test_support(self):
        f = parse_sop("ac", names=["a", "b", "c"])
        assert f.support() == [0, 2]

    @given(sops(4))
    def test_evaluate_matches_truthtable(self, f):
        tt = f.to_truthtable()
        for m in range(16):
            assert f.evaluate(m) == tt.evaluate(m)


class TestRefinement:
    def test_absorbed_removes_contained(self):
        f = parse_sop("a + ab")
        assert f.absorbed().num_products == 1

    @given(sops(4))
    def test_absorbed_preserves_function(self, f):
        assert f.absorbed().equivalent(f)

    def test_irredundant_removes_consensus_covered(self):
        # ab + a'c + bc : bc is redundant (consensus of the others)
        f = parse_sop("ab + a'c + bc")
        irr = f.irredundant()
        assert irr.num_products == 2
        assert irr.equivalent(f)

    @given(sops(4))
    def test_irredundant_preserves_function(self, f):
        irr = f.irredundant()
        assert irr.equivalent(f)
        assert irr.is_irredundant()

    def test_sorted_is_canonical(self):
        f = parse_sop("ab + c")
        g = parse_sop("c + ab")
        assert f.sorted().cubes == g.sorted().cubes


class TestDual:
    def test_dual_of_and(self):
        f = parse_sop("ab")
        assert f.dual().equivalent(parse_sop("a + b"))

    def test_dual_of_or(self):
        f = parse_sop("a + b")
        assert f.dual().equivalent(parse_sop("ab"))

    @given(sops(4, max_products=4))
    def test_dual_involution(self, f):
        tt = f.to_truthtable()
        if tt.is_zero() or tt.is_one():
            return
        assert f.dual().dual().equivalent(f)

    def test_paper_fig4_dual_products(self):
        """Fig. 4 function: DP bound is 6x4, so the dual has 6 products."""
        f = parse_sop("cd + c'd' + abe + a'b'e'")
        assert f.dual().num_products == 6


class TestOperators:
    def test_or_concatenates(self):
        f = parse_sop("ab", names=["a", "b", "c"])
        g = parse_sop("c", names=["a", "b", "c"])
        assert (f | g).num_products == 2

    def test_restricted_to(self):
        f = parse_sop("ab + c + a'b'")
        sub = f.restricted_to([0, 2])
        assert sub.num_products == 2

    def test_len_getitem_iter(self):
        f = parse_sop("ab + c")
        assert len(f) == 2
        assert f[0] in list(f)

    def test_to_string_zero(self):
        assert Sop.zero(2).to_string() == "0"

    def test_equivalent_different_universe(self):
        assert not Sop.zero(2).equivalent(Sop.zero(3))

    def test_hash_eq(self):
        f, g = parse_sop("ab"), parse_sop("ab")
        assert f == g and hash(f) == hash(g)
