"""Tests for the full espresso loop."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boolf import Sop, TruthTable
from repro.boolf.espresso import (
    espresso,
    essential_primes,
    expand_pass,
    irredundant_pass,
    reduce_pass,
)
from repro.boolf.minimize import exact_min_sop
from repro.boolf.primes import is_prime


def random_table(num_vars: int, seed: int, density: float = 0.5) -> TruthTable:
    rng = np.random.default_rng(seed)
    return TruthTable.random(num_vars, rng, density)


class TestPasses:
    def test_expand_produces_primes(self):
        tt = Sop.from_string("ab + ab' + a'b").to_truthtable()
        cubes = list(Sop.from_string("ab + ab' + a'b").cubes)
        expanded = expand_pass(cubes, tt)
        for cube in expanded:
            assert is_prime(cube, tt)

    def test_irredundant_covers_exactly(self):
        sop = Sop.from_string("ab + bc + ac + abc")
        tt = sop.to_truthtable()
        kept = irredundant_pass(list(sop.cubes), tt)
        assert TruthTable.from_cubes(kept, 3) == tt
        assert len(kept) <= 3

    def test_essentials_of_majority(self):
        # All three primes of majority are essential.
        sop = Sop.from_string("ab + bc + ac")
        tt = sop.to_truthtable()
        ess = essential_primes(list(sop.cubes), tt)
        assert sorted(ess) == sorted(sop.cubes)

    def test_no_essentials_in_cyclic_cover(self):
        # The classic cyclic core f = Sum(0,1,2,5,6,7): every minterm is
        # covered by exactly two of the six primes, so none is essential.
        from repro.boolf.primes import prime_implicants

        tt = TruthTable.from_minterms([0, 1, 2, 5, 6, 7], 3)
        primes = prime_implicants(tt)
        assert len(primes) == 6
        ess = essential_primes(list(primes), tt)
        assert ess == []

    def test_reduce_keeps_cover(self):
        sop = Sop.from_string("ab + bc + ac")
        tt = sop.to_truthtable()
        reduced = reduce_pass(list(sop.cubes), tt)
        assert TruthTable.from_cubes(reduced, 3) == tt

    def test_reduce_drops_redundant_cube(self):
        sop = Sop.from_string("ab + ab")
        tt = sop.to_truthtable()
        reduced = reduce_pass(list(sop.cubes), tt)
        assert len(reduced) == 1


class TestEspresso:
    def test_constants(self):
        assert espresso(TruthTable.zeros(3)).is_zero()
        assert espresso(TruthTable.ones(3)).is_one()

    def test_overlapping_dc_rejected(self):
        tt = TruthTable.from_minterms([1], 2)
        with pytest.raises(ValueError):
            espresso(tt, dc=tt)

    def test_equivalent_and_irredundant(self):
        sop = Sop.from_string("ab'c + a'bc + abc + ab c'".replace(" ", ""))
        tt = sop.to_truthtable()
        result = espresso(tt)
        assert result.to_truthtable() == tt
        assert result.is_irredundant()
        for cube in result.cubes:
            assert is_prime(cube, tt)

    def test_with_dont_cares(self):
        on = TruthTable.from_minterms([1, 4, 7], 3)
        dc = TruthTable.from_minterms([2, 5], 3)
        result = espresso(on, dc)
        realized = result.to_truthtable()
        assert on.implies(realized)
        assert realized.implies(on | dc)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_functions_equivalent(self, num_vars, seed):
        tt = random_table(num_vars, seed)
        result = espresso(tt)
        assert result.to_truthtable() == tt
        assert result.is_irredundant()

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_close_to_exact_minimum(self, num_vars, seed):
        tt = random_table(num_vars, seed)
        if tt.is_zero() or tt.is_one():
            return
        heuristic = espresso(tt)
        exact = exact_min_sop(tt)
        assert len(heuristic) >= len(exact)  # sanity: exact is minimum
        # Dense random functions are espresso's worst case; the greedy
        # expand's envelope at these sizes runs up to ~45% over minimum
        # (e.g. 10 products vs an exact 7 at 5 vars, seed 2305).
        assert len(heuristic) <= len(exact) + max(3, len(exact) // 2)

    def test_improves_on_bad_initial_cover(self):
        # f = a: a cover fragmented into 4 minterm cubes over 3 vars must
        # collapse back to the single-literal prime.
        tt = Sop.from_string("a").to_truthtable()
        result = espresso(tt)
        assert len(result) == 1
        assert result.cubes[0].num_literals == 1
