"""Tests for the two-level minimizer (the espresso stand-in)."""

import itertools

import pytest
from hypothesis import given

from repro.boolf import (
    Cube,
    TruthTable,
    espresso_lite,
    exact_min_sop,
    isop,
    minimize,
    prime_implicants,
)
from tests.conftest import truthtables


def brute_force_min_products(tt: TruthTable) -> int:
    """Reference minimum cover size via exhaustive prime subsets."""
    if tt.is_zero():
        return 0
    primes = prime_implicants(tt)
    tables = [TruthTable.from_cube(p) for p in primes]
    for k in range(1, len(primes) + 1):
        for combo in itertools.combinations(range(len(primes)), k):
            union = TruthTable.zeros(tt.num_vars)
            for i in combo:
                union = union | tables[i]
            if union == tt:
                return k
    raise AssertionError("primes cannot cover the function")


class TestMinimize:
    @given(truthtables(4))
    def test_result_realizes_function(self, tt):
        assert minimize(tt).to_truthtable() == tt

    @given(truthtables(3))
    def test_exact_cardinality(self, tt):
        cover = exact_min_sop(tt) if not tt.is_zero() else minimize(tt)
        assert cover.num_products == brute_force_min_products(tt)

    @given(truthtables(4))
    def test_never_worse_than_isop(self, tt):
        assert minimize(tt).num_products <= isop(tt).num_products

    def test_constants(self):
        assert minimize(TruthTable.zeros(3)).is_zero()
        assert minimize(TruthTable.ones(3)).is_one()

    def test_majority(self):
        maj = TruthTable.from_function(lambda b: b[0] + b[1] + b[2] >= 2, 3)
        cover = minimize(maj)
        assert cover.num_products == 3
        assert cover.degree == 2

    def test_xor3(self):
        xor = TruthTable.from_function(lambda b: b[0] ^ b[1] ^ b[2], 3)
        cover = minimize(xor)
        assert cover.num_products == 4  # XOR has no sharing in SOP
        assert cover.degree == 3

    def test_dont_cares_used(self):
        on = TruthTable.from_minterms([0, 3], 2)
        dc = TruthTable.from_minterms([1, 2], 2)
        cover = minimize(on, dc)
        assert cover.num_products == 1
        assert cover.cubes[0].is_tautology()

    def test_overlapping_dc_rejected(self):
        tt = TruthTable.from_minterms([1], 2)
        with pytest.raises(ValueError):
            minimize(tt, tt)

    def test_heuristic_mode(self):
        tt = TruthTable.from_function(
            lambda b: (b[0] and b[1]) or (b[2] and b[3]), 4
        )
        cover = minimize(tt, exact=False)
        assert cover.to_truthtable() == tt

    def test_names_propagate(self):
        cover = minimize(TruthTable.variable(0, 2), names=["x", "y"])
        assert cover.to_string() == "x"


class TestEspressoLite:
    @given(truthtables(4))
    def test_expand_irredundant_preserves_function(self, tt):
        base = isop(tt)
        out = espresso_lite(base, tt)
        assert out.to_truthtable() == tt

    @given(truthtables(3))
    def test_no_worse_than_input(self, tt):
        base = isop(tt)
        out = espresso_lite(base, tt)
        assert out.num_products <= base.num_products

    def test_expands_to_primes(self):
        # Start from a minterm cover of f = a; espresso must expand to 'a'.
        tt = TruthTable.from_cube(Cube.from_literals([(0, True)], 2))
        from repro.boolf import Sop

        minterm_cover = Sop(
            [Cube.from_minterm(m, 2) for m in tt.onset()], 2
        )
        out = espresso_lite(minterm_cover, tt)
        assert out.num_products == 1
        assert out.cubes[0].num_literals == 1
