"""Tests for the PLA reader/writer."""

import pytest

from repro.boolf import Sop, parse_sop, read_pla, write_pla
from repro.errors import ParseError

SAMPLE = """\
# two-output example
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
011 01
11- 11
.e
"""


class TestReader:
    def test_header(self):
        pla = read_pla(SAMPLE)
        assert pla.num_inputs == 3
        assert pla.num_outputs == 2
        assert pla.input_names == ["a", "b", "c"]
        assert pla.output_names == ["f", "g"]

    def test_onsets(self):
        pla = read_pla(SAMPLE)
        f = pla.output_sop(0)
        g = pla.output_sop(1)
        assert f.equivalent(parse_sop("ac' + ab", names=["a", "b", "c"]))
        assert g.equivalent(parse_sop("a'bc + ab", names=["a", "b", "c"]))

    def test_truthtable(self):
        pla = read_pla(SAMPLE)
        tt = pla.output_truthtable(0)
        assert tt.evaluate(0b001)  # a=1,b=0,c=0
        assert not tt.evaluate(0b100)

    def test_dc_outputs(self):
        pla = read_pla(".i 2\n.o 1\n11 -\n00 1\n.e\n")
        dc = pla.output_dc_truthtable(0)
        assert dc.evaluate(0b11)
        assert not dc.evaluate(0b00)

    def test_default_names(self):
        pla = read_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert pla.input_names == ["x0", "x1"]
        assert pla.output_names == ["f0"]

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError):
            read_pla("11 1\n")

    def test_bad_arity_rejected(self):
        with pytest.raises(ParseError):
            read_pla(".i 3\n.o 1\n11 1\n.e\n")

    def test_bad_char_rejected(self):
        with pytest.raises(ParseError):
            read_pla(".i 2\n.o 1\n1x 1\n.e\n")

    def test_unsupported_directive_rejected(self):
        with pytest.raises(ParseError):
            read_pla(".i 2\n.o 1\n.mv 4\n11 1\n.e\n")

    def test_comments_ignored(self):
        pla = read_pla(".i 1\n.o 1\n# hi\n1 1 # inline\n.e\n")
        assert pla.output_truthtable(0).evaluate(1)


class TestWriter:
    def test_round_trip(self):
        f = parse_sop("ab' + c", names=["a", "b", "c"])
        g = parse_sop("a'c", names=["a", "b", "c"])
        text = write_pla([f, g], output_names=["f", "g"])
        pla = read_pla(text)
        assert pla.output_sop(0).equivalent(f)
        assert pla.output_sop(1).equivalent(g)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            write_pla([])

    def test_mixed_universe_rejected(self):
        with pytest.raises(ParseError):
            write_pla([Sop.zero(2), Sop.zero(3)])
