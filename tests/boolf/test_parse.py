"""Tests for the SOP expression parser."""

import pytest

from repro.boolf import parse_sop
from repro.errors import ParseError


class TestBasicParsing:
    def test_single_literal(self):
        f = parse_sop("a")
        assert f.num_products == 1
        assert f.num_vars == 1

    def test_juxtaposition(self):
        f = parse_sop("abc")
        assert f.num_products == 1
        assert f.cubes[0].num_literals == 3

    def test_sum_of_products(self):
        f = parse_sop("ab + cd")
        assert f.num_products == 2
        assert f.num_vars == 4

    def test_apostrophe_negation(self):
        f = parse_sop("a'b")
        assert (0, False) in f.literal_set()
        assert (1, True) in f.literal_set()

    def test_tilde_negation(self):
        f = parse_sop("~ab", names=["a", "b"])
        assert (0, False) in f.literal_set()

    def test_bang_negation(self):
        f = parse_sop("!a", names=["a"])
        assert (0, False) in f.literal_set()

    def test_double_negation(self):
        f = parse_sop("~a'", names=["a"])
        assert (0, True) in f.literal_set()

    def test_constants(self):
        assert parse_sop("0", names=["a"]).is_zero()
        assert parse_sop("1", names=["a"]).is_one()

    def test_paper_fig4(self):
        f = parse_sop("cd + c'd' + abe + a'b'e'")
        assert f.num_vars == 5
        assert f.num_products == 4
        assert f.degree == 3

    def test_variable_order_is_alphabetical(self):
        f = parse_sop("db + ca")
        assert f.names == ["a", "b", "c", "d"]


class TestExplicitNames:
    def test_multichar_names(self):
        f = parse_sop("sel * en + sel' * rst", names=["sel", "en", "rst"])
        assert f.num_products == 2
        assert f.num_vars == 3

    def test_longest_match_wins(self):
        f = parse_sop("ab * a", names=["a", "ab"])
        assert (1, True) in f.literal_set()
        assert (0, True) in f.literal_set()

    def test_ampersand_and_dot_separators(self):
        f = parse_sop("a & b", names=["a", "b"])
        assert f.cubes[0].num_literals == 2
        g = parse_sop("a.b", names=["a", "b"])
        assert g.cubes[0].num_literals == 2


class TestErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse_sop("")

    def test_empty_product(self):
        with pytest.raises(ParseError):
            parse_sop("a + + b")

    def test_unknown_variable(self):
        with pytest.raises(ParseError):
            parse_sop("x", names=["a"])

    def test_contradiction(self):
        with pytest.raises(ParseError):
            parse_sop("aa'")

    def test_dangling_negation(self):
        with pytest.raises(ParseError):
            parse_sop("a + ~", names=["a"])

    def test_uppercase_not_a_default_variable(self):
        with pytest.raises(ParseError):
            parse_sop("A + b")


class TestRoundTrip:
    def test_to_string_parse_round_trip(self):
        for text in ["ab + c'd", "a'b'c' + abc", "a + b + c"]:
            f = parse_sop(text)
            g = parse_sop(f.to_string())
            assert f.equivalent(g)
