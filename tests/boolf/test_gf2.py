"""Tests for GF(2) linear algebra on bitmask vectors."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.boolf.gf2 import (
    dot,
    in_span,
    orthogonal_complement,
    rank,
    row_reduce,
    span_members,
)


class TestDot:
    def test_basic(self):
        assert dot(0b101, 0b100) == 1
        assert dot(0b101, 0b111) == 0
        assert dot(0, 0b111) == 0


class TestRowReduce:
    def test_zero_vectors_dropped(self):
        assert row_reduce([0, 0]) == []

    def test_duplicates_collapse(self):
        assert rank([0b11, 0b11, 0b11]) == 1

    def test_echelon_unique_leads(self):
        basis = row_reduce([0b110, 0b011, 0b101])
        leads = [b.bit_length() - 1 for b in basis]
        assert len(set(leads)) == len(basis)
        # Reduced form: a lead bit appears in exactly one row.
        for i, b in enumerate(basis):
            for j, other in enumerate(basis):
                if i != j:
                    assert not (other >> (b.bit_length() - 1)) & 1

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_span_preserved(self, vectors):
        basis = row_reduce(vectors)
        # Every input vector is in the span of the basis...
        for v in vectors:
            assert in_span(v, basis)
        # ...and every basis vector is a combination of inputs (checked
        # via rank equality).
        assert rank(vectors) == len(basis)
        assert rank(list(vectors) + basis) == len(basis)


class TestOrthogonalComplement:
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_dimension_and_orthogonality(self, vectors):
        num_bits = 8
        basis = row_reduce(vectors)
        comp = orthogonal_complement(basis, num_bits)
        assert len(comp) == num_bits - len(basis)
        for c in comp:
            for b in basis:
                assert dot(c, b) == 0

    def test_complement_of_empty_is_everything(self):
        comp = orthogonal_complement([], 3)
        assert len(comp) == 3
        assert rank(comp) == 3

    def test_complement_of_full_space_is_trivial(self):
        comp = orthogonal_complement([0b001, 0b010, 0b100], 3)
        assert comp == []

    def test_double_complement_restores_space(self):
        basis = row_reduce([0b1100, 0b0110])
        double = orthogonal_complement(
            orthogonal_complement(basis, 4), 4
        )
        assert sorted(double) == sorted(basis)


class TestSpanMembers:
    def test_member_count(self):
        basis = row_reduce([0b01, 0b10])
        assert sorted(span_members(basis)) == [0, 1, 2, 3]

    def test_empty_basis(self):
        assert span_members([]) == [0]

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_members_match_in_span(self, vectors):
        basis = row_reduce(vectors)
        members = set(span_members(basis))
        assert len(members) == 1 << len(basis)
        for m in range(64):
            assert (m in members) == in_span(m, basis)
