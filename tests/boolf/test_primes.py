"""Tests for Quine-McCluskey prime generation."""

import pytest
from hypothesis import given

from repro.boolf import Cube, TruthTable, prime_implicants, is_prime
from tests.conftest import truthtables


def brute_force_primes(tt: TruthTable) -> set[Cube]:
    """Reference: enumerate all cubes, keep the primes."""
    n = tt.num_vars
    implicants = []
    for pos in range(1 << n):
        for neg in range(1 << n):
            if pos & neg:
                continue
            cube = Cube(pos, neg, n)
            if not tt.is_zero() and tt.cube_is_implicant(cube):
                implicants.append(cube)
    primes = set()
    for c in implicants:
        if not any(
            o != c and o.contains(c) for o in implicants
        ):
            primes.add(c)
    return primes


class TestPrimes:
    @given(truthtables(3))
    def test_matches_brute_force(self, tt):
        got = set(prime_implicants(tt))
        want = brute_force_primes(tt) if not tt.is_zero() else set()
        assert got == want

    def test_constant_one(self):
        primes = prime_implicants(TruthTable.ones(3))
        assert primes == [Cube.top(3)]

    def test_constant_zero(self):
        assert prime_implicants(TruthTable.zeros(3)) == []

    def test_xor2(self):
        xor = TruthTable.from_function(lambda b: b[0] ^ b[1], 2)
        primes = prime_implicants(xor)
        assert len(primes) == 2
        assert all(p.num_literals == 2 for p in primes)

    def test_classic_qm_example(self):
        # f(a,b,c,d) with minterms 4,8,10,11,12,15 and dc 9,14 — the
        # canonical QM textbook instance; primes: bd', ab', ac, a'bc'... of
        # which the cover needs bd'+ab'+ac or bd'+ac+a'bc'd'.
        on = TruthTable.from_minterms([4, 8, 10, 11, 12, 15], 4)
        dc = TruthTable.from_minterms([9, 14], 4)
        primes = prime_implicants(on, dc)
        # With the dc set, every onset minterm is covered by some prime of
        # the extended function.
        union = TruthTable.zeros(4)
        for p in primes:
            union = union | TruthTable.from_cube(p)
        assert on.implies(union)
        assert union.implies(on | dc)

    def test_overlapping_on_dc_rejected(self):
        tt = TruthTable.from_minterms([1], 2)
        with pytest.raises(ValueError):
            prime_implicants(tt, tt)

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            prime_implicants(TruthTable.zeros(2), TruthTable.zeros(3))

    @given(truthtables(4))
    def test_primes_cover_function(self, tt):
        primes = prime_implicants(tt)
        union = TruthTable.zeros(4)
        for p in primes:
            union = union | TruthTable.from_cube(p)
        assert union == tt


class TestIsPrime:
    def test_prime_cube(self):
        tt = TruthTable.from_cube(Cube.from_literals([(0, True)], 3))
        assert is_prime(Cube.from_literals([(0, True)], 3), tt)

    def test_non_prime_expandable(self):
        tt = TruthTable.from_cube(Cube.from_literals([(0, True)], 3))
        assert not is_prime(
            Cube.from_literals([(0, True), (1, True)], 3), tt
        )

    def test_non_implicant(self):
        tt = TruthTable.zeros(3)
        assert not is_prime(Cube.top(3), tt)
