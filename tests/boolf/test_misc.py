"""Micro-tests for small helpers not covered elsewhere."""

import pytest

from repro.boolf import Cube, Sop, TruthTable
from repro.boolf.cube import literal_name, parse_literal
from repro.errors import DimensionError


class TestLiteralName:
    def test_default_alphabet(self):
        assert literal_name(0, True) == "a"
        assert literal_name(25, False) == "z'"

    def test_beyond_alphabet(self):
        assert literal_name(26, True) == "x26"
        assert literal_name(30, False) == "x30'"

    def test_custom_names(self):
        assert literal_name(1, True, ["clk", "rst"]) == "rst"

    def test_custom_names_fallback(self):
        # Index beyond the provided names falls back to defaults.
        assert literal_name(2, True, ["clk", "rst"]) == "c"


class TestParseLiteral:
    def test_plain(self):
        assert parse_literal("a", ["a", "b"]) == (0, True)

    def test_apostrophe(self):
        assert parse_literal("b'", ["a", "b"]) == (1, False)

    def test_tilde(self):
        assert parse_literal("~a", ["a"]) == (0, False)

    def test_double_negation(self):
        assert parse_literal("~a'", ["a"]) == (0, True)

    def test_unknown(self):
        with pytest.raises(DimensionError):
            parse_literal("q", ["a"])


class TestSopNames:
    def test_names_preserved_through_ops(self):
        f = Sop([Cube.from_literals([(0, True)], 2)], 2, ["x", "y"])
        assert f.absorbed().names == ["x", "y"]
        assert f.sorted().names == ["x", "y"]
        assert f.irredundant().names == ["x", "y"]

    def test_one_and_zero_names(self):
        assert Sop.one(2, ["x", "y"]).names == ["x", "y"]
        assert Sop.zero(2, ["x", "y"]).names == ["x", "y"]


class TestTruthTableEdges:
    def test_zero_variable_tables(self):
        t = TruthTable.ones(0)
        assert t.is_one()
        assert t.count_ones() == 1
        # dual of constant 1 is constant 0 and vice versa
        assert t.dual().is_zero()
        assert TruthTable.zeros(0).dual().is_one()

    def test_single_variable_dual(self):
        v = TruthTable.variable(0, 1)
        assert v.dual() == v  # a literal is self-dual

    def test_support_of_constant(self):
        assert TruthTable.ones(3).support() == []
