"""Tests for the unate covering solver."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.boolf.cover import CoverBudget, greedy_cover, min_cover


def brute_force_min(columns, rows):
    keys = sorted(columns, key=repr)
    for k in range(len(keys) + 1):
        for combo in itertools.combinations(keys, k):
            covered = frozenset().union(*(columns[c] for c in combo)) if combo else frozenset()
            if rows <= covered:
                return k
    raise AssertionError("uncoverable")


class TestGreedy:
    def test_simple(self):
        columns = {"a": frozenset({1, 2}), "b": frozenset({3})}
        assert set(greedy_cover(columns, frozenset({1, 2, 3}))) == {"a", "b"}

    def test_uncoverable_raises(self):
        with pytest.raises(ValueError):
            greedy_cover({"a": frozenset({1})}, frozenset({1, 2}))

    def test_empty_rows(self):
        assert greedy_cover({"a": frozenset({1})}, frozenset()) == []


class TestMinCover:
    def test_essential_extraction(self):
        columns = {
            "a": frozenset({1}),
            "b": frozenset({1, 2}),
            "c": frozenset({3}),
        }
        cover = min_cover(columns, frozenset({1, 2, 3}))
        assert set(cover) == {"b", "c"}

    def test_uncoverable_raises(self):
        with pytest.raises(ValueError):
            min_cover({"a": frozenset({1})}, frozenset({2}))

    @given(
        st.lists(
            st.frozensets(st.integers(0, 5), min_size=0, max_size=4),
            min_size=1,
            max_size=7,
        )
    )
    def test_optimal_vs_brute_force(self, col_sets):
        columns = {i: cells for i, cells in enumerate(col_sets)}
        rows = frozenset().union(*col_sets) if col_sets else frozenset()
        cover = min_cover(columns, rows)
        covered = frozenset().union(*(columns[c] for c in cover)) if cover else frozenset()
        assert rows <= covered
        assert len(cover) == brute_force_min(columns, rows)

    def test_budget_returns_incumbent(self):
        columns = {i: frozenset({i, (i + 1) % 8}) for i in range(8)}
        budget = CoverBudget(max_nodes=1)
        cover = min_cover(columns, frozenset(range(8)), budget)
        covered = frozenset().union(*(columns[c] for c in cover))
        assert frozenset(range(8)) <= covered

    def test_cyclic_core(self):
        # A cyclic covering instance with no essentials: minimum is 3.
        columns = {
            i: frozenset({i, (i + 1) % 6}) for i in range(6)
        }
        cover = min_cover(columns, frozenset(range(6)))
        assert len(cover) == 3
