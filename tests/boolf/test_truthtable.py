"""Unit and property tests for repro.boolf.truthtable."""

import numpy as np
import pytest
from hypothesis import given

from repro.boolf import Cube, TruthTable
from repro.errors import DimensionError
from tests.conftest import cubes, truthtables


class TestBuilders:
    def test_zeros_ones(self):
        assert TruthTable.zeros(3).is_zero()
        assert TruthTable.ones(3).is_one()
        assert not TruthTable.zeros(3).is_one()

    def test_variable_projection(self):
        v = TruthTable.variable(1, 3)
        for m in range(8):
            assert v.evaluate(m) == bool(m >> 1 & 1)

    def test_from_minterms(self):
        tt = TruthTable.from_minterms([0, 3], 2)
        assert tt.onset() == [0, 3]
        assert tt.offset() == [1, 2]

    def test_from_function(self):
        tt = TruthTable.from_function(lambda bits: bits[0] ^ bits[1], 2)
        assert tt.onset() == [1, 2]

    @given(cubes(4))
    def test_from_cube_matches_evaluate(self, c):
        tt = TruthTable.from_cube(c)
        for m in range(16):
            assert tt.evaluate(m) == c.evaluate(m)

    def test_wrong_shape_rejected(self):
        with pytest.raises(DimensionError):
            TruthTable(np.zeros(5, dtype=bool), 2)

    def test_excessive_vars_rejected(self):
        with pytest.raises(DimensionError):
            TruthTable.zeros(30)


class TestCofactors:
    @given(truthtables(4))
    def test_shannon_expansion(self, tt):
        for var in range(4):
            c0 = tt.restrict(var, False)
            c1 = tt.restrict(var, True)
            x = TruthTable.variable(var, 4)
            recon = (x & c1) | (~x & c0)
            assert recon == tt

    def test_cofactor_drops_variable(self):
        tt = TruthTable.variable(0, 3)
        assert tt.cofactor(0, True).is_one()
        assert tt.cofactor(0, False).is_zero()

    @given(truthtables(4))
    def test_depends_on_consistent_with_support(self, tt):
        sup = tt.support()
        for v in range(4):
            assert (v in sup) == tt.depends_on(v)

    def test_cofactor_out_of_range(self):
        with pytest.raises(DimensionError):
            TruthTable.zeros(2).cofactor(5, True)


class TestDuality:
    @given(truthtables(4))
    def test_dual_involution(self, tt):
        assert tt.dual().dual() == tt

    @given(truthtables(4))
    def test_dual_definition(self, tt):
        d = tt.dual()
        full = (1 << 4) - 1
        for m in range(16):
            assert d.evaluate(m) == (not tt.evaluate(full ^ m))

    def test_self_dual_majority(self):
        maj = TruthTable.from_function(lambda b: b[0] + b[1] + b[2] >= 2, 3)
        assert maj.dual() == maj

    def test_dual_of_and_is_or(self):
        a, b = TruthTable.variable(0, 2), TruthTable.variable(1, 2)
        assert (a & b).dual() == (a | b)


class TestAlgebra:
    @given(truthtables(3), truthtables(3))
    def test_de_morgan(self, f, g):
        assert ~(f & g) == (~f | ~g)
        assert ~(f | g) == (~f & ~g)

    @given(truthtables(3), truthtables(3))
    def test_implies(self, f, g):
        assert (f & g).implies(f)
        assert f.implies(f | g)

    @given(truthtables(3))
    def test_xor_self_is_zero(self, f):
        assert (f ^ f).is_zero()

    def test_sub_is_and_not(self):
        f = TruthTable.from_minterms([0, 1, 2], 2)
        g = TruthTable.from_minterms([1], 2)
        assert (f - g).onset() == [0, 2]

    def test_universe_mismatch(self):
        with pytest.raises(DimensionError):
            TruthTable.zeros(2) & TruthTable.zeros(3)


class TestStructure:
    def test_lift_preserves_function(self):
        tt = TruthTable.variable(0, 2)
        lifted = tt.lift(4)
        for m in range(16):
            assert lifted.evaluate(m) == bool(m & 1)

    def test_lift_shrink_rejected(self):
        with pytest.raises(DimensionError):
            TruthTable.zeros(3).lift(2)

    def test_permute_swap(self):
        tt = TruthTable.variable(0, 2)
        swapped = tt.permute([1, 0])
        assert swapped == TruthTable.variable(1, 2)

    def test_permute_invalid(self):
        with pytest.raises(DimensionError):
            TruthTable.zeros(2).permute([0, 0])

    @given(truthtables(3))
    def test_permute_identity(self, tt):
        assert tt.permute([0, 1, 2]) == tt

    def test_cube_is_implicant(self):
        tt = TruthTable.from_minterms([2, 3], 2)  # f = b
        assert tt.cube_is_implicant(Cube.from_literals([(1, True)], 2))
        assert not tt.cube_is_implicant(Cube.from_literals([(0, True)], 2))

    @given(truthtables(3))
    def test_key_is_stable(self, tt):
        assert tt.key() == tt.key()
        copy = TruthTable(tt.values.copy(), tt.num_vars)
        assert copy.key() == tt.key()

    def test_count_ones(self):
        assert TruthTable.from_minterms([1, 5, 7], 3).count_ones() == 3

    def test_compose_complement_inputs(self):
        tt = TruthTable.variable(0, 2)
        comp = tt.compose_complement_inputs()
        for m in range(4):
            assert comp.evaluate(m) == tt.evaluate(3 ^ m)

    def test_random_density(self, rng):
        dense = TruthTable.random(8, rng, density=0.9)
        sparse = TruthTable.random(8, rng, density=0.1)
        assert dense.count_ones() > sparse.count_ones()

    def test_iter_and_repr(self):
        tt = TruthTable.from_minterms([1], 2)
        assert list(tt) == [False, True, False, False]
        assert "TruthTable" in repr(tt)
        assert "ones" in repr(TruthTable.zeros(7))
