"""Tests for the Minato-Morreale ISOP computation."""

import pytest
from hypothesis import given

from repro.boolf import TruthTable, isop, isop_interval
from repro.boolf.primes import is_prime
from tests.conftest import truthtables


class TestIsop:
    @given(truthtables(4))
    def test_cover_equals_function(self, tt):
        cover = isop(tt)
        assert cover.to_truthtable() == tt

    @given(truthtables(3))
    def test_cover_is_irredundant(self, tt):
        cover = isop(tt)
        assert cover.is_irredundant()

    @given(truthtables(3))
    def test_cubes_are_primes(self, tt):
        for cube in isop(tt).cubes:
            assert is_prime(cube, tt)

    def test_constant_zero(self):
        assert isop(TruthTable.zeros(3)).num_products == 0

    def test_constant_one(self):
        cover = isop(TruthTable.ones(3))
        assert cover.num_products == 1
        assert cover.cubes[0].is_tautology()

    def test_zero_vars(self):
        assert isop(TruthTable.ones(0)).num_products == 1
        assert isop(TruthTable.zeros(0)).num_products == 0

    def test_single_variable(self):
        cover = isop(TruthTable.variable(2, 4))
        assert cover.num_products == 1
        assert cover.cubes[0].num_literals == 1

    def test_xor_needs_two_products(self):
        xor = TruthTable.from_function(lambda b: b[0] ^ b[1], 2)
        assert isop(xor).num_products == 2

    def test_names_carried(self):
        cover = isop(TruthTable.variable(0, 2), names=["x", "y"])
        assert cover.to_string() == "x"


class TestIsopInterval:
    @given(truthtables(4), truthtables(4))
    def test_cover_within_interval(self, a, b):
        lower = a & b
        upper = a | b
        cover = isop_interval(lower, upper)
        tt = cover.to_truthtable()
        assert lower.implies(tt)
        assert tt.implies(upper)

    def test_dont_cares_reduce_products(self):
        # f = minterms {0, 3}; dc {1, 2}: a single tautology cube suffices.
        lower = TruthTable.from_minterms([0, 3], 2)
        upper = TruthTable.ones(2)
        cover = isop_interval(lower, upper)
        assert cover.num_products == 1

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            isop_interval(TruthTable.ones(2), TruthTable.zeros(2))

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            isop_interval(TruthTable.zeros(2), TruthTable.ones(3))
