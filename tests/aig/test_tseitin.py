"""Tests for Tseitin encoding and miter-based equivalence checking."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig import Aig, equivalent_sat, miter, tseitin
from repro.boolf import Sop, TruthTable
from repro.errors import EncodingError
from repro.sat import CdclSolver


def random_table(num_vars: int, seed: int) -> TruthTable:
    rng = np.random.default_rng(seed)
    return TruthTable.random(num_vars, rng)


class TestTseitin:
    def test_single_and_gate_models(self):
        aig = Aig(2)
        f = aig.and_(aig.input_lit(0), aig.input_lit(1))
        cnf, out, var_map = tseitin(aig, f)
        # Project models on the inputs with output asserted.
        models = 0
        for bits in itertools.product([False, True], repeat=2):
            solver = CdclSolver()
            for clause in cnf:
                solver.add_clause(clause)
            solver.add_clause([out])
            assumptions = [
                var_map[i + 1] if bit else -var_map[i + 1]
                for i, bit in enumerate(bits)
            ]
            if solver.solve(assumptions).is_sat:
                models += 1
                assert all(bits)
        assert models == 1

    def test_encoding_agrees_with_simulation(self):
        sop = Sop.from_string("ab + c'd + a'd'")
        aig = Aig(4)
        f = aig.from_sop(sop)
        cnf, out, var_map = tseitin(aig, f)
        for m in range(16):
            solver = CdclSolver()
            for clause in cnf:
                solver.add_clause(clause)
            assumptions = [
                var_map[i + 1] if m >> i & 1 else -var_map[i + 1]
                for i in range(4)
            ]
            result = solver.solve(assumptions)
            assert result.is_sat  # circuit consistency is always satisfiable
            assert result.value(abs(out)) == (
                aig.evaluate(f, m) if out > 0 else not aig.evaluate(f, m)
            )

    def test_shared_cone_encoded_once(self):
        aig = Aig(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        f = aig.and_(a, b)
        g = aig.or_(f, a)
        cnf, _, var_map = tseitin(aig, f)
        clause_count = cnf.num_clauses
        tseitin(aig, g, cnf, var_map)
        # The AND node is reused, only the OR node's 3 clauses are new.
        assert cnf.num_clauses == clause_count + 3


class TestMiter:
    def test_equivalent_functions(self):
        aig = Aig(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        left = aig.and_(a, aig.or_(b, c))
        right = aig.or_(aig.and_(a, b), aig.and_(a, c))
        # Structural hashing may or may not collapse them; SAT must say
        # equivalent either way.
        eq, cex = equivalent_sat(aig, left, right)
        assert eq and cex is None

    def test_inequivalent_functions_give_counterexample(self):
        aig = Aig(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        f, g = aig.and_(a, b), aig.or_(a, b)
        eq, cex = equivalent_sat(aig, f, g)
        assert not eq
        assert aig.evaluate(f, cex) != aig.evaluate(g, cex)

    def test_miter_on_identical_literal(self):
        aig = Aig(1)
        x = aig.input_lit(0)
        cnf, _ = miter(aig, x, x)
        solver = CdclSolver()
        ok = True
        for clause in cnf:
            ok = solver.add_clause(clause) and ok
        assert not ok or solver.solve().is_unsat

    def test_budget_exhaustion_raises(self):
        # An UNSAT miter (equivalent functions, structurally different)
        # needs conflicts to refute; a zero budget must raise, not guess.
        tt = TruthTable.from_minterms([3, 5, 6, 7], 3)  # majority
        aig = Aig(3)
        f = aig.from_truthtable(tt)
        g = aig.from_sop(Sop.from_string("ab + ac + bc"))
        with pytest.raises(EncodingError):
            equivalent_sat(aig, f, g, max_conflicts=0)

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_sat_equivalence_matches_truthtables(self, num_vars, seed_a, seed_b):
        ta, tb = random_table(num_vars, seed_a), random_table(num_vars, seed_b)
        aig = Aig(num_vars)
        fa, fb = aig.from_truthtable(ta), aig.from_truthtable(tb)
        eq, cex = equivalent_sat(aig, fa, fb)
        assert eq == (ta == tb)
        if not eq:
            assert ta.evaluate(cex) != tb.evaluate(cex)


class TestLatticeCrossCheck:
    def test_lattice_solution_verified_through_aig_miter(self):
        # Second, fully independent verification pipeline for a JANUS
        # solution: lattice truth table -> AIG vs target SOP -> AIG, SAT
        # equivalence on the miter.
        from repro.core import JanusOptions, make_spec, synthesize

        spec = make_spec("ab + a'c", name="crosscheck")
        result = synthesize(spec, options=JanusOptions(max_conflicts=20_000))
        realized = result.assignment.realized_truthtable()
        aig = Aig(spec.num_inputs)
        f = aig.from_truthtable(realized)
        g = aig.from_sop(spec.isop)
        eq, _ = equivalent_sat(aig, f, g)
        assert eq
