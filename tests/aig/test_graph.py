"""Unit tests for the AIG manager."""

import pytest

from repro.aig import Aig
from repro.boolf import Cube, Sop, TruthTable
from repro.errors import DimensionError


class TestNormalization:
    def test_constants(self):
        aig = Aig(2)
        x = aig.input_lit(0)
        assert aig.and_(x, aig.false) == aig.false
        assert aig.and_(x, aig.true) == x
        assert aig.and_(x, x) == x
        assert aig.and_(x, aig.negate(x)) == aig.false

    def test_structural_hashing(self):
        aig = Aig(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        assert aig.and_(a, b) == aig.and_(b, a)
        before = aig.num_ands()
        aig.and_(a, b)
        assert aig.num_ands() == before

    def test_or_demorgan(self):
        aig = Aig(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        f = aig.or_(a, b)
        for m in range(4):
            assert aig.evaluate(f, m) == bool(m & 1 or m & 2)

    def test_xor_and_mux(self):
        aig = Aig(3)
        a, b, s = aig.input_lit(0), aig.input_lit(1), aig.input_lit(2)
        x = aig.xor_(a, b)
        mx = aig.mux(s, a, b)
        for m in range(8):
            bits = [bool(m >> i & 1) for i in range(3)]
            assert aig.evaluate(x, m) == (bits[0] ^ bits[1])
            assert aig.evaluate(mx, m) == (bits[0] if bits[2] else bits[1])

    def test_input_out_of_range(self):
        with pytest.raises(DimensionError):
            Aig(2).input_lit(2)


class TestBuilders:
    def test_from_cube(self):
        cube = Cube.from_literals([(0, True), (2, False)], 3)
        aig = Aig(3)
        lit = aig.from_cube(cube)
        assert aig.to_truthtable(lit) == TruthTable.from_cube(cube)

    def test_from_sop(self):
        sop = Sop.from_string("ab + a'c")
        aig = Aig(3)
        lit = aig.from_sop(sop)
        assert aig.to_truthtable(lit) == sop.to_truthtable()

    def test_from_truthtable_roundtrip(self):
        tt = TruthTable.from_minterms([1, 2, 7, 11], 4)
        aig = Aig(4)
        lit = aig.from_truthtable(tt)
        assert aig.to_truthtable(lit) == tt

    def test_universe_mismatch(self):
        aig = Aig(2)
        with pytest.raises(DimensionError):
            aig.from_sop(Sop.from_string("abc"))


class TestStructure:
    def test_cone_topological(self):
        aig = Aig(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        f = aig.or_(aig.and_(a, b), aig.xor_(a, b))
        order = aig.cone(f)
        position = {node: i for i, node in enumerate(order)}
        for node in order:
            if aig.is_and(node):
                fa, fb = aig.fanins(node)
                assert position[fa >> 1] < position[node]
                assert position[fb >> 1] < position[node]

    def test_cone_size_counts_only_ands(self):
        aig = Aig(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        assert aig.cone_size(a) == 0
        assert aig.cone_size(aig.and_(a, b)) == 1

    def test_shared_subgraph_counted_once(self):
        aig = Aig(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        shared = aig.and_(a, b)
        f = aig.or_(aig.and_(shared, c), aig.and_(shared, aig.negate(c)))
        nodes = [n for n in aig.cone(f) if aig.is_and(n)]
        assert len(set(nodes)) == len(nodes)
