"""Tests for BLIF reading and writing."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig import Aig, BlifModel, read_blif, write_blif
from repro.boolf import TruthTable
from repro.errors import DimensionError

MAJORITY = """\
# 3-input majority
.model maj
.inputs a b c
.outputs f
.names a b t1
11 1
.names b c t2
11 1
.names a c t3
11 1
.names t1 t2 t3 f
1-- 1
-1- 1
--1 1
.end
"""


class TestRead:
    def test_majority(self):
        model = read_blif(io.StringIO(MAJORITY))
        assert model.name == "maj"
        assert model.input_names == ["a", "b", "c"]
        tt = model.output_truthtable("f")
        assert tt == TruthTable.from_minterms([3, 5, 6, 7], 3)

    def test_offset_cover(self):
        text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        model = read_blif(io.StringIO(text))
        # off-set cover: f = NOT(a AND b)
        assert model.output_truthtable("f") == ~TruthTable.from_minterms([3], 2)

    def test_constant_nodes(self):
        text = (
            ".model m\n.inputs a\n.outputs one zero\n"
            ".names one\n1\n.names zero\n.end\n"
        )
        model = read_blif(io.StringIO(text))
        assert model.output_truthtable("one").is_one()
        assert model.output_truthtable("zero").is_zero()

    def test_dont_care_columns(self):
        text = ".model m\n.inputs a b c\n.outputs f\n.names a b c f\n1-0 1\n.end\n"
        model = read_blif(io.StringIO(text))
        expected = TruthTable.from_function(
            lambda bits: bits[0] and not bits[2], 3
        )
        assert model.output_truthtable("f") == expected

    def test_line_continuation_and_comments(self):
        text = (
            ".model m\n.inputs \\\na b\n.outputs f # trailing\n"
            ".names a b f\n11 1\n.end\n"
        )
        model = read_blif(io.StringIO(text))
        assert model.input_names == ["a", "b"]

    def test_nodes_in_any_order(self):
        text = (
            ".model m\n.inputs a b\n.outputs f\n"
            ".names t f\n1 1\n.names a b t\n11 1\n.end\n"
        )
        model = read_blif(io.StringIO(text))
        assert model.output_truthtable("f") == TruthTable.from_minterms([3], 2)

    def test_cycle_rejected(self):
        text = (
            ".model m\n.inputs a\n.outputs f\n"
            ".names f a g\n11 1\n.names g a f\n11 1\n.end\n"
        )
        with pytest.raises(DimensionError):
            read_blif(io.StringIO(text))

    def test_undriven_signal_rejected(self):
        text = ".model m\n.inputs a\n.outputs f\n.names ghost f\n1 1\n.end\n"
        with pytest.raises(DimensionError):
            read_blif(io.StringIO(text))

    def test_latch_rejected(self):
        text = ".model m\n.inputs a\n.outputs f\n.latch a f 0\n.end\n"
        with pytest.raises(DimensionError):
            read_blif(io.StringIO(text))

    def test_mixed_polarity_rejected(self):
        text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n"
        with pytest.raises(DimensionError):
            read_blif(io.StringIO(text))


class TestWriteRoundtrip:
    def roundtrip(self, model: BlifModel) -> BlifModel:
        buf = io.StringIO()
        write_blif(model, buf)
        buf.seek(0)
        return read_blif(buf)

    def test_majority_roundtrip(self):
        model = read_blif(io.StringIO(MAJORITY))
        again = self.roundtrip(model)
        assert again.input_names == model.input_names
        assert again.output_truthtable("f") == model.output_truthtable("f")

    def test_constant_outputs(self):
        aig = Aig(1)
        model = BlifModel(
            "m", aig, ["a"], {"one": aig.true, "zero": aig.false}
        )
        again = self.roundtrip(model)
        assert again.output_truthtable("one").is_one()
        assert again.output_truthtable("zero").is_zero()

    def test_passthrough_and_inverter(self):
        aig = Aig(1)
        x = aig.input_lit(0)
        model = BlifModel("m", aig, ["a"], {"buf": x, "inv": x ^ 1})
        again = self.roundtrip(model)
        assert again.output_truthtable("buf") == TruthTable.variable(0, 1)
        assert again.output_truthtable("inv") == ~TruthTable.variable(0, 1)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_multioutput_roundtrip(self, num_vars, seed, num_outputs):
        rng = np.random.default_rng(seed)
        aig = Aig(num_vars)
        outputs = {}
        for k in range(num_outputs):
            tt = TruthTable.random(num_vars, rng)
            outputs[f"o{k}"] = aig.from_truthtable(tt)
        names = [f"x{i}" for i in range(num_vars)]
        model = BlifModel("rand", aig, names, outputs)
        again = self.roundtrip(model)
        for name, lit in outputs.items():
            assert again.output_truthtable(name) == aig.to_truthtable(lit)
