"""Robustness fuzzing of the text-format parsers.

Two properties for each parser (SOP expressions, DIMACS, PLA, DRAT,
BLIF): round-trips are lossless on valid inputs, and arbitrary junk
either parses or raises one of the library's typed errors — never an
uncontrolled exception (KeyError, IndexError, ...).
"""

import io

from hypothesis import given, settings, strategies as st

from repro.boolf import Sop, parse_sop, read_pla
from repro.errors import ReproError
from repro.sat import Cnf, VarPool, read_dimacs, write_dimacs
from repro.sat.drat import read_drat
from repro.aig import read_blif

ACCEPTED_ERRORS = (ReproError, ValueError)


def junk_text():
    return st.text(
        alphabet=st.sampled_from(
            list("abcdef'+~ .01-\n\t|&x123456789pcnfdmoile")
        ),
        max_size=120,
    )


class TestSopParser:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            parse_sop(text)
        except ACCEPTED_ERRORS:
            pass

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=4), st.booleans()
                ),
                min_size=1,
                max_size=4,
                unique_by=lambda lit: lit[0],
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_through_text(self, cube_specs):
        from repro.boolf import Cube

        cubes = [Cube.from_literals(lits, 5) for lits in cube_specs]
        sop = Sop(cubes, 5)
        again = parse_sop(sop.to_string(), names=["a", "b", "c", "d", "e"])
        assert again.to_truthtable() == sop.to_truthtable()


class TestDimacs:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            read_dimacs(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=-6, max_value=6).filter(bool),
                min_size=1,
                max_size=4,
            ),
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, clauses):
        pool = VarPool()
        for _ in range(6):
            pool.fresh()
        cnf = Cnf(pool)
        for clause in clauses:
            cnf.add(clause)
        text = write_dimacs(cnf, comment="fuzz roundtrip")
        again = read_dimacs(io.StringIO(text))
        assert [sorted(c) for c in again] == [sorted(c) for c in cnf]


class TestDrat:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            read_drat(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass


class TestPla:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            read_pla(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass


class TestBlif:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            read_blif(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass
