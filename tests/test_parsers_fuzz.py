"""Robustness fuzzing of the text-format parsers.

Two properties for each parser (SOP expressions, DIMACS, PLA, DRAT,
BLIF): round-trips are lossless on valid inputs, and arbitrary junk
either parses or raises one of the library's typed errors — never an
uncontrolled exception (KeyError, IndexError, ...).
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolf import Sop, parse_sop, read_pla
from repro.errors import ParseError, ReproError
from repro.sat import Cnf, VarPool, read_dimacs, write_dimacs
from repro.sat.drat import read_drat
from repro.aig import read_blif

ACCEPTED_ERRORS = (ReproError, ValueError)


def junk_text():
    return st.text(
        alphabet=st.sampled_from(
            list("abcdef'+~ .01-\n\t|&x123456789pcnfdmoile")
        ),
        max_size=120,
    )


def directive_lines(keywords):
    """Directive-shaped junk: real keywords with malformed operand lists.

    Plain character soup rarely spells a directive, so this strategy aims
    straight at the crash class the parsers must survive: a recognized
    keyword followed by missing, extra, non-integer, negative or absurdly
    large operands.
    """
    operands = st.sampled_from(
        ["", " ", " 3", " -1", " x", " 0", " 99999999999999999", " 3 4", " fr", " a b"]
    )
    line = st.tuples(st.sampled_from(keywords), operands).map("".join)
    return st.lists(line, max_size=8).map("\n".join)


PLA_KEYWORDS = [".i", ".o", ".p", ".type", ".ilb", ".ob", ".e", ".end", ".mv"]
DIMACS_KEYWORDS = ["p cnf", "p", "c", "%", "1 2 0", "0"]
BLIF_KEYWORDS = [
    ".model", ".inputs", ".outputs", ".names", ".end", ".latch", "1", "11 1", "-"
]


class TestSopParser:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            parse_sop(text)
        except ACCEPTED_ERRORS:
            pass

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=4), st.booleans()
                ),
                min_size=1,
                max_size=4,
                unique_by=lambda lit: lit[0],
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_through_text(self, cube_specs):
        from repro.boolf import Cube

        cubes = [Cube.from_literals(lits, 5) for lits in cube_specs]
        sop = Sop(cubes, 5)
        again = parse_sop(sop.to_string(), names=["a", "b", "c", "d", "e"])
        assert again.to_truthtable() == sop.to_truthtable()


class TestDimacs:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            read_dimacs(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass

    @given(directive_lines(DIMACS_KEYWORDS))
    @settings(max_examples=150, deadline=None)
    def test_directive_junk_never_crashes(self, text):
        try:
            read_dimacs(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass

    @pytest.mark.parametrize(
        "text",
        [
            "p cnf",
            "p cnf 1",
            "p cnf x 2",
            "p cnf -1 2",
            "p cnf 1 -2",
            "p cnf 999999999999 1",  # must refuse, not allocate/hang
            "p cnf 1 1\n999999999999 0",  # oversized literal: same guard
            "p cnf 2 1\n1 a 0",
        ],
    )
    def test_malformed_raises_parse_error(self, text):
        with pytest.raises(ParseError):
            read_dimacs(io.StringIO(text))

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=-6, max_value=6).filter(bool),
                min_size=1,
                max_size=4,
            ),
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, clauses):
        pool = VarPool()
        for _ in range(6):
            pool.fresh()
        cnf = Cnf(pool)
        for clause in clauses:
            cnf.add(clause)
        text = write_dimacs(cnf, comment="fuzz roundtrip")
        again = read_dimacs(io.StringIO(text))
        assert [sorted(c) for c in again] == [sorted(c) for c in cnf]


class TestDrat:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            read_drat(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass


class TestPla:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            read_pla(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass

    @given(directive_lines(PLA_KEYWORDS))
    @settings(max_examples=150, deadline=None)
    def test_directive_junk_never_crashes(self, text):
        try:
            read_pla(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass

    @pytest.mark.parametrize(
        "text",
        [
            ".o",  # the seed-red fuzz input: directive with no operand
            ".i",
            ".i 3 4",
            ".i x",
            ".i -1",
            ".i 99999999999",
            ".p x",
            ".type",
            ".type zz",
        ],
    )
    def test_malformed_directive_raises_parse_error(self, text):
        with pytest.raises(ParseError):
            read_pla(io.StringIO(text + "\n"))


class TestBlif:
    @given(junk_text())
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_uncontrolled(self, text):
        try:
            read_blif(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass

    @given(directive_lines(BLIF_KEYWORDS))
    @settings(max_examples=150, deadline=None)
    def test_directive_junk_never_crashes(self, text):
        try:
            read_blif(io.StringIO(text))
        except ACCEPTED_ERRORS:
            pass

    @pytest.mark.parametrize(
        "text",
        [
            ".names",  # output name missing
            "11 1",  # cover row before any .names
            ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end",
            ".model m\n.inputs a\n.outputs f\n.names f\n1 1\n.end",
            ".model m\n.inputs a\n.outputs f\n.names a f\n12 1\n.end",
        ],
    )
    def test_malformed_raises_parse_error(self, text):
        with pytest.raises(ParseError):
            read_blif(io.StringIO(text))

    def test_deep_chain_no_recursion_error(self):
        # A buffer chain thousands of gates long is a legitimate netlist;
        # the iterative elaborator must not hit the recursion limit.
        depth = 2000
        lines = [".model chain", ".inputs a", ".outputs f", ".names a n0", "1 1"]
        for i in range(1, depth):
            lines.append(f".names n{i - 1} n{i}")
            lines.append("1 1")
        lines.append(f".names n{depth - 1} f")
        lines.append("1 1")
        lines.append(".end")
        model = read_blif(io.StringIO("\n".join(lines)))
        tt = model.output_truthtable("f")
        assert list(tt.values) == [False, True]
