"""The difficulty ladder: numbered levels -> concrete family parameters.

Levels 0..4 scale each family from smoke-test size (level 0 probes
answer in milliseconds) to sizes where the dichotomic search does real
work.  The tables below are the single source of truth; ``janus gen``
and the benchmarks resolve ``(kind, level)`` through :func:`make_family`
so a level means the same instance everywhere.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ValidationError
from repro.gen.families import (
    AutosymmetricFamily,
    DReducibleFamily,
    Family,
    FaultFamily,
    MultiOutputFamily,
    PlaCoverFamily,
    RandomTruthTableFamily,
)

__all__ = ["FAMILY_KINDS", "LEVELS", "ladder", "make_family"]

LEVELS: tuple[int, ...] = (0, 1, 2, 3, 4)

# Per-level parameters, indexed by level.  Dense random functions blow
# up fast with input count (a random 5-input function at density 0.5 is
# already a multi-minute dichotomic search), so wider levels thin the
# on-set — difficulty still climbs, but smoothly enough that levels 0-1
# stay smoke-test cheap and level 2 is tractable on one core.
_RANDOM = (  # (num_inputs, density)
    (3, 0.5),
    (4, 0.5),
    (5, 0.375),
    (6, 0.3125),
    (7, 0.25),
)
_PLA = (  # (num_inputs, num_cubes, degree, dc_fraction)
    (4, 2, 2, 0.0),
    (5, 3, 3, 0.125),
    (6, 4, 3, 0.125),
    (7, 5, 4, 0.25),
    (8, 7, 4, 0.25),
)
_AUTO = ((4, 1), (4, 2), (5, 2), (6, 3), (7, 3))  # (num_inputs, k)
_DRED = ((4, 2), (4, 3), (5, 3), (6, 4), (7, 5))  # (num_inputs, hull_dim)
_MULTI = ((3, 2), (4, 3), (4, 4), (5, 4), (5, 6))  # (num_inputs, outputs)
_FAULT_INPUTS = (3, 3, 4, 4, 5)


def _random_tt(level: int) -> Family:
    n, density = _RANDOM[level]
    return RandomTruthTableFamily(level=level, num_inputs=n, density=density)


def _pla(level: int) -> Family:
    n, cubes, degree, dc = _PLA[level]
    return PlaCoverFamily(
        level=level, num_inputs=n, num_cubes=cubes, degree=degree,
        dc_fraction=dc,
    )


def _autosymmetric(level: int) -> Family:
    n, k = _AUTO[level]
    return AutosymmetricFamily(level=level, num_inputs=n, autosymmetry=k)


def _dreducible(level: int) -> Family:
    n, d = _DRED[level]
    return DReducibleFamily(level=level, num_inputs=n, hull_dim=d)


def _multi(level: int) -> Family:
    n, outputs = _MULTI[level]
    return MultiOutputFamily(level=level, num_inputs=n, num_outputs=outputs)


def _fault(level: int) -> Family:
    return FaultFamily(level=level, num_inputs=_FAULT_INPUTS[level])


FAMILY_KINDS: dict[str, Callable[[int], Family]] = {
    "random-tt": _random_tt,
    "pla-cover": _pla,
    "autosymmetric": _autosymmetric,
    "d-reducible": _dreducible,
    "multi-output": _multi,
    "fault": _fault,
}


def make_family(kind: str, level: int) -> Family:
    """Resolve a ``(kind, level)`` pair to a parameterized family."""
    factory = FAMILY_KINDS.get(kind)
    if factory is None:
        raise ValidationError(
            f"unknown family kind {kind!r}; known: {sorted(FAMILY_KINDS)}"
        )
    if level not in LEVELS:
        raise ValidationError(
            f"unknown ladder level {level!r}; known: {list(LEVELS)}"
        )
    return factory(level)


def ladder(
    kinds: Optional[Sequence[str]] = None,
    levels: Iterable[int] = (0, 1),
    count: int = 1,
    base_seed: int = 0,
) -> list[tuple[Family, int]]:
    """Enumerate ``(family, seed)`` pairs across kinds and levels.

    The canonical way to build a mixed workload: for every kind and
    level, ``count`` consecutive seeds starting at ``base_seed``.  Order
    is deterministic (kinds in registry order, then level, then seed).
    """
    if kinds is None:
        kinds = list(FAMILY_KINDS)
    out: list[tuple[Family, int]] = []
    for kind in kinds:
        for level in levels:
            family = make_family(kind, level)
            for i in range(count):
                out.append((family, base_seed + i))
    return out
