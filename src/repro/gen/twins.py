"""SAT/UNSAT twin pairs at the realizability frontier.

The NeuroSAT-style benchmark construction (sample until UNSAT, flip one
literal for the SAT twin) translated to lattice synthesis: synthesize a
spec to its minimal shape ``(rows, cols)`` — realizable there by
construction — then flip seeded minterms of the function until the
flipped function is *unrealizable at that same shape*.  The pair brackets
the realizability frontier exactly, which is the hardest regime for the
probe layer: one decisive SAT and one decisive UNSAT at the same bound.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.errors import SynthesisError
from repro.boolf.truthtable import TruthTable
from repro.core.target import TargetSpec
from repro.gen.families import MAX_DRAWS

__all__ = ["TwinPair", "make_twins"]


@dataclass(frozen=True)
class TwinPair:
    """A frontier pair: ``sat`` is realizable at ``rows x cols`` (it is
    the shape JANUS found minimal), ``unsat`` provably is not."""

    sat: TargetSpec
    unsat: TargetSpec
    rows: int
    cols: int

    @property
    def shape(self) -> str:
        return f"{self.rows}x{self.cols}"


def _decide(spec: TargetSpec, rows: int, cols: int, options) -> str:
    from repro.core.janus import solve_lm
    from repro.core.structural import structural_check

    if not structural_check(spec, rows, cols):
        return "unsat"
    return solve_lm(spec, rows, cols, options).status


def make_twins(
    spec: TargetSpec,
    rng: np.random.Generator,
    options=None,
    max_flips: int = MAX_DRAWS,
) -> TwinPair:
    """Build the twin pair for one spec.

    ``rng`` is the caller-injected stream (families provide
    ``family.rng(seed, stream=1)`` so twin construction never perturbs
    the sampling stream).  Flipped candidates are tried in stream order;
    each is checked for unrealizability at the base shape with a full
    decisive probe, so the construction is deterministic and the UNSAT
    label is a proof, not a guess.  Raises
    :class:`~repro.errors.SynthesisError` when no flip within
    ``max_flips`` breaks realizability (a sign the shape has slack —
    rare at minimal shapes).
    """
    from repro.core.janus import JanusOptions, synthesize

    if options is None:
        options = JanusOptions(max_conflicts=50_000)
    base = synthesize(spec, name=spec.name, options=options)
    rows, cols = base.rows, base.cols
    n = spec.num_inputs
    sat_spec = dataclasses.replace(spec, name=f"{spec.name}+sat")
    tried: set[int] = set()
    for _ in range(max_flips):
        minterm = int(rng.integers(0, 1 << n))
        if minterm in tried:
            continue
        tried.add(minterm)
        flipped = spec.tt.values.copy()
        flipped[minterm] ^= True
        tt = TruthTable(flipped, n)
        if tt.is_zero() or tt.is_one():
            continue
        twin = TargetSpec.from_truthtable(tt, name=f"{spec.name}+unsat")
        if _decide(twin, rows, cols, options) == "unsat":
            return TwinPair(sat=sat_spec, unsat=twin, rows=rows, cols=cols)
    raise SynthesisError(
        f"no unsat twin for {spec.name} at {rows}x{cols} within "
        f"{max_flips} minterm flips"
    )
