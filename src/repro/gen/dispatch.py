"""Learned portfolio dispatch: instance classes -> winning backend:preset.

PR 7's portfolio mode races the eager encoding under several solver
presets plus the lazy CEGAR backend and takes the first decisive answer,
tallying the winner in ``EngineStats.preset_wins``.  This module closes
the loop: specs are classified by cheap structural features
(:func:`classify`), win tallies are accumulated *per class* in a
:class:`DispatchTable`, and once a class has enough one-sided evidence
the engine launches only the learned winner instead of the whole race —
one probe instead of ``len(presets) + 1``.  An indecisive learned probe
falls back to the blind race, so dispatch can reduce work but never
change answerability.

The table persists as a small JSON document (atomic rename on save), so
a server or bench run warms it for the next one::

    {"kind": "dispatch_table", "version": 1,
     "classes": {"in=4|pi<=4|deg<=2|plain": {"eager:agile": 7}}}

This module deliberately imports nothing from :mod:`repro.engine` — the
engine imports *us*.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Optional, Union

from repro.errors import CacheError
from repro.core.target import TargetSpec

__all__ = ["DispatchTable", "classify"]

DISPATCH_KIND = "dispatch_table"
DISPATCH_VERSION = 1

#: Symmetry-class detection costs a pass over the full truth table, so
#: it is only folded into the class key for functions this small;
#: wider specs share the ``wide`` symmetry bucket.
SYMMETRY_LIMIT = 8

_PI_EDGES = (2, 4, 8, 16)
_DEGREE_EDGES = (2, 4, 6)


def _bucket(value: int, edges: tuple[int, ...]) -> str:
    for edge in edges:
        if value <= edge:
            return f"<={edge}"
    return f">{edges[-1]}"


def classify(spec: TargetSpec) -> str:
    """The spec's dispatch class: cheap features, stable across runs.

    Inputs, cover size and degree are bucketed (exact counts would
    shatter the classes and nothing would ever reach the evidence
    threshold); the symmetry feature separates autosymmetric and
    D-reducible structure, which is exactly what the lazy backend and
    the clause-hoarding presets react to.
    """
    from repro.core.autosymmetric import autosymmetry_degree
    from repro.core.dreducible import is_dreducible

    n = spec.num_inputs
    if spec.is_constant:
        sym = "const"
    elif n > SYMMETRY_LIMIT:
        sym = "wide"
    elif autosymmetry_degree(spec.tt) > 0:
        sym = "auto"
    elif is_dreducible(spec.tt):
        sym = "dred"
    else:
        sym = "plain"
    return (
        f"in={n}|pi{_bucket(spec.num_products, _PI_EDGES)}"
        f"|deg{_bucket(spec.degree, _DEGREE_EDGES)}|{sym}"
    )


class DispatchTable:
    """Per-class win tallies with a decision rule and JSON persistence.

    ``best`` returns a label only once the class has ``min_wins`` wins
    for its leader *and* the leader holds at least ``min_share`` of the
    class total — thin or contested evidence keeps the blind race.  All
    mutation is lock-guarded (server sessions share one table across
    threads); concurrent savers last-write-win through an atomic
    ``os.replace``.
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        min_wins: int = 3,
        min_share: float = 0.6,
    ) -> None:
        self.path = Path(path).expanduser() if path is not None else None
        self.min_wins = max(1, int(min_wins))
        self.min_share = float(min_share)
        self._lock = threading.Lock()
        self._classes: dict[str, dict[str, int]] = {}
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # -------------------------------------------------------------- tallies
    def record(self, key: str, label: str, count: int = 1) -> None:
        """Credit ``label`` (``backend:preset``) with wins for a class."""
        with self._lock:
            wins = self._classes.setdefault(str(key), {})
            wins[str(label)] = wins.get(str(label), 0) + int(count)

    def wins(self, key: str) -> dict[str, int]:
        with self._lock:
            return dict(self._classes.get(key, {}))

    def best(self, key: str) -> Optional[str]:
        """The learned rule for a class, or ``None`` while evidence is
        thin or contested (ties break to the lexicographically smallest
        label, so the rule is deterministic given the tallies)."""
        with self._lock:
            wins = self._classes.get(key)
            if not wins:
                return None
            label = max(sorted(wins), key=lambda k: wins[k])
            top, total = wins[label], sum(wins.values())
            if top < self.min_wins or top < self.min_share * total:
                return None
            return label

    def __len__(self) -> int:
        with self._lock:
            return len(self._classes)

    # ---------------------------------------------------------- persistence
    def to_payload(self) -> dict:
        with self._lock:
            return {
                "kind": DISPATCH_KIND,
                "version": DISPATCH_VERSION,
                "classes": {
                    key: dict(sorted(wins.items()))
                    for key, wins in sorted(self._classes.items())
                },
            }

    def to_json(self) -> str:
        """Canonical form: sorted keys, compact separators."""
        return json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        )

    def _load(self, path: Path) -> None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CacheError(f"unreadable dispatch table {path}: {exc}")
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != DISPATCH_KIND
            or payload.get("version") != DISPATCH_VERSION
        ):
            raise CacheError(
                f"{path} is not a version-{DISPATCH_VERSION} dispatch table"
            )
        classes = payload.get("classes", {})
        if not isinstance(classes, dict):
            raise CacheError(f"{path}: 'classes' must be an object")
        for key, wins in classes.items():
            if not isinstance(wins, dict):
                raise CacheError(f"{path}: class {key!r} must map to tallies")
            self._classes[str(key)] = {
                str(label): int(count) for label, count in wins.items()
            }

    def save(self, path: Union[str, Path, None] = None) -> Path:
        """Atomically persist the table (to ``path`` or the load path)."""
        target = Path(path).expanduser() if path is not None else self.path
        if target is None:
            raise CacheError("dispatch table has no path to save to")
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
        tmp.write_text(self.to_json() + "\n", encoding="utf-8")
        os.replace(tmp, target)
        return target

    def __repr__(self) -> str:
        return (
            f"DispatchTable(path={str(self.path) if self.path else None!r}, "
            f"classes={len(self)})"
        )
