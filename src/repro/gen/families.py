"""Seeded instance families: parameterized distributions over targets.

Every family is a frozen dataclass whose :meth:`Family.sample` maps a
seed to a fully-built :class:`~repro.core.target.TargetSpec`.  The
seeding contract is the one :mod:`repro.bench.instances` established:

* streams come from ``numpy.random.default_rng`` seeded with a tuple of
  plain integers — a package salt, the crc32 of the family kind (never
  ``hash()``, which is salted per process), the level, the seed, and a
  stream index — so two families, levels, or purposes never share a
  stream even on equal seeds;
* rejection loops are bounded (``MAX_DRAWS``) and advance the *same*
  stream, so acceptance after k rejections is itself deterministic;
* no module-level ``random``/``os.urandom`` anywhere — the janalyze
  determinism checker scopes this package and enforces exactly that.

The same ``(family, seed)`` therefore produces byte-identical specs in
any process on any platform, which is what lets two ``janus gen`` runs
be compared with ``cmp`` in CI.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import ClassVar, Optional

import numpy as np

from repro.errors import SynthesisError
from repro.boolf.cube import Cube
from repro.boolf.gf2 import row_reduce
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.target import TargetSpec

__all__ = [
    "MAX_DRAWS",
    "Family",
    "RandomTruthTableFamily",
    "PlaCoverFamily",
    "AutosymmetricFamily",
    "DReducibleFamily",
    "MultiOutputFamily",
    "FaultFamily",
]

#: Package-wide salt folded into every stream, so generated workloads
#: can never collide with the Table II reconstruction streams (which
#: seed with bare ``(base_seed, attempt, ...)`` tuples).
GEN_SALT = 0x4A414E55  # "JANU"

#: Bound on every rejection-sampling loop: drawing this many candidates
#: without an acceptable one is a bug in the family's parameters, not
#: bad luck, and raises :class:`~repro.errors.SynthesisError`.
MAX_DRAWS = 256


def _independent_masks(
    rng: np.random.Generator, num_vars: int, count: int
) -> list[int]:
    """``count`` linearly independent GF(2) vectors over ``num_vars``."""
    masks: list[int] = []
    for _ in range(MAX_DRAWS):
        if len(masks) == count:
            break
        cand = int(rng.integers(1, 1 << num_vars))
        if len(row_reduce(masks + [cand])) == len(masks) + 1:
            masks.append(cand)
    if len(masks) != count:
        raise SynthesisError(
            f"could not draw {count} independent GF(2) vectors over "
            f"{num_vars} variables within {MAX_DRAWS} draws"
        )
    return masks


def _random_cube(
    rng: np.random.Generator, num_inputs: int, size: int
) -> Cube:
    chosen = rng.choice(num_inputs, size=size, replace=False)
    polarity = rng.integers(0, 2, size=size)
    return Cube.from_literals(
        [(int(v), bool(p)) for v, p in zip(chosen, polarity)], num_inputs
    )


@dataclass(frozen=True)
class Family:
    """A seeded distribution over synthesis targets.

    Subclasses set :attr:`kind` and implement :meth:`sample`.  ``level``
    is the family's rung on the difficulty ladder (see
    :mod:`repro.gen.ladder`) — it participates in naming and seeding, so
    the same seed at different levels yields unrelated instances.
    """

    kind: ClassVar[str] = "abstract"
    level: int = 0

    @property
    def name(self) -> str:
        return f"{self.kind}-L{self.level}"

    def instance_name(self, seed: int) -> str:
        return f"{self.name}:{seed}"

    def rng(self, seed: int, stream: int = 0) -> np.random.Generator:
        """The family's deterministic stream for one seed.

        ``stream`` separates independent purposes sharing a seed (0 is
        :meth:`sample`'s draw stream; :func:`repro.gen.twins.make_twins`
        callers use 1 for the minterm-flip stream).
        """
        return np.random.default_rng((
            GEN_SALT,
            zlib.crc32(self.kind.encode()),
            int(self.level),
            int(seed),
            int(stream),
        ))

    def sample(self, seed: int) -> TargetSpec:
        raise NotImplementedError

    def _exhausted(self, seed: int) -> SynthesisError:
        return SynthesisError(
            f"family {self.name} drew {MAX_DRAWS} candidates for seed "
            f"{seed} without an acceptable function — the parameters are "
            "degenerate"
        )

    def _usable(self, tt: TruthTable) -> bool:
        """Constant functions synthesize trivially; reject them."""
        return not tt.is_zero() and not tt.is_one()


@dataclass(frozen=True)
class RandomTruthTableFamily(Family):
    """Uniform random truth tables at a target on-set density.

    The unstructured end of the ladder: high-density functions of many
    variables have large irredundant covers and exercise the dichotomic
    search hardest.
    """

    kind: ClassVar[str] = "random-tt"
    num_inputs: int = 4
    density: float = 0.5

    def sample(self, seed: int) -> TargetSpec:
        rng = self.rng(seed)
        for _ in range(MAX_DRAWS):
            tt = TruthTable.random(self.num_inputs, rng, density=self.density)
            if self._usable(tt):
                return TargetSpec.from_truthtable(
                    tt, name=self.instance_name(seed)
                )
        raise self._exhausted(seed)


@dataclass(frozen=True)
class PlaCoverFamily(Family):
    """Random PLA-style covers, optionally with a don't-care set.

    Mirrors how the LGSynth91 slices look: a handful of cubes of bounded
    degree.  ``dc_fraction > 0`` marks that fraction of the offset as
    don't-care, exercising the interval-minimization path the paper does
    not cover.
    """

    kind: ClassVar[str] = "pla-cover"
    num_inputs: int = 5
    num_cubes: int = 4
    degree: int = 3
    dc_fraction: float = 0.0

    def sample(self, seed: int) -> TargetSpec:
        rng = self.rng(seed)
        lo = max(1, self.degree - 1)
        for _ in range(MAX_DRAWS):
            cubes: set[Cube] = set()
            guard = 0
            while len(cubes) < self.num_cubes and guard < 16 * MAX_DRAWS:
                guard += 1
                size = int(rng.integers(lo, self.degree + 1))
                cubes.add(_random_cube(rng, self.num_inputs, size))
            tt = Sop(sorted(cubes), self.num_inputs).to_truthtable()
            if not self._usable(tt):
                continue
            dc = self._draw_dc(rng, tt)
            return TargetSpec.from_truthtable(
                tt, name=self.instance_name(seed), dc=dc
            )
        raise self._exhausted(seed)

    def _draw_dc(
        self, rng: np.random.Generator, onset: TruthTable
    ) -> Optional[TruthTable]:
        if self.dc_fraction <= 0.0:
            return None
        raw = TruthTable.random(
            self.num_inputs, rng, density=self.dc_fraction
        )
        values = raw.values & ~onset.values
        # Keep the admissible interval proper: some don't-cares, but not
        # "everything above the onset is fine" (constant-1 admissible).
        if not values.any() or bool((onset.values | values).all()):
            return None
        return TruthTable(values, self.num_inputs)


@dataclass(frozen=True)
class AutosymmetricFamily(Family):
    """Functions that are k-autosymmetric by construction.

    Draws a restriction ``f_k`` over ``n - k`` variables and ``n - k``
    independent GF(2) functionals ``c_i``, then composes
    ``f(x) = f_k(c_1.x, ..., c_{n-k}.x)`` — the factorization
    :mod:`repro.core.autosymmetric` detects.  The kernel of the linear
    map has dimension k, so ``autosymmetry_degree(f) >= k`` always.
    """

    kind: ClassVar[str] = "autosymmetric"
    num_inputs: int = 5
    autosymmetry: int = 2  # guaranteed lower bound on the degree k
    density: float = 0.5

    def sample(self, seed: int) -> TargetSpec:
        n, k = self.num_inputs, self.autosymmetry
        if not 0 < k < n:
            raise SynthesisError(
                f"autosymmetry degree {k} must satisfy 0 < k < {n}"
            )
        rng = self.rng(seed)
        for _ in range(MAX_DRAWS):
            masks = _independent_masks(rng, n, n - k)
            restriction = TruthTable.random(n - k, rng, density=self.density)
            if not self._usable(restriction):
                continue
            coords = np.fromiter(
                (_project(x, masks) for x in range(1 << n)),
                dtype=np.int64,
                count=1 << n,
            )
            tt = TruthTable(restriction.values[coords], n)
            if self._usable(tt):
                return TargetSpec.from_truthtable(
                    tt, name=self.instance_name(seed)
                )
        raise self._exhausted(seed)


def _project(x: int, masks: list[int]) -> int:
    """Map an input vector through GF(2) functionals (parity per mask)."""
    y = 0
    for j, mask in enumerate(masks):
        y |= (bin(x & mask).count("1") & 1) << j
    return y


@dataclass(frozen=True)
class DReducibleFamily(Family):
    """Functions whose onset lives in a proper affine subspace.

    Draws a base point, a ``hull_dim``-dimensional basis and a projection
    function over the basis coordinates; the onset is the image of the
    projection's onset inside the affine space, so
    :func:`repro.core.dreducible.is_dreducible` holds by construction.
    """

    kind: ClassVar[str] = "d-reducible"
    num_inputs: int = 5
    hull_dim: int = 3
    density: float = 0.5

    def sample(self, seed: int) -> TargetSpec:
        n, d = self.num_inputs, self.hull_dim
        if not 0 < d < n:
            raise SynthesisError(
                f"hull dimension {d} must satisfy 0 < d < {n}"
            )
        rng = self.rng(seed)
        for _ in range(MAX_DRAWS):
            basis = _independent_masks(rng, n, d)
            point = int(rng.integers(0, 1 << n))
            projection = TruthTable.random(d, rng, density=self.density)
            if not self._usable(projection):
                continue
            values = np.zeros(1 << n, dtype=bool)
            for y in projection.onset():
                vec = point
                for j, mask in enumerate(basis):
                    if y >> j & 1:
                        vec ^= mask
                values[vec] = True
            # Non-constant is guaranteed: the onset is non-empty and
            # fits inside 2**d < 2**n points.
            return TargetSpec.from_truthtable(
                TruthTable(values, n), name=self.instance_name(seed)
            )
        raise self._exhausted(seed)


@dataclass(frozen=True)
class MultiOutputFamily(Family):
    """Multi-output specs over a shared input universe.

    :meth:`sample_outputs` yields one spec per output (named
    ``...#k``), the form :func:`repro.core.multi.synthesize_multi` and
    the straightforward-merge path consume; :meth:`sample` returns the
    first output so the family still satisfies the uniform contract.
    """

    kind: ClassVar[str] = "multi-output"
    num_inputs: int = 4
    num_outputs: int = 3
    density: float = 0.5

    def sample_outputs(self, seed: int) -> tuple[TargetSpec, ...]:
        rng = self.rng(seed)
        specs: list[TargetSpec] = []
        for k in range(self.num_outputs):
            for _ in range(MAX_DRAWS):
                tt = TruthTable.random(
                    self.num_inputs, rng, density=self.density
                )
                if self._usable(tt):
                    specs.append(
                        TargetSpec.from_truthtable(
                            tt, name=f"{self.instance_name(seed)}#{k}"
                        )
                    )
                    break
            else:
                raise self._exhausted(seed)
        return tuple(specs)

    def sample(self, seed: int) -> TargetSpec:
        return self.sample_outputs(seed)[0]


@dataclass(frozen=True)
class FaultFamily(Family):
    """Fault-tolerance scenarios driven by :mod:`repro.lattice.faults`.

    Synthesizes a seeded base function, injects one seeded non-vacuous
    stuck-at fault into the resulting lattice, and targets the faulty
    lattice's *realized* function — "what does the defective part
    actually compute, and what is its minimal lattice" specs.  Sampling
    runs a full (deterministic) synthesis per draw, so the family stays
    on small input counts.
    """

    kind: ClassVar[str] = "fault"
    num_inputs: int = 3
    density: float = 0.5
    max_conflicts: int = 20_000

    def sample(self, seed: int) -> TargetSpec:
        from repro.core.janus import JanusOptions, synthesize
        from repro.lattice.faults import fault_universe, inject

        rng = self.rng(seed)
        options = JanusOptions(max_conflicts=self.max_conflicts)
        name = self.instance_name(seed)
        for _ in range(MAX_DRAWS):
            tt = TruthTable.random(self.num_inputs, rng, density=self.density)
            if not self._usable(tt):
                continue
            base = TargetSpec.from_truthtable(tt, name=name)
            result = synthesize(base, name=name, options=options)
            faults = fault_universe(result.assignment)
            for idx in rng.permutation(len(faults)):
                faulty = inject(result.assignment, faults[int(idx)])
                realized = faulty.realized_truthtable()
                if not self._usable(realized) or realized == tt:
                    continue
                return TargetSpec.from_truthtable(realized, name=name)
            # Every fault was degenerate (constant or invisible): redraw
            # the base function from the same stream.
        raise self._exhausted(seed)
