"""The workload universe: seeded, parameterized instance generators.

The paper's evaluation is frozen to the 48 reconstructed Table II slices
(:mod:`repro.bench.instances`); this package widens it into families of
reproducible synthetic targets with a difficulty ladder:

* :mod:`repro.gen.families` — the :class:`Family` hierarchy (random
  truth tables, PLA covers with don't-cares, autosymmetric and
  D-reducible specs, multi-output specs, fault scenarios), each with a
  ``sample(seed) -> TargetSpec`` contract;
* :mod:`repro.gen.ladder` — the numbered difficulty levels mapping to
  concrete family parameters, plus the family registry;
* :mod:`repro.gen.twins` — SAT/UNSAT twin pairs at the realizability
  frontier (realizable-at-bound spec vs. one nudged unrealizable at the
  same shape);
* :mod:`repro.gen.dispatch` — cheap spec classification and the
  persistent :class:`DispatchTable` the portfolio engine consults to
  skip blind preset races;
* :mod:`repro.gen.workload` — batch builders bridging families to the
  wire schema (``janus gen`` / ``POST /v1/batch``).

Everything here is deterministic given ``(family, level, seed)``: the
same call produces byte-identical specs in any process on any platform.
See ``docs/workloads.md``.
"""

from repro.gen.dispatch import DispatchTable, classify
from repro.gen.families import (
    AutosymmetricFamily,
    DReducibleFamily,
    Family,
    FaultFamily,
    MultiOutputFamily,
    PlaCoverFamily,
    RandomTruthTableFamily,
)
from repro.gen.ladder import FAMILY_KINDS, LEVELS, ladder, make_family
from repro.gen.twins import TwinPair, make_twins
from repro.gen.workload import generated_specs, to_batch_request

__all__ = [
    "AutosymmetricFamily",
    "DReducibleFamily",
    "DispatchTable",
    "FAMILY_KINDS",
    "Family",
    "FaultFamily",
    "LEVELS",
    "MultiOutputFamily",
    "PlaCoverFamily",
    "RandomTruthTableFamily",
    "TwinPair",
    "classify",
    "generated_specs",
    "ladder",
    "make_family",
    "make_twins",
    "to_batch_request",
]
