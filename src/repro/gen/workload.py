"""Workload builders: families -> specs -> canonical wire-schema batches.

The bridge between the generator and everything that consumes work: the
``janus gen`` CLI, the generated-workload modes of the benchmarks, and
``POST /v1/batch``.  ``generated_specs`` is pure and deterministic;
``to_batch_request`` produces the canonical
:class:`~repro.api.schema.BatchRequest` wire form, so two identical
``janus gen`` invocations emit byte-identical JSON.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.core.target import TargetSpec
from repro.gen.families import MultiOutputFamily
from repro.gen.ladder import FAMILY_KINDS, ladder, make_family

__all__ = ["generated_specs", "resolve_kinds", "to_batch_request"]

#: The ``--family`` alias meaning "every registered kind".
MIXED = "mixed"


def resolve_kinds(kinds: Union[str, Sequence[str], None]) -> list[str]:
    """Normalize a kind selector: a name, a comma list, ``"mixed"``/None
    for everything.  Unknown names fail in :func:`make_family`."""
    if kinds is None:
        return list(FAMILY_KINDS)
    if isinstance(kinds, str):
        kinds = [k.strip() for k in kinds.split(",") if k.strip()]
    out = []
    for kind in kinds:
        if kind == MIXED:
            out.extend(k for k in FAMILY_KINDS if k not in out)
        elif kind not in out:
            out.append(kind)
    return out or list(FAMILY_KINDS)


def generated_specs(
    kinds: Union[str, Sequence[str], None] = None,
    level: int = 1,
    base_seed: int = 0,
    count: int = 1,
) -> list[TargetSpec]:
    """Sample a deterministic workload: ``count`` seeds per kind.

    Multi-output families contribute every output (named ``...#k``), so
    the result is a flat list of single-output specs any backend can
    consume.
    """
    specs: list[TargetSpec] = []
    for family, seed in ladder(
        resolve_kinds(kinds), levels=(level,), count=count,
        base_seed=base_seed,
    ):
        if isinstance(family, MultiOutputFamily):
            specs.extend(family.sample_outputs(seed))
        else:
            specs.append(family.sample(seed))
    return specs


def to_batch_request(
    specs: Iterable[TargetSpec],
    backend: str = "janus",
    options: Optional[object] = None,
):
    """Package specs as a canonical :class:`BatchRequest`.

    Targets cross the wire in the packed-truth-table form (hex onset,
    plus the don't-care set when present), so the JSON is a pure
    function of the specs — reproducibility survives the round trip.
    """
    from repro.api.schema import BatchRequest, RequestOptions, SynthesisRequest

    if options is None:
        options = RequestOptions()
    return BatchRequest(
        requests=tuple(
            SynthesisRequest.from_target(
                spec, name=spec.name, backend=backend, options=options
            )
            for spec in specs
        )
    )
