"""The transport-agnostic service core shared by every HTTP front-end.

PR 5's threaded server fused routing, request execution and the
``http.server`` transport into one class; growing a second (asyncio)
front-end and a multi-process mode would have meant duplicating the
routing table — and the byte-for-byte wire guarantee — in every copy.
:class:`ServiceCore` is that extraction: it owns the
:class:`~repro.server.pool.SessionPool`, the
:class:`~repro.server.jobs.JobManager`, the shared cache directory and
the whole route table, and reduces an HTTP exchange to::

    core.handle(method, target, body) -> WireResponse | WireStream

A :class:`WireResponse` is a status plus one finished JSON body (the
exact canonical bytes both front-ends write verbatim, so the servers
cannot drift apart — the parity matrix in ``tests/server`` asserts it).
A :class:`WireStream` is a status plus a lazy iterator of NDJSON lines:
the progress events of a *synchronous* request followed by its final
response (or error envelope), which the transports frame as one chunked
HTTP response.  Every exception becomes a structured error envelope
here, so both front-ends also agree on failure bytes.

The transports keep only what is genuinely transport: socket accept
loops, HTTP parsing, keep-alive bookkeeping, and chunked framing.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional
from urllib.parse import parse_qs, urlsplit

from repro.api.backends import resolve_solver_config
from repro.api.schema import BatchRequest, SynthesisRequest
from repro.api.session import Session
from repro.engine.events import event_to_wire
from repro.errors import ValidationError
from repro.sat.solver import SolverConfig
from repro.server.jobs import JobManager
from repro.server.pool import SessionPool
from repro.server.protocol import (
    backends_wire,
    cache_stats_wire,
    error_wire,
    events_wire,
    health_wire,
    job_wire,
    status_for_exception,
    validated_preset,
)

__all__ = [
    "ServiceCore",
    "WireResponse",
    "WireStream",
    "MAX_BODY_BYTES",
    "MAX_POLL_SECONDS",
    "DEFAULT_POLL_SECONDS",
]

#: Long-poll ceiling: a single /v1/events call blocks at most this long.
MAX_POLL_SECONDS = 60.0
DEFAULT_POLL_SECONDS = 25.0
#: Request-body ceiling.  The largest legitimate payload — a batch of
#: 24-variable truth-table targets — is well under this; anything bigger
#: is a mistake or abuse and is rejected before buffering.
MAX_BODY_BYTES = 16 * 1024 * 1024


def canonical_bytes(payload: dict) -> bytes:
    """The canonical JSON bytes of a wire dict (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


@dataclass
class WireResponse:
    """One finished response: status + exact body bytes to serve."""

    status: int
    body: bytes
    content_type: str = "application/json"


@dataclass
class WireStream:
    """A chunked NDJSON response: event lines, then the final payload.

    ``lines`` is lazy — nothing is computed until the transport starts
    iterating, and each yielded item is one complete canonical-JSON line
    (no trailing newline; the transport adds framing).  The final line
    is the ``synthesis_response`` / ``batch_response`` wire form, or an
    ``error`` envelope if the request failed mid-stream (the HTTP status
    is already on the wire by then, which is the standard trailing-error
    trade-off of streamed responses).
    """

    status: int
    lines: Iterator[bytes]
    content_type: str = "application/x-ndjson"


class _NotFound(ValidationError):
    """Route/resource miss."""

    http_status = 404


class _MethodNotAllowed(ValidationError):
    """Known route, wrong verb."""

    http_status = 405


@dataclass
class _ParsedRequest:
    """A routed request: path split from query, last-value-wins params."""

    route: str
    query: dict[str, str] = field(default_factory=dict)


def _parse_target(target: str) -> _ParsedRequest:
    split = urlsplit(target)
    raw = parse_qs(split.query)
    return _ParsedRequest(
        route=split.path.rstrip("/") or "/",
        query={k: v[-1] for k, v in raw.items()},
    )


def _float_param(query: dict, key: str) -> Optional[float]:
    if key not in query:
        return None
    try:
        value = float(query[key])
    except ValueError:
        raise ValidationError(f"{key} must be a number, got {query[key]!r}")
    if value <= 0:
        raise ValidationError(f"{key} must be positive, got {value!r}")
    return value


def _int_param(query: dict, key: str) -> Optional[int]:
    if key not in query:
        return None
    try:
        return int(query[key])
    except ValueError:
        raise ValidationError(f"{key} must be an integer, got {query[key]!r}")


def _stream_param(query: dict) -> bool:
    if "stream" not in query:
        return False
    value = query["stream"].lower()
    if value in ("1", "true", "events"):
        return True
    if value in ("0", "false"):
        return False
    raise ValidationError(
        f"stream must be one of 1/0/true/false/events, got {query['stream']!r}"
    )


def _decode_body(body: Optional[bytes]) -> str:
    if body is None:
        body = b""
    try:
        return body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ValidationError(f"request body is not UTF-8: {exc}")


class ServiceCore:
    """Routing + execution for the synthesis service, no transport.

    Construction builds every owned resource (session pool, job manager,
    cache directory when none is given); :meth:`close` releases them.
    The front-ends (`repro.server.app`, `repro.server.async_app`) hold
    exactly one core each and forward every parsed HTTP exchange to
    :meth:`handle`.
    """

    def __init__(
        self,
        jobs: int = 1,
        pool: int = 2,
        cache: Optional[str] = None,
        npn: bool = False,
        keep_jobs: int = 128,
        verbose: bool = False,
        preset: "str | SolverConfig | None" = None,
        dispatch: Optional[str] = None,
    ) -> None:
        self.verbose = verbose
        # The server-wide default solver tuning (a preset name or a full
        # SolverConfig); validated/resolved up front so a typo fails at
        # startup, not on the first request.
        if isinstance(preset, str):
            validated_preset(preset)
        self.default_config = (
            resolve_solver_config(preset) if preset is not None else None
        )
        self._owned_cache = cache is None
        self.cache_dir = (
            tempfile.mkdtemp(prefix="janus-serve-") if cache is None else cache
        )
        self.pool = SessionPool(
            size=pool, jobs=jobs, cache=self.cache_dir, npn=npn,
            dispatch=dispatch,
        )
        self.jobs = JobManager(self.pool, keep=keep_jobs)
        self.started = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release every owned resource (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.pool.close()
        if self._owned_cache:
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    def __enter__(self) -> "ServiceCore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- queries
    def registry_names(self) -> list[str]:
        from repro.api.backends import backend_names

        return backend_names()

    def health(self) -> dict:
        from repro import __version__

        return health_wire(
            __version__, time.monotonic() - self.started, len(self.jobs)
        )

    def cache_stats(self) -> dict:
        from repro.engine.cache import ResultCache
        from repro.engine.gc import cache_stats
        from repro.errors import CacheError

        disk = None
        try:
            st = cache_stats(ResultCache(self.cache_dir))
            disk = {
                "entries": st.entries,
                "entry_bytes": st.entry_bytes,
                "temp_files": st.temp_files,
                "temp_bytes": st.temp_bytes,
            }
        except (CacheError, OSError):
            pass  # an unreadable cache dir degrades to engine stats only
        return cache_stats_wire(
            self.pool.stats(), disk, self.cache_dir, self.pool
        )

    # -------------------------------------------------------------- routing
    def handle(
        self,
        method: str,
        target: str,
        body: Optional[bytes] = None,
    ) -> "WireResponse | WireStream":
        """Serve one parsed HTTP exchange.

        ``target`` is the raw request target (path + query string);
        ``body`` the raw request bytes (``None`` for bodyless methods).
        Never raises: every failure is returned as an error-envelope
        :class:`WireResponse` so all transports serve identical bytes.
        """
        try:
            parsed = _parse_target(target)
            if method == "GET":
                return self._handle_get(parsed)
            if method == "POST":
                return self._handle_post(parsed, body)
            raise _MethodNotAllowed(f"method not allowed for {parsed.route}")
        # janalyze: allow-broad-except top-level route dispatcher — every
        # failure must become a structured error envelope (500 for bugs)
        except Exception as exc:
            return self.error_response(exc)

    def error_response(self, exc: BaseException) -> WireResponse:
        """The error envelope a failed exchange serves."""
        # Routing errors carry their own status; everything else maps
        # through the shared exception table in server.protocol.
        status = getattr(exc, "http_status", None) or status_for_exception(exc)
        return WireResponse(status, canonical_bytes(error_wire(status, exc)))

    def _handle_get(self, parsed: _ParsedRequest) -> WireResponse:
        route = parsed.route
        if route == "/healthz":
            return WireResponse(200, canonical_bytes(self.health()))
        if route == "/v1/backends":
            return WireResponse(
                200, canonical_bytes(backends_wire(self.registry_names()))
            )
        if route == "/v1/cache/stats":
            return WireResponse(200, canonical_bytes(self.cache_stats()))
        if route.startswith("/v1/jobs/"):
            return self._get_job(route.removeprefix("/v1/jobs/"))
        if route.startswith("/v1/events/"):
            return self._get_events(
                route.removeprefix("/v1/events/"), parsed.query
            )
        if route in ("/v1/synthesize", "/v1/batch"):
            raise _MethodNotAllowed(f"method not allowed for {route}")
        raise _NotFound(f"no such path: {route}")

    def _handle_post(
        self, parsed: _ParsedRequest, body: Optional[bytes]
    ) -> "WireResponse | WireStream":
        route = parsed.route
        if route == "/v1/synthesize":
            return self._post_synthesize(parsed.query, _decode_body(body))
        if route == "/v1/batch":
            return self._post_batch(parsed.query, _decode_body(body))
        if route in (
            "/healthz",
            "/v1/backends",
            "/v1/cache/stats",
        ) or route.startswith(("/v1/jobs/", "/v1/events/")):
            raise _MethodNotAllowed(f"method not allowed for {route}")
        raise _NotFound(f"no such path: {route}")

    # ---------------------------------------------------------- POST bodies
    def _post_synthesize(
        self, query: dict, body: str
    ) -> "WireResponse | WireStream":
        request = SynthesisRequest.from_json(body)
        if "backend" in query:
            request = request.with_backend(query["backend"])
        timeout = _float_param(query, "timeout")
        jobs = _int_param(query, "jobs")
        preset = (
            validated_preset(query["preset"]) if "preset" in query else None
        )
        if _stream_param(query):
            return WireStream(
                200,
                self._stream_run(
                    lambda tap: self.run_synthesize(
                        request, timeout, jobs, preset, tap=tap
                    )
                ),
            )
        response = self.run_synthesize(request, timeout, jobs, preset)
        return WireResponse(200, response.to_json().encode("utf-8"))

    def _post_batch(
        self, query: dict, body: str
    ) -> "WireResponse | WireStream":
        batch = BatchRequest.from_json(body)
        if query.get("mode") == "async":
            job = self.jobs.submit(batch)
            return WireResponse(202, canonical_bytes(job_wire(job)))
        timeout = _float_param(query, "timeout")
        if _stream_param(query):
            return WireStream(
                200,
                self._stream_run(
                    lambda tap: self.run_batch(batch, timeout, tap=tap)
                ),
            )
        response = self.run_batch(batch, timeout)
        return WireResponse(200, response.to_json().encode("utf-8"))

    # ----------------------------------------------------------- job routes
    def _get_job(self, job_id: str) -> WireResponse:
        job = self.jobs.get(job_id)
        if job is None:
            raise _NotFound(f"no such job: {job_id!r}")
        return WireResponse(200, canonical_bytes(job_wire(job)))

    def _get_events(self, job_id: str, query: dict) -> WireResponse:
        job = self.jobs.get(job_id)
        if job is None:
            raise _NotFound(f"no such job: {job_id!r}")
        cursor = _int_param(query, "cursor") or 0
        timeout = _float_param(query, "timeout")
        timeout = (
            DEFAULT_POLL_SECONDS
            if timeout is None
            else min(timeout, MAX_POLL_SECONDS)
        )
        events, cursor, done = job.wait_events(cursor, timeout)
        return WireResponse(
            200, canonical_bytes(events_wire(job.job_id, events, cursor, done))
        )

    # ------------------------------------------------- sync event streaming
    def _stream_run(
        self, run: Callable[[Callable], Any]
    ) -> Iterator[bytes]:
        """NDJSON lines for one streamed synchronous request.

        ``run(tap)`` executes the request through the pool on a helper
        thread with ``tap`` subscribed to the checked-out session for
        the duration of the work (exclusive checkout keeps the events
        attributable, same as async batch jobs); the generator drains
        what the tap collects.  Each event is yielded as one canonical
        line the moment it arrives; the final line is the finished
        response — or the error envelope the request would have been
        answered with.
        """
        lines: "queue.Queue[tuple[str, Any]]" = queue.Queue()

        def on_event(event) -> None:
            lines.put(("event", event_to_wire(event)))

        outcome: dict[str, Any] = {}

        def work() -> None:
            try:
                outcome["value"] = run(on_event)
            # janalyze: allow-broad-except stream helper thread — the
            # failure is serialized as the stream's final error line
            except BaseException as exc:
                outcome["error"] = exc
            finally:
                lines.put(("end", None))

        thread = threading.Thread(
            target=work, name="janus-serve-stream", daemon=True
        )
        thread.start()
        while True:
            kind, payload = lines.get()
            if kind == "end":
                break
            yield canonical_bytes(payload)
        error = outcome.get("error")
        if error is not None:
            yield self.error_response(error).body
        else:
            yield outcome["value"].to_json().encode("utf-8")

    # ------------------------------------------------------------ execution
    def _apply_preset(
        self, request: SynthesisRequest, preset: Optional[str]
    ) -> SynthesisRequest:
        """Rewrite the request under the effective solver preset.

        Precedence: an explicit ``solver_config`` in the request body
        always wins; then the ``?preset=`` query value; then the
        server-wide default config; then nothing.
        """
        config = (
            SolverConfig.preset(preset)
            if preset is not None
            else self.default_config
        )
        if config is None or request.options.solver_config is not None:
            return request
        return dataclasses.replace(
            request,
            options=dataclasses.replace(
                request.options, solver_config=config
            ),
        )

    @staticmethod
    def _with_tap(
        fn: Callable[[Session], Any], tap: Optional[Callable]
    ) -> Callable[[Session], Any]:
        """Wrap a pool callable so a stream's event tap sees its events."""
        if tap is None:
            return fn

        def tapped(session: Session):
            session.subscribe(tap)
            try:
                return fn(session)
            finally:
                session.unsubscribe(tap)

        return tapped

    def run_synthesize(
        self,
        request: SynthesisRequest,
        timeout: Optional[float] = None,
        jobs: Optional[int] = None,
        preset: Optional[str] = None,
        tap: Optional[Callable] = None,
    ):
        request = self._apply_preset(request, preset)
        if jobs is not None:
            # Same normalization the pool applied to its own width, so
            # ?jobs=0 ("all CPUs") or a clamped negative matching the
            # pool is served warm instead of paying one-off engine setup.
            from repro.engine.parallel import default_jobs

            jobs = default_jobs() if jobs == 0 else max(1, jobs)
        if jobs is not None and jobs != self.pool.jobs:
            # A one-off engine width: a throwaway session over the same
            # shared cache, so the request still sees (and feeds) the
            # warm result layers.  Its counters are folded into the
            # pool's retired total so /v1/cache/stats stays truthful.
            def run_oneoff(_unused: Session):
                with Session(
                    jobs=jobs, cache=self.cache_dir, npn=self.pool.npn,
                    dispatch=self.pool.dispatch,
                ) as session:
                    try:
                        return self._with_tap(
                            lambda s: s.synthesize(request), tap
                        )(session)
                    finally:
                        self.pool.absorb(session)

            return self.pool.run(run_oneoff, timeout)
        return self.pool.run(
            self._with_tap(lambda session: session.synthesize(request), tap),
            timeout,
        )

    def run_batch(
        self,
        batch: BatchRequest,
        timeout: Optional[float] = None,
        tap: Optional[Callable] = None,
    ):
        return self.pool.run(
            self._with_tap(lambda session: session.run_batch(batch), tap),
            timeout,
        )
