"""The asyncio HTTP front-end: one event loop, no thread per connection.

PR 5's threaded server spends a thread (stack, scheduler slot, GIL
wake-ups) on every open connection, which caps it near the ``/healthz``
HTTP floor under fan-in.  :class:`AsyncSynthesisServer` serves the same
wire schema from a single event loop: connection handling, HTTP parsing
and response writing are all non-blocking, and only the actual work —
the :class:`~repro.server.core.ServiceCore` calls that check sessions
out of the pool, long-poll job events, or drive a synthesis — is
dispatched to a bounded thread executor, so the loop never blocks on a
SAT call.  Thousands of idle keep-alive connections cost an open socket
each, not a thread each.

Byte parity with the threaded front-end is structural: both delegate
every exchange to the same ``ServiceCore`` and write the returned bytes
verbatim (asserted by the parity matrix in ``tests/server``).  The
transport speaks HTTP/1.1 with keep-alive, Content-Length framing for
finished responses and chunked framing for ``?stream=1`` NDJSON event
streams.

For multi-core scale-out, :mod:`repro.server.multiproc` runs N of these
servers as forked worker processes over one listening port
(``SO_REUSEPORT``) and one shared on-disk cache.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import Optional

from repro.errors import ValidationError
from repro.sat.solver import SolverConfig
from repro.server.core import (
    MAX_BODY_BYTES,
    ServiceCore,
    WireResponse,
    WireStream,
)

__all__ = ["AsyncSynthesisServer", "make_async_server"]

#: Per-line ceiling for request lines and headers (far above any
#: legitimate request target or header this API uses).
_MAX_LINE_BYTES = 64 * 1024
_MAX_HEADER_COUNT = 100


def _status_line(status: int) -> bytes:
    try:
        phrase = HTTPStatus(status).phrase
    except ValueError:
        phrase = ""
    return f"HTTP/1.1 {status} {phrase}\r\n".encode("latin-1")


class _BadRequestLine(Exception):
    """Unparseable request framing: answer nothing, drop the connection."""


class AsyncSynthesisServer:
    """The asyncio ``janus serve`` front-end.

    The constructor binds the socket (or adopts ``sock``, an
    already-listening socket — the multi-process single-socket-inherit
    fallback) so :attr:`address` is valid immediately; call
    :meth:`serve_forever` on the current thread or
    :meth:`serve_background` for tests and benchmarks.  The API surface
    (context manager, ``address``, ``pool``, ``cache_dir``, ``close``)
    mirrors :class:`~repro.server.app.SynthesisServer` so the two
    front-ends are drop-in interchangeable.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        pool: int = 2,
        cache: Optional[str] = None,
        npn: bool = False,
        keep_jobs: int = 128,
        verbose: bool = False,
        preset: "str | SolverConfig | None" = None,
        dispatch: Optional[str] = None,
        sock: Optional[socket.socket] = None,
        reuse_port: bool = False,
        executor_threads: Optional[int] = None,
    ) -> None:
        self.verbose = verbose
        self.core = ServiceCore(
            jobs=jobs,
            pool=pool,
            cache=cache,
            npn=npn,
            keep_jobs=keep_jobs,
            verbose=verbose,
            preset=preset,
            dispatch=dispatch,
        )
        self.started = time.monotonic()
        self.connections_accepted = 0
        self._closed = False
        self._serving = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_ready = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        # Sized for fan-in: every in-flight blocking call (a synthesis
        # waiting on the session pool, an event long-poll) holds one
        # executor thread, and long-polls can legitimately sit for tens
        # of seconds — so the ceiling is generous, not tight.
        workers = (
            executor_threads
            if executor_threads is not None
            else max(64, self.core.pool.size * 8)
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="janus-async"
        )
        if sock is not None:
            self._sock = sock
            self._owns_sock = False
        else:
            try:
                self._sock = socket.create_server(
                    (host, port), backlog=128, reuse_port=reuse_port
                )
            except OSError:
                # Bind failures must not leak the resources built above —
                # especially the owned temp cache dir.
                self._executor.shutdown(wait=False)
                self.core.close()
                raise
            self._owns_sock = True

    # -------------------------------------------------------------- queries
    @property
    def address(self) -> tuple[str, int]:
        name = self._sock.getsockname()
        return name[0], name[1]

    @property
    def pool(self):
        return self.core.pool

    @property
    def jobs(self):
        return self.core.jobs

    @property
    def cache_dir(self) -> str:
        return self.core.cache_dir

    @property
    def default_config(self):
        return self.core.default_config

    def registry_names(self) -> list[str]:
        return self.core.registry_names()

    def health(self) -> dict:
        return self.core.health()

    def cache_stats(self) -> dict:
        return self.core.cache_stats()

    def run_synthesize(self, *args, **kwargs):
        return self.core.run_synthesize(*args, **kwargs)

    def run_batch(self, *args, **kwargs):
        return self.core.run_batch(*args, **kwargs)

    # ------------------------------------------------------------ lifecycle
    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until :meth:`close`."""
        self._serving = True
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            self._loop = None
            loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._client_connected, sock=self._sock, limit=_MAX_LINE_BYTES
        )
        self._loop_ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Open keep-alive connections still have handler tasks parked
            # on readline(); cancel them so the loop closes cleanly.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )

    def serve_background(self) -> threading.Thread:
        """Start :meth:`serve_forever` on a daemon thread (tests/bench).

        Returns once the loop is accepting; connections made before that
        queue on the already-listening socket, so callers may connect
        immediately either way.
        """
        # Marked serving before the thread runs: a close() racing the
        # thread start must deliver the stop event, not skip it.
        self._serving = True
        thread = threading.Thread(
            target=self.serve_forever, name="janus-aserve", daemon=True
        )
        self._thread = thread
        thread.start()
        self._loop_ready.wait(timeout=10.0)
        return thread

    def close(self) -> None:
        """Stop serving and release every owned resource (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._serving:
            # The loop may still be starting up on the background
            # thread; wait for it so the stop event is deliverable.
            self._loop_ready.wait(timeout=10.0)
            loop, stop = self._loop, self._stop_event
            if loop is not None and stop is not None:
                try:
                    loop.call_soon_threadsafe(stop.set)
                except RuntimeError:
                    pass  # loop already closed
            if self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=10.0)
        if self._owns_sock or not self._serving:
            try:
                self._sock.close()
            except OSError:
                pass
        self._executor.shutdown(wait=False)
        self.core.close()

    def __enter__(self) -> "AsyncSynthesisServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------- connection
    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while await self._one_request(reader, writer):
                pass
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            _BadRequestLine,
            TimeoutError,
        ):
            pass  # client went away or sent garbage: drop the connection
        except asyncio.CancelledError:
            pass  # server shutdown with the connection still open
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one keep-alive exchange; False ends the connection."""
        request_line = await reader.readline()
        if not request_line:
            return False  # clean EOF between requests
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequestLine(request_line[:64])
        method, target, version = parts
        headers = await self._read_headers(reader)
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
        )

        body: Optional[bytes] = None
        raw_length = headers.get("content-length")
        if raw_length is not None or method == "POST":
            raw = raw_length or "0"
            try:
                length = int(raw)
            except ValueError:
                await self._write_response(
                    writer,
                    self.core.error_response(
                        ValidationError(f"malformed Content-Length: {raw!r}")
                    ),
                    keep_alive=False,
                )
                return False  # cannot find the next request boundary
            if length < 0 or length > MAX_BODY_BYTES:
                await self._write_response(
                    writer,
                    self.core.error_response(
                        ValidationError(
                            f"Content-Length {length} outside "
                            f"0..{MAX_BODY_BYTES}"
                        )
                    ),
                    keep_alive=False,
                )
                return False
            body = await reader.readexactly(length) if length else b""
        if method != "POST":
            body = None  # GET/PUT/DELETE: routing ignores any payload

        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._executor, self.core.handle, method, target, body
        )
        if isinstance(result, WireStream):
            await self._write_stream(writer, result, keep_alive)
        else:
            await self._write_response(writer, result, keep_alive)
        return keep_alive

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> dict[str, str]:
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_COUNT):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        raise _BadRequestLine(b"too many headers")

    # -------------------------------------------------------------- writing
    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: WireResponse,
        keep_alive: bool,
    ) -> None:
        head = _status_line(response.status) + (
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
        ).encode("latin-1")
        if not keep_alive:
            head += b"Connection: close\r\n"
        writer.write(head + b"\r\n" + response.body)
        await writer.drain()

    async def _write_stream(
        self,
        writer: asyncio.StreamWriter,
        stream: WireStream,
        keep_alive: bool,
    ) -> None:
        """Chunk-frame a lazy NDJSON stream without blocking the loop.

        The core's generator blocks on synthesis progress, so it is
        consumed on an executor thread that feeds an ``asyncio.Queue``;
        the loop side writes each line as one chunk as it lands.  If the
        client disconnects mid-stream the pump keeps draining into the
        (garbage-collected) queue — the underlying session always
        finishes its work and rejoins the pool.
        """
        head = _status_line(stream.status) + (
            f"Content-Type: {stream.content_type}\r\n"
            f"Transfer-Encoding: chunked\r\n"
        ).encode("latin-1")
        if not keep_alive:
            head += b"Connection: close\r\n"
        writer.write(head + b"\r\n")
        await writer.drain()

        loop = asyncio.get_running_loop()
        lines: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()

        def pump() -> None:
            try:
                for line in stream.lines:
                    loop.call_soon_threadsafe(lines.put_nowait, line)
            # janalyze: allow-broad-except stream pump thread — the core
            # generator already serializes failures as its final error
            # line; anything else here means the loop is shutting down
            except Exception:
                pass
            finally:
                try:
                    loop.call_soon_threadsafe(lines.put_nowait, None)
                except RuntimeError:
                    pass  # loop closed mid-stream (server shutdown)

        pumping = loop.run_in_executor(self._executor, pump)
        try:
            while True:
                line = await lines.get()
                if line is None:
                    break
                payload = line + b"\n"
                writer.write(b"%x\r\n%s\r\n" % (len(payload), payload))
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            await pumping


def make_async_server(
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    pool: int = 2,
    cache: Optional[str] = None,
    npn: bool = False,
    verbose: bool = False,
    preset: "str | SolverConfig | None" = None,
    dispatch: Optional[str] = None,
    **kwargs,
) -> AsyncSynthesisServer:
    """Build (and bind) an :class:`AsyncSynthesisServer`; ``port=0``
    picks a free ephemeral port — read it back from ``server.address``."""
    return AsyncSynthesisServer(
        host=host,
        port=port,
        jobs=jobs,
        pool=pool,
        cache=cache,
        npn=npn,
        verbose=verbose,
        preset=preset,
        dispatch=dispatch,
        **kwargs,
    )
