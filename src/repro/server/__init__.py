"""``repro.server`` — the JSON wire schema, served over HTTP.

A dependency-free (stdlib ``http.server``) synthesis service that is a
deliberately thin shell over :mod:`repro.api`: requests validate through
the same :class:`~repro.api.SynthesisRequest` dataclasses every frontend
uses, and responses are the exact canonical-JSON bytes ``janus synth
--json`` / ``janus table2 --json`` print.  There is no server-only
schema — ``docs/wire-schema.md`` documents the one wire format, and
``docs/server.md`` the endpoints around it.

Layers:

* :mod:`repro.server.pool` — :class:`SessionPool`, the server's warmth
  and admission control: a bounded set of long-lived
  :class:`~repro.api.Session` objects (worker pools, layered caches,
  incremental probers) checked out one request at a time over one shared
  on-disk cache, plus per-request wall-clock budgets.
* :mod:`repro.server.jobs` — :class:`JobManager`, asynchronous batch
  jobs whose structured progress events (the PR 3 engine event channel)
  are buffered in wire form and paged out through a cursor-based
  long-poll (``GET /v1/events/<job_id>``).
* :mod:`repro.server.protocol` — the small envelopes around the schema
  payloads (errors, jobs, event pages, backends, cache stats, health)
  and the exception -> HTTP status mapping.
* :mod:`repro.server.core` — :class:`ServiceCore`, the transport-
  agnostic heart of the service: routing, per-request knobs, request
  execution and the exact wire bytes.  Both HTTP front-ends delegate
  here, which is what keeps them byte-identical.
* :mod:`repro.server.app` — the threaded HTTP front-end:
  :class:`SynthesisServer` (a ``ThreadingHTTPServer``) and
  :func:`make_server` (which can also build the asyncio front-end via
  ``frontend="async"``).
* :mod:`repro.server.async_app` — the asyncio HTTP front-end:
  :class:`AsyncSynthesisServer`, one event loop feeding a thread
  executor so the loop never blocks on SAT calls.
* :mod:`repro.server.multiproc` — :class:`MultiProcessServer`,
  ``janus serve --workers N``: N forked asyncio workers sharing one
  port (``SO_REUSEPORT`` or an inherited listening socket) and one
  on-disk cache.

Start one from the CLI (``janus serve --host 127.0.0.1 --port 8080``)
or in-process::

    from repro.server import make_server

    with make_server(port=0, pool=2) as server:
        server.serve_background()
        host, port = server.address
        ...  # point repro.client.ServiceClient at host:port

The matching client helper lives in :mod:`repro.client`.
"""

from repro.server.app import SynthesisServer, make_server
from repro.server.async_app import AsyncSynthesisServer, make_async_server
from repro.server.core import ServiceCore
from repro.server.jobs import Job, JobManager
from repro.server.multiproc import (
    MultiProcessServer,
    multiprocess_supported,
    reuse_port_supported,
)
from repro.server.pool import SessionPool
from repro.server.protocol import error_wire, status_for_exception

__all__ = [
    "SynthesisServer",
    "AsyncSynthesisServer",
    "MultiProcessServer",
    "ServiceCore",
    "make_server",
    "make_async_server",
    "multiprocess_supported",
    "reuse_port_supported",
    "SessionPool",
    "Job",
    "JobManager",
    "error_wire",
    "status_for_exception",
]
