"""Multi-process sharding: N asyncio workers, one port, one cache.

``janus serve --workers N`` forks N worker processes, each running its
own :class:`~repro.server.async_app.AsyncSynthesisServer` (its own event
loop, session pool and job manager) over **one listening port** and
**one shared on-disk result cache**:

* **Socket sharing** — on platforms with ``SO_REUSEPORT`` (Linux,
  modern BSDs) every worker binds its own listening socket to the same
  address and the kernel load-balances incoming connections across
  them.  Where the option is missing, the parent binds a single
  listening socket before forking and every worker accepts from the
  inherited descriptor (the classic pre-fork model).
* **Cache sharing** — all workers point at one cache directory.  The
  cache's concurrent-writer protocol (temp file + atomic ``os.replace``,
  see :mod:`repro.engine.cache`) makes cross-process writes safe: a
  result computed by any worker warms every other, and
  ``tests/engine/test_cache_concurrent.py`` stresses exactly this.
* **Worker-local jobs** — async batch jobs and their event buffers live
  in the worker that accepted the submit.  A client that reuses one
  keep-alive connection (the :class:`~repro.client.ServiceClient`
  default) stays on that worker, so submit/poll/events sequences work
  unchanged; fresh connections may land elsewhere and see a 404 for
  another worker's job id.  ``GET /v1/cache/stats`` likewise reports the
  serving worker's engine counters over the shared disk summary.

Workers are forked (``multiprocessing`` fork context), so this module is
POSIX-only; :func:`multiprocess_supported` reports availability and the
CLI falls back to a single process elsewhere.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import shutil
import signal
import socket
import tempfile
import time
from typing import Optional

from repro.sat.solver import SolverConfig
from repro.server.protocol import validated_preset

__all__ = [
    "MultiProcessServer",
    "multiprocess_supported",
    "reuse_port_supported",
]

_READY_TIMEOUT = 60.0


def multiprocess_supported() -> bool:
    """Whether this platform can run the forked multi-worker mode."""
    return "fork" in multiprocessing.get_all_start_methods()


def reuse_port_supported() -> bool:
    """Whether the kernel load-balances via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def _worker_main(
    ready: "multiprocessing.Queue",
    sock: Optional[socket.socket],
    kwargs: dict,
) -> None:
    """Entry point of one forked worker: serve until SIGTERM."""
    from repro.server.async_app import AsyncSynthesisServer

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server = AsyncSynthesisServer(sock=sock, **kwargs)
    # janalyze: allow-broad-except worker startup — the failure must
    # reach the parent through the ready queue, not die silently
    except Exception as exc:
        ready.put(("error", os.getpid(), f"{type(exc).__name__}: {exc}"))
        return
    ready.put(("ready", os.getpid(), None))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()


class MultiProcessServer:
    """N forked asyncio workers behind one address and one cache.

    Construction resolves the address (binding a socket, so ``port=0``
    works and :attr:`address` is valid immediately) but does not fork;
    :meth:`start` launches the workers and returns once every one is
    accepting.  :meth:`close` terminates them and releases everything
    owned — including the temp cache dir when ``cache`` was omitted.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        jobs: int = 1,
        pool: int = 2,
        cache: Optional[str] = None,
        npn: bool = False,
        keep_jobs: int = 128,
        verbose: bool = False,
        preset: "str | SolverConfig | None" = None,
        dispatch: Optional[str] = None,
        reuse_port: Optional[bool] = None,
    ) -> None:
        if not multiprocess_supported():
            raise RuntimeError(
                "multi-process serving needs the fork start method "
                "(POSIX); run a single worker instead"
            )
        if isinstance(preset, str):
            validated_preset(preset)  # fail at startup, not first request
        self.workers = max(1, int(workers))
        self.host = host
        # One shared cache directory for every worker; when the caller
        # gave none the parent owns a temp dir for the server's lifetime.
        self._owned_cache = cache is None
        self.cache_dir = (
            tempfile.mkdtemp(prefix="janus-serve-mp-")
            if cache is None
            else cache
        )
        # ``reuse_port=False`` forces the single-socket-inherit fallback
        # even where SO_REUSEPORT exists (the tests exercise both paths).
        self.reuse_port = (
            reuse_port_supported() if reuse_port is None else bool(reuse_port)
        )
        if self.reuse_port and not reuse_port_supported():
            raise RuntimeError("SO_REUSEPORT is not available on this platform")
        # Bind now so port=0 resolves and bind errors fail construction.
        # In reuseport mode this socket both reserves the port and (being
        # bound but never listening) receives no connections; in inherit
        # mode it is the one listening socket every worker accepts from.
        try:
            if self.reuse_port:
                self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                self._sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
                self._sock.bind((host, port))
            else:
                self._sock = socket.create_server(
                    (host, port), backlog=128
                )
        except OSError:
            if self._owned_cache:
                shutil.rmtree(self.cache_dir, ignore_errors=True)
            raise
        self.port = self._sock.getsockname()[1]
        self._worker_kwargs = dict(
            host=host,
            port=self.port,
            jobs=jobs,
            pool=pool,
            cache=self.cache_dir,
            npn=npn,
            keep_jobs=keep_jobs,
            verbose=verbose,
            preset=preset,
            dispatch=dispatch,
            reuse_port=self.reuse_port,
        )
        self._ctx = multiprocessing.get_context("fork")
        self._procs: list = []
        self._closed = False

    # -------------------------------------------------------------- queries
    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def alive(self) -> int:
        """Number of workers currently running."""
        return sum(1 for p in self._procs if p.is_alive())

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "MultiProcessServer":
        """Fork the workers; returns once every one is accepting."""
        if self._procs:
            return self
        ready: "multiprocessing.Queue" = self._ctx.Queue()
        for _ in range(self.workers):
            kwargs = dict(self._worker_kwargs)
            if self.reuse_port:
                sock = None  # each worker binds its own SO_REUSEPORT socket
            else:
                sock = self._sock  # inherited across the fork
                kwargs["reuse_port"] = False
            proc = self._ctx.Process(
                target=_worker_main,
                args=(ready, sock, kwargs),
                name="janus-serve-worker",
                daemon=False,
            )
            proc.start()
            self._procs.append(proc)
        deadline = time.monotonic() + _READY_TIMEOUT
        confirmed = 0
        while confirmed < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError(
                    f"only {confirmed}/{self.workers} workers came up "
                    f"within {_READY_TIMEOUT:g}s"
                )
            try:
                state, pid, detail = ready.get(timeout=min(remaining, 1.0))
            except queue.Empty:
                continue  # no worker reported yet — retry until deadline
            if state == "error":
                self.close()
                raise RuntimeError(f"worker {pid} failed to start: {detail}")
            confirmed += 1
        return self

    def serve_forever(self) -> None:
        """Start the workers and block until they exit (CLI mode)."""
        self.start()
        try:
            for proc in self._procs:
                proc.join()
        finally:
            self.close()

    def close(self) -> None:
        """Terminate every worker and release owned resources."""
        if self._closed:
            return
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM -> worker closes its server
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        try:
            self._sock.close()
        except OSError:
            pass
        if self._owned_cache:
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    def __enter__(self) -> "MultiProcessServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MultiProcessServer({self.host!r}, {self.port}, "
            f"workers={self.workers}, alive={self.alive()})"
        )
