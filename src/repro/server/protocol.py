"""Server-side JSON envelopes and the exception -> HTTP status mapping.

The synthesis payloads themselves (``synthesis_request`` /
``synthesis_response`` and the batch forms) are *not* defined here — the
server speaks :mod:`repro.api.schema` verbatim, byte for byte.  This
module only adds the small envelopes the HTTP surface needs around them:
structured errors, job status, event pages, and the three informational
endpoints (backends, cache stats, health).  Every envelope carries the
same ``{"api": 1, "kind": "..."}`` header as the schema dataclasses so a
client can dispatch on ``kind`` alone.

Error statuses (see ``docs/server.md``):

====  ==========================================================
400   malformed JSON, schema validation, bad expressions
       (:class:`ValidationError` / :class:`ParseError` and other
       user-input :class:`ReproError` subclasses)
404   unknown path, unknown job id, unknown backend
       (:class:`UnknownBackendError`)
405   known path, wrong method
408   wall-clock budget exhausted (:class:`BudgetExceeded`)
500   anything else — a genuine server bug
====  ==========================================================
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.api.schema import API_VERSION
from repro.errors import (
    BudgetExceeded,
    ReproError,
    UnknownBackendError,
    ValidationError,
)

__all__ = [
    "error_wire",
    "status_for_exception",
    "validated_preset",
    "job_wire",
    "events_wire",
    "backends_wire",
    "cache_stats_wire",
    "health_wire",
]


def validated_preset(name: str) -> str:
    """Validate a ``?preset=`` query value against the named solver
    presets, raising :class:`ValidationError` (-> 400) on a miss.

    Returns the name unchanged: the expansion to a
    :class:`~repro.sat.solver.SolverConfig` happens where the request is
    rewritten, this is only the fail-fast input check.
    """
    from repro.sat.solver import SOLVER_PRESETS

    if name not in SOLVER_PRESETS:
        known = ", ".join(sorted(SOLVER_PRESETS))
        raise ValidationError(
            f"unknown solver preset {name!r}; known presets: {known}"
        )
    return name


def status_for_exception(exc: BaseException) -> int:
    """The HTTP status an exception maps to (table in the module doc)."""
    if isinstance(exc, BudgetExceeded):
        return 408
    if isinstance(exc, UnknownBackendError):
        return 404
    if isinstance(exc, ReproError):
        # ValidationError, ParseError, and every other malformed-input
        # error the library raises: the request was wrong, not the server.
        return 400
    return 500


def error_wire(status: int, exc: BaseException) -> dict:
    """The structured error payload for a failed request."""
    return {
        "api": API_VERSION,
        "kind": "error",
        "status": status,
        "type": type(exc).__name__,
        "error": str(exc) or type(exc).__name__,
    }


def job_wire(job) -> dict:
    """Status envelope for one background batch job.

    ``response`` carries the finished ``batch_response`` wire form (or
    ``null`` while running); ``error`` carries the error envelope of a
    failed job.  ``events`` is the buffer length, i.e. the cursor an
    up-to-date poller would hold.  ``Job.snapshot()`` reads the mutable
    fields under the job's condition so the envelope is coherent even
    while the job thread is finishing.
    """
    return {
        "api": API_VERSION,
        "kind": "job",
        "job_id": job.job_id,
        "size": job.size,
        **job.snapshot(),
    }


def events_wire(
    job_id: str, events: list[dict], cursor: int, done: bool
) -> dict:
    """One page of a job's event stream (see ``Job.wait_events``)."""
    return {
        "api": API_VERSION,
        "kind": "events",
        "job_id": job_id,
        "events": events,
        "cursor": cursor,
        "done": done,
    }


def backends_wire(names: list[str]) -> dict:
    return {
        "api": API_VERSION,
        "kind": "backends",
        "backends": sorted(names),
    }


def cache_stats_wire(
    engine_stats, disk: Optional[dict], cache_dir: Optional[str], pool
) -> dict:
    """The served cache/work accounting.

    ``engine`` is the merged :class:`~repro.engine.parallel.EngineStats`
    across the whole session pool — ``solver_calls`` staying flat across
    a repeated request is the observable "this was served warm" signal
    the benchmarks and tests assert.  ``disk`` summarizes the shared
    on-disk cache directory (entry/temp counts and bytes).
    """
    return {
        "api": API_VERSION,
        "kind": "cache_stats",
        "cache_dir": cache_dir,
        "engine": dataclasses.asdict(engine_stats),
        "disk": disk,
        "pool": {"size": pool.size, "jobs": pool.jobs, "busy": pool.busy},
    }


def health_wire(version: str, uptime: float, jobs: int) -> dict:
    return {
        "api": API_VERSION,
        "kind": "health",
        "status": "ok",
        "version": version,
        "uptime": uptime,
        "jobs": jobs,
    }
