"""The threaded HTTP front-end: stdlib ``http.server`` transport.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, no third-party dependencies.  Routing, request execution and
the wire bytes all live in the transport-agnostic
:class:`~repro.server.core.ServiceCore` shared with the asyncio
front-end (:mod:`repro.server.async_app`), so the two servers cannot
drift: this module only parses HTTP exchanges and writes the bytes the
core hands back.  The routes (details and curl examples in
``docs/server.md``):

==========================  =============================================
``POST /v1/synthesize``     one ``synthesis_request`` -> the
                            ``synthesis_response`` wire form, byte for
                            byte what ``janus synth --json`` prints
``POST /v1/batch``          a ``batch_request`` -> ``batch_response``;
                            with ``?mode=async`` -> ``202`` + a ``job``
                            envelope instead of blocking
``GET /v1/jobs/<id>``       job status (+ the finished batch response)
``GET /v1/events/<id>``     long-poll one page of the job's progress
                            events (``?cursor=N&timeout=S``)
``GET /v1/backends``        registered backend names
``GET /v1/cache/stats``     merged engine counters + disk cache summary
``GET /healthz``            liveness + version + uptime
==========================  =============================================

Per-request knobs ride on the query string: ``?backend=`` overrides the
request's backend field (resolved against the registry — unknown names
404), ``?timeout=`` imposes a wall-clock budget (overrun -> 408),
``?jobs=`` asks for a different engine width than the pooled sessions
carry (served by a throwaway session against the same shared cache),
``?preset=`` applies a named :class:`~repro.sat.solver.SolverConfig`
preset to requests that carry no explicit ``solver_config`` (unknown
names 400), and ``?stream=1`` turns a synchronous synthesize/batch into
a chunked NDJSON response of progress events followed by the final
payload.
"""

from __future__ import annotations

import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import ValidationError
from repro.sat.solver import SolverConfig
from repro.server.core import (
    MAX_BODY_BYTES,
    ServiceCore,
    WireResponse,
    WireStream,
)

__all__ = ["SynthesisServer", "make_server"]


class _Handler(BaseHTTPRequestHandler):
    """Parse one HTTP exchange and write what the core returns."""

    protocol_version = "HTTP/1.1"
    # Responses go out as header + body writes; with Nagle on, the
    # second write of a keep-alive exchange can sit behind the peer's
    # delayed ACK for ~40ms — dwarfing the actual request cost.
    disable_nagle_algorithm = True
    server: "SynthesisServer"

    # ------------------------------------------------------------- plumbing
    def log_message(self, fmt: str, *args) -> None:
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _send_json(self, status: int, body: bytes, content_type: str) -> None:
        """Write one finished body with Content-Length framing."""
        self._settle_request_body()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_stream(self, stream: WireStream) -> None:
        """Write a lazy NDJSON stream with chunked framing.

        Each line the core yields becomes one chunk (line + newline);
        the terminating zero-length chunk closes the stream.  A client
        that disconnects mid-stream just stops the writes — the helper
        thread driving the synthesis finishes on its own and the session
        rejoins the pool regardless.
        """
        self._settle_request_body()
        self.send_response(stream.status)
        self.send_header("Content-Type", stream.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for line in stream.lines:
                payload = line + b"\n"
                self.wfile.write(b"%x\r\n%s\r\n" % (len(payload), payload))
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _write(self, result: "WireResponse | WireStream") -> None:
        if isinstance(result, WireStream):
            self._send_stream(result)
        else:
            self._send_json(result.status, result.body, result.content_type)

    def _settle_request_body(self) -> None:
        """Leave the connection at a request boundary before responding.

        A POST rejected before its body was read (bad header, PUT with a
        payload) would otherwise desync HTTP/1.1 keep-alive: the next
        request would be parsed out of the middle of the stale body.
        Reasonable bodies are drained and discarded; unreasonable or
        unparseable lengths close the connection instead.
        """
        if getattr(self, "_body_consumed", True) is True:
            return
        self._body_consumed = True
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if 0 <= length <= MAX_BODY_BYTES:
            while length > 0:
                chunk = self.rfile.read(min(length, 65536))
                if not chunk:
                    break
                length -= len(chunk)
        else:
            self.close_connection = True

    def _send_error_wire(self, exc: BaseException) -> None:
        response = self.server.core.error_response(exc)
        self._send_json(response.status, response.body, response.content_type)

    def _read_body(self) -> bytes:
        self._body_consumed = True
        raw = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True  # cannot find the next request
            raise ValidationError(f"malformed Content-Length: {raw!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            raise ValidationError(
                f"Content-Length {length} outside 0..{MAX_BODY_BYTES}"
            )
        return self.rfile.read(length)

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._write(self.server.core.handle("GET", self.path))

    def do_POST(self) -> None:  # noqa: N802
        self._body_consumed = not self.headers.get("Content-Length")
        try:
            body = self._read_body()
        except ValidationError as exc:
            return self._send_error_wire(exc)
        self._write(self.server.core.handle("POST", self.path, body))

    def do_PUT(self) -> None:  # noqa: N802
        self._body_consumed = not self.headers.get("Content-Length")
        self._write(self.server.core.handle("PUT", self.path))

    do_DELETE = do_PUT


class SynthesisServer(ThreadingHTTPServer):
    """The ``janus serve`` HTTP service (threaded front-end).

    Construction binds the socket; call :meth:`serve_forever` (or run it
    on a thread, as the tests and benchmarks do) to start answering.
    ``cache`` is the shared on-disk result cache every pooled session
    uses; when omitted the server owns a private temporary directory for
    its lifetime, so warm repeats hit the suite cache out of the box.
    """

    daemon_threads = True
    # The stdlib default listen backlog of 5 overflows the moment ~16
    # clients connect at once: dropped SYNs come back 1s later (the
    # kernel's retransmit) or as resets.  Match the asyncio front-end.
    request_queue_size = 128

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        pool: int = 2,
        cache: Optional[str] = None,
        npn: bool = False,
        keep_jobs: int = 128,
        verbose: bool = False,
        preset: "str | SolverConfig | None" = None,
        dispatch: Optional[str] = None,
    ) -> None:
        self.verbose = verbose
        self.core = ServiceCore(
            jobs=jobs,
            pool=pool,
            cache=cache,
            npn=npn,
            keep_jobs=keep_jobs,
            verbose=verbose,
            preset=preset,
            dispatch=dispatch,
        )
        self.started = time.monotonic()
        self.connections_accepted = 0
        self._closed = False
        self._serving = False
        self._open_connections: set = set()
        self._conn_lock = threading.Lock()
        try:
            super().__init__((host, port), _Handler)
        except OSError:
            # Bind failures (port in use, bad address) must not leak the
            # resources built above — especially the owned temp dir.
            self.core.close()
            raise

    # -------------------------------------------------------------- queries
    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    # Back-compat delegation: the pre-core server carried these directly,
    # and the tests/benchmarks/CLI still read them.
    @property
    def pool(self):
        return self.core.pool

    @property
    def jobs(self):
        return self.core.jobs

    @property
    def cache_dir(self) -> str:
        return self.core.cache_dir

    @property
    def default_config(self):
        return self.core.default_config

    def registry_names(self) -> list[str]:
        return self.core.registry_names()

    def health(self) -> dict:
        return self.core.health()

    def cache_stats(self) -> dict:
        return self.core.cache_stats()

    def run_synthesize(self, *args, **kwargs):
        return self.core.run_synthesize(*args, **kwargs)

    def run_batch(self, *args, **kwargs):
        return self.core.run_batch(*args, **kwargs)

    # ------------------------------------------------------------ lifecycle
    def process_request(self, request, client_address) -> None:
        # One accepted TCP connection per call, counted on the single
        # accept-loop thread (keep-alive requests reuse one connection —
        # the client keep-alive regression test reads this).
        self.connections_accepted += 1
        with self._conn_lock:
            self._open_connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._conn_lock:
            self._open_connections.discard(request)
        super().shutdown_request(request)

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        super().serve_forever(poll_interval)

    def close(self) -> None:
        """Stop serving and release every owned resource (idempotent).

        Safe on a server that was built but never served: stdlib
        ``shutdown()`` blocks on an event only ``serve_forever`` sets,
        so it is skipped unless serving actually started.
        """
        if self._closed:
            return
        self._closed = True
        if self._serving:
            self.shutdown()
        self.server_close()
        # Open keep-alive connections have handler threads parked on
        # readline(); shut the sockets so they see EOF and exit (the
        # asyncio front-end cancels its handler tasks the same way).
        with self._conn_lock:
            lingering = list(self._open_connections)
        for request in lingering:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already gone
        self.core.close()

    def serve_background(self) -> threading.Thread:
        """Start :meth:`serve_forever` on a daemon thread (tests/bench)."""
        # Marked serving before the thread runs: a close() racing the
        # thread start must call shutdown() (it unblocks the loop even
        # if requested first), not skip it.
        self._serving = True
        thread = threading.Thread(
            target=self.serve_forever, name="janus-serve", daemon=True
        )
        thread.start()
        return thread

    def __enter__(self) -> "SynthesisServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    pool: int = 2,
    cache: Optional[str] = None,
    npn: bool = False,
    verbose: bool = False,
    preset: "str | SolverConfig | None" = None,
    dispatch: Optional[str] = None,
    frontend: str = "threaded",
):
    """Build (and bind) a synthesis server; ``port=0`` picks a free
    ephemeral port — read it back from ``server.address``.

    ``frontend`` selects the transport: ``"threaded"`` (this module's
    thread-per-connection server, the default) or ``"async"`` (the
    asyncio front-end in :mod:`repro.server.async_app`).  Both speak the
    identical wire schema — the parity matrix in ``tests/server``
    asserts byte-for-byte agreement.
    """
    kwargs = dict(
        host=host,
        port=port,
        jobs=jobs,
        pool=pool,
        cache=cache,
        npn=npn,
        verbose=verbose,
        preset=preset,
        dispatch=dispatch,
    )
    if frontend == "threaded":
        return SynthesisServer(**kwargs)
    if frontend == "async":
        from repro.server.async_app import AsyncSynthesisServer

        return AsyncSynthesisServer(**kwargs)
    raise ValueError(
        f"unknown frontend {frontend!r}; expected 'threaded' or 'async'"
    )
