"""The HTTP application: routing, request parsing, response writing.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, no third-party dependencies — with all synthesis work
delegated to the warm :class:`~repro.server.pool.SessionPool`.  The
routes (details and curl examples in ``docs/server.md``):

==========================  =============================================
``POST /v1/synthesize``     one ``synthesis_request`` -> the
                            ``synthesis_response`` wire form, byte for
                            byte what ``janus synth --json`` prints
``POST /v1/batch``          a ``batch_request`` -> ``batch_response``;
                            with ``?mode=async`` -> ``202`` + a ``job``
                            envelope instead of blocking
``GET /v1/jobs/<id>``       job status (+ the finished batch response)
``GET /v1/events/<id>``     long-poll one page of the job's progress
                            events (``?cursor=N&timeout=S``)
``GET /v1/backends``        registered backend names
``GET /v1/cache/stats``     merged engine counters + disk cache summary
``GET /healthz``            liveness + version + uptime
==========================  =============================================

Per-request knobs ride on the query string: ``?backend=`` overrides the
request's backend field (resolved against the registry — unknown names
404), ``?timeout=`` imposes a wall-clock budget (overrun -> 408),
``?jobs=`` asks for a different engine width than the pooled sessions
carry (served by a throwaway session against the same shared cache), and
``?preset=`` applies a named :class:`~repro.sat.solver.SolverConfig`
preset to requests that carry no explicit ``solver_config`` (unknown
names 400; the server may also be started with a default preset, which
an explicit query value overrides).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.api.backends import resolve_solver_config
from repro.api.schema import BatchRequest, SynthesisRequest
from repro.api.session import Session
from repro.errors import ValidationError
from repro.sat.solver import SolverConfig
from repro.server.jobs import JobManager
from repro.server.pool import SessionPool
from repro.server.protocol import (
    backends_wire,
    cache_stats_wire,
    error_wire,
    events_wire,
    health_wire,
    job_wire,
    status_for_exception,
    validated_preset,
)

__all__ = ["SynthesisServer", "make_server"]

#: Long-poll ceiling: a single /v1/events call blocks at most this long.
MAX_POLL_SECONDS = 60.0
DEFAULT_POLL_SECONDS = 25.0
#: Request-body ceiling.  The largest legitimate payload — a batch of
#: 24-variable truth-table targets — is well under this; anything bigger
#: is a mistake or abuse and is rejected before buffering.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Route one HTTP exchange; all state lives on ``self.server``."""

    protocol_version = "HTTP/1.1"
    server: "SynthesisServer"

    # ------------------------------------------------------------- plumbing
    def log_message(self, fmt: str, *args) -> None:
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload) -> None:
        """Write ``payload`` (a wire dict, or pre-canonical bytes)."""
        self._settle_request_body()
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        else:
            body = json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _settle_request_body(self) -> None:
        """Leave the connection at a request boundary before responding.

        A POST rejected before its body was read (404 route, 405 verb,
        bad header) would otherwise desync HTTP/1.1 keep-alive: the next
        request would be parsed out of the middle of the stale body.
        Reasonable bodies are drained and discarded; unreasonable or
        unparseable lengths close the connection instead.
        """
        if getattr(self, "_body_consumed", True) is True:
            return
        self._body_consumed = True
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if 0 <= length <= MAX_BODY_BYTES:
            while length > 0:
                chunk = self.rfile.read(min(length, 65536))
                if not chunk:
                    break
                length -= len(chunk)
        else:
            self.close_connection = True

    def _send_error_wire(self, exc: BaseException) -> None:
        # Routing errors carry their own status; everything else maps
        # through the shared exception table in server.protocol.
        status = getattr(exc, "http_status", None) or status_for_exception(exc)
        self._send_json(status, error_wire(status, exc))

    def _read_body(self) -> str:
        self._body_consumed = True
        raw = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True  # cannot find the next request
            raise ValidationError(f"malformed Content-Length: {raw!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            raise ValidationError(
                f"Content-Length {length} outside 0..{MAX_BODY_BYTES}"
            )
        try:
            return self.rfile.read(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(f"request body is not UTF-8: {exc}")

    def _query(self) -> dict[str, str]:
        raw = parse_qs(urlsplit(self.path).query)
        return {k: v[-1] for k, v in raw.items()}

    def _route(self) -> str:
        return urlsplit(self.path).path.rstrip("/") or "/"

    @staticmethod
    def _float_param(query: dict, key: str) -> Optional[float]:
        if key not in query:
            return None
        try:
            value = float(query[key])
        except ValueError:
            raise ValidationError(f"{key} must be a number, got {query[key]!r}")
        if value <= 0:
            raise ValidationError(f"{key} must be positive, got {value!r}")
        return value

    @staticmethod
    def _int_param(query: dict, key: str) -> Optional[int]:
        if key not in query:
            return None
        try:
            return int(query[key])
        except ValueError:
            raise ValidationError(
                f"{key} must be an integer, got {query[key]!r}"
            )

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            route = self._route()
            if route == "/healthz":
                return self._send_json(200, self.server.health())
            if route == "/v1/backends":
                return self._send_json(
                    200, backends_wire(self.server.registry_names())
                )
            if route == "/v1/cache/stats":
                return self._send_json(200, self.server.cache_stats())
            if route.startswith("/v1/jobs/"):
                return self._get_job(route.removeprefix("/v1/jobs/"))
            if route.startswith("/v1/events/"):
                return self._get_events(route.removeprefix("/v1/events/"))
            if route in ("/v1/synthesize", "/v1/batch"):
                raise _MethodNotAllowed(f"method not allowed for {route}")
            raise _NotFound(f"no such path: {route}")
        # janalyze: allow-broad-except top-level HTTP handler — every
        # failure must become a structured error envelope (500 for bugs)
        except Exception as exc:
            self._send_error_wire(exc)

    def do_POST(self) -> None:  # noqa: N802
        self._body_consumed = not self.headers.get("Content-Length")
        try:
            route = self._route()
            if route == "/v1/synthesize":
                return self._post_synthesize()
            if route == "/v1/batch":
                return self._post_batch()
            if route in (
                "/healthz",
                "/v1/backends",
                "/v1/cache/stats",
            ) or route.startswith(("/v1/jobs/", "/v1/events/")):
                raise _MethodNotAllowed(f"method not allowed for {route}")
            raise _NotFound(f"no such path: {route}")
        # janalyze: allow-broad-except top-level HTTP handler — every
        # failure must become a structured error envelope (500 for bugs)
        except Exception as exc:
            self._send_error_wire(exc)

    def do_PUT(self) -> None:  # noqa: N802
        self._body_consumed = not self.headers.get("Content-Length")
        self._send_error_wire(
            _MethodNotAllowed(f"method not allowed for {self._route()}")
        )

    do_DELETE = do_PUT

    # ---------------------------------------------------------- POST bodies
    def _post_synthesize(self) -> None:
        query = self._query()
        request = SynthesisRequest.from_json(self._read_body())
        if "backend" in query:
            request = request.with_backend(query["backend"])
        timeout = self._float_param(query, "timeout")
        jobs = self._int_param(query, "jobs")
        preset = (
            validated_preset(query["preset"]) if "preset" in query else None
        )
        response = self.server.run_synthesize(request, timeout, jobs, preset)
        self._send_json(200, response.to_json().encode("utf-8"))

    def _post_batch(self) -> None:
        query = self._query()
        batch = BatchRequest.from_json(self._read_body())
        if query.get("mode") == "async":
            job = self.server.jobs.submit(batch)
            return self._send_json(202, job_wire(job))
        timeout = self._float_param(query, "timeout")
        response = self.server.run_batch(batch, timeout)
        self._send_json(200, response.to_json().encode("utf-8"))

    # ----------------------------------------------------------- job routes
    def _get_job(self, job_id: str) -> None:
        job = self.server.jobs.get(job_id)
        if job is None:
            raise _NotFound(f"no such job: {job_id!r}")
        self._send_json(200, job_wire(job))

    def _get_events(self, job_id: str) -> None:
        job = self.server.jobs.get(job_id)
        if job is None:
            raise _NotFound(f"no such job: {job_id!r}")
        query = self._query()
        cursor = self._int_param(query, "cursor") or 0
        timeout = self._float_param(query, "timeout")
        timeout = (
            DEFAULT_POLL_SECONDS
            if timeout is None
            else min(timeout, MAX_POLL_SECONDS)
        )
        events, cursor, done = job.wait_events(cursor, timeout)
        self._send_json(200, events_wire(job.job_id, events, cursor, done))


class _NotFound(ValidationError):
    """Route/resource miss."""

    http_status = 404


class _MethodNotAllowed(ValidationError):
    """Known route, wrong verb."""

    http_status = 405


class SynthesisServer(ThreadingHTTPServer):
    """The ``janus serve`` HTTP service.

    Construction binds the socket; call :meth:`serve_forever` (or run it
    on a thread, as the tests and benchmarks do) to start answering.
    ``cache`` is the shared on-disk result cache every pooled session
    uses; when omitted the server owns a private temporary directory for
    its lifetime, so warm repeats hit the suite cache out of the box.
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        pool: int = 2,
        cache: Optional[str] = None,
        npn: bool = False,
        keep_jobs: int = 128,
        verbose: bool = False,
        preset: "str | SolverConfig | None" = None,
        dispatch: Optional[str] = None,
    ) -> None:
        self.verbose = verbose
        # The server-wide default solver tuning (a preset name or a full
        # SolverConfig); validated/resolved up front so a typo fails at
        # startup, not on the first request.
        if isinstance(preset, str):
            validated_preset(preset)
        self.default_config = (
            resolve_solver_config(preset) if preset is not None else None
        )
        self._owned_cache = cache is None
        self.cache_dir = (
            tempfile.mkdtemp(prefix="janus-serve-") if cache is None else cache
        )
        self.pool = SessionPool(
            size=pool, jobs=jobs, cache=self.cache_dir, npn=npn,
            dispatch=dispatch,
        )
        self.jobs = JobManager(self.pool, keep=keep_jobs)
        self.started = time.monotonic()
        self._closed = False
        self._serving = False
        try:
            super().__init__((host, port), _Handler)
        except OSError:
            # Bind failures (port in use, bad address) must not leak the
            # resources built above — especially the owned temp dir.
            self.pool.close()
            if self._owned_cache:
                shutil.rmtree(self.cache_dir, ignore_errors=True)
            raise

    # -------------------------------------------------------------- queries
    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def registry_names(self) -> list[str]:
        from repro.api.backends import backend_names

        return backend_names()

    def health(self) -> dict:
        from repro import __version__

        return health_wire(
            __version__, time.monotonic() - self.started, len(self.jobs)
        )

    def cache_stats(self) -> dict:
        from repro.engine.cache import ResultCache
        from repro.engine.gc import cache_stats
        from repro.errors import CacheError

        disk = None
        try:
            st = cache_stats(ResultCache(self.cache_dir))
            disk = {
                "entries": st.entries,
                "entry_bytes": st.entry_bytes,
                "temp_files": st.temp_files,
                "temp_bytes": st.temp_bytes,
            }
        except (CacheError, OSError):
            pass  # an unreadable cache dir degrades to engine stats only
        return cache_stats_wire(
            self.pool.stats(), disk, self.cache_dir, self.pool
        )

    # ------------------------------------------------------------ execution
    def _apply_preset(
        self, request: SynthesisRequest, preset: Optional[str]
    ) -> SynthesisRequest:
        """Rewrite the request under the effective solver preset.

        Precedence: an explicit ``solver_config`` in the request body
        always wins; then the ``?preset=`` query value; then the
        server-wide default config; then nothing.
        """
        import dataclasses

        config = (
            SolverConfig.preset(preset)
            if preset is not None
            else self.default_config
        )
        if config is None or request.options.solver_config is not None:
            return request
        return dataclasses.replace(
            request,
            options=dataclasses.replace(
                request.options, solver_config=config
            ),
        )

    def run_synthesize(
        self,
        request: SynthesisRequest,
        timeout: Optional[float] = None,
        jobs: Optional[int] = None,
        preset: Optional[str] = None,
    ):
        request = self._apply_preset(request, preset)
        if jobs is not None:
            # Same normalization the pool applied to its own width, so
            # ?jobs=0 ("all CPUs") or a clamped negative matching the
            # pool is served warm instead of paying one-off engine setup.
            from repro.engine.parallel import default_jobs

            jobs = default_jobs() if jobs == 0 else max(1, jobs)
        if jobs is not None and jobs != self.pool.jobs:
            # A one-off engine width: a throwaway session over the same
            # shared cache, so the request still sees (and feeds) the
            # warm result layers.  Its counters are folded into the
            # pool's retired total so /v1/cache/stats stays truthful.
            def run_oneoff(_unused: Session):
                with Session(
                    jobs=jobs, cache=self.cache_dir, npn=self.pool.npn,
                    dispatch=self.pool.dispatch,
                ) as session:
                    try:
                        return session.synthesize(request)
                    finally:
                        self.pool.absorb(session)

            return self.pool.run(run_oneoff, timeout)
        return self.pool.run(
            lambda session: session.synthesize(request), timeout
        )

    def run_batch(self, batch: BatchRequest, timeout: Optional[float] = None):
        return self.pool.run(lambda session: session.run_batch(batch), timeout)

    # ------------------------------------------------------------ lifecycle
    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        super().serve_forever(poll_interval)

    def close(self) -> None:
        """Stop serving and release every owned resource (idempotent).

        Safe on a server that was built but never served: stdlib
        ``shutdown()`` blocks on an event only ``serve_forever`` sets,
        so it is skipped unless serving actually started.
        """
        if self._closed:
            return
        self._closed = True
        if self._serving:
            self.shutdown()
        self.server_close()
        self.pool.close()
        if self._owned_cache:
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    def serve_background(self) -> threading.Thread:
        """Start :meth:`serve_forever` on a daemon thread (tests/bench)."""
        # Marked serving before the thread runs: a close() racing the
        # thread start must call shutdown() (it unblocks the loop even
        # if requested first), not skip it.
        self._serving = True
        thread = threading.Thread(
            target=self.serve_forever, name="janus-serve", daemon=True
        )
        thread.start()
        return thread

    def __enter__(self) -> "SynthesisServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    pool: int = 2,
    cache: Optional[str] = None,
    npn: bool = False,
    verbose: bool = False,
    preset: "str | SolverConfig | None" = None,
    dispatch: Optional[str] = None,
) -> SynthesisServer:
    """Build (and bind) a :class:`SynthesisServer`; ``port=0`` picks a
    free ephemeral port — read it back from ``server.address``."""
    return SynthesisServer(
        host=host,
        port=port,
        jobs=jobs,
        pool=pool,
        cache=cache,
        npn=npn,
        verbose=verbose,
        preset=preset,
        dispatch=dispatch,
    )
