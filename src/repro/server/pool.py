"""A bounded pool of warm :class:`~repro.api.Session` objects.

The HTTP service must amortize engine setup the same way a long-lived
``Session`` does for a Python caller: worker pools, the in-memory LRU,
the incremental probers and the suite cache all live *inside* a session's
engines, so throwing a session away per request throws the warmth away
with it.  :class:`SessionPool` keeps ``size`` sessions alive for the
server's lifetime and hands them out one request at a time:

* **Bounded concurrency** — at most ``size`` requests synthesize at
  once; further requests queue on the checkout (FIFO).  The HTTP layer
  therefore never needs its own admission control.
* **Exclusive checkout** — a session serves one request at a time, which
  is what makes the progress-event channel attributable: every event a
  checked-out session emits belongs to the request holding it.
* **Shared disk cache** — all sessions point at one cache directory, so
  a result computed through any session warms every other (the suite
  layer serves whole results; repeats do zero SAT calls regardless of
  which pool slot they land on).
* **Deadlines** — :meth:`run` can impose a wall-clock budget.  A request
  that overruns raises :class:`~repro.errors.BudgetExceeded` (the HTTP
  layer maps it to 408); its session keeps working in the background and
  rejoins the pool only when the stale computation actually finishes, so
  an overrun can never corrupt a later request.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.api.session import Session
from repro.engine.parallel import EngineStats, default_jobs
from repro.errors import BudgetExceeded
from repro.gen.dispatch import DispatchTable

__all__ = ["SessionPool"]


class SessionPool:
    """``size`` warm sessions behind a blocking FIFO checkout."""

    def __init__(
        self,
        size: int = 2,
        jobs: int = 1,
        cache: Optional[str] = None,
        npn: bool = False,
        dispatch: Union[DispatchTable, str, Path, None] = None,
    ) -> None:
        self.size = max(1, int(size))
        # 0 keeps the CLI convention: one worker per *available* CPU.
        self.jobs = default_jobs() if jobs == 0 else max(1, int(jobs))
        self.cache = cache
        self.npn = npn
        # One dispatch table shared by every pooled session (the table is
        # lock-guarded), so portfolio wins learned through any slot speed
        # up the others.  A path makes the pool the owner: the table is
        # persisted when the pool closes.
        self._dispatch_owner = dispatch is not None and not isinstance(
            dispatch, DispatchTable
        )
        if self._dispatch_owner:
            dispatch = DispatchTable(dispatch)
        self.dispatch: Optional[DispatchTable] = dispatch
        self._sessions: list[Session] = [
            self._make_session() for _ in range(self.size)
        ]
        self._idle: "queue.Queue[Session]" = queue.Queue()
        for session in self._sessions:
            self._idle.put(session)
        # Guards the closed flag against the release/close race: without
        # it a release racing close() could re-enqueue a session after
        # the drain and leak its worker pool.
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        # Counters of sessions that no longer exist (one-off engine
        # widths); stats() folds them in so served totals stay truthful.
        self._retired = EngineStats()  # guarded-by: _lock

    def _make_session(self) -> Session:
        return Session(
            jobs=self.jobs, cache=self.cache, npn=self.npn,
            dispatch=self.dispatch,
        )

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut every session down.  Sessions still held by in-flight
        requests are closed by their release."""
        with self._lock:
            already_closed = self._closed
            self._closed = True
            while True:
                try:
                    session = self._idle.get_nowait()
                except queue.Empty:
                    break
                session.close()
        if (
            self._dispatch_owner
            and self.dispatch is not None
            and self.dispatch.path is not None
            and not already_closed
        ):
            self.dispatch.save()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- checkout
    def acquire(self) -> Session:
        # Polling get instead of a bare blocking get: a request that
        # arrives while every session is checked out during shutdown
        # would otherwise wait on a queue nothing will ever refill
        # (release() closes sessions once the pool is closed).
        while True:
            with self._lock:
                closed = self._closed
            if closed:
                raise RuntimeError("session pool is closed")
            try:
                return self._idle.get(timeout=0.1)
            except queue.Empty:
                continue

    def release(self, session: Session) -> None:
        with self._lock:
            if self._closed:
                session.close()
            else:
                self._idle.put(session)

    def absorb(self, session: Session) -> None:
        """Fold a dying session's counters into the pool totals (called
        for one-off sessions before they close)."""
        snapshot = dataclasses.asdict(session.stats)
        with self._lock:
            self._retired.merge(snapshot)

    @property
    def busy(self) -> int:
        """Sessions currently checked out (approximate under races)."""
        return self.size - self._idle.qsize()

    # ------------------------------------------------------------- execution
    def run(
        self,
        fn: Callable[[Session], Any],
        timeout: Optional[float] = None,
    ) -> Any:
        """Run ``fn(session)`` on a checked-out session.

        Without a ``timeout`` the call runs on the caller's thread.  With
        one, it runs on a helper thread and the caller waits at most
        ``timeout`` seconds: on overrun, :class:`BudgetExceeded` is
        raised immediately while the helper keeps going — the session is
        released back to the pool by whichever side finishes the work.
        """
        session = self.acquire()
        if timeout is None:
            try:
                return fn(session)
            finally:
                self.release(session)

        outcome: dict[str, Any] = {}
        done = threading.Event()

        def work() -> None:
            try:
                outcome["value"] = fn(session)
            # janalyze: allow-broad-except helper thread — the exception
            # is delivered to (and re-raised by) the waiting caller
            except BaseException as exc:
                outcome["error"] = exc
            finally:
                done.set()
                self.release(session)

        thread = threading.Thread(
            target=work, name="janus-serve-worker", daemon=True
        )
        thread.start()
        if not done.wait(timeout):
            raise BudgetExceeded(
                f"request exceeded its {timeout:g}s wall-clock budget"
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]

    # ----------------------------------------------------------------- stats
    def stats(self) -> EngineStats:
        """Merged :class:`EngineStats` across every pooled session —
        including ones currently checked out, so the served counters move
        while work is in flight."""
        total = EngineStats()
        with self._lock:
            total.merge(dataclasses.asdict(self._retired))
        for session in self._sessions:
            total.merge(dataclasses.asdict(session.stats))
        return total

    def __repr__(self) -> str:
        return (
            f"SessionPool(size={self.size}, jobs={self.jobs}, "
            f"cache={self.cache!r}, busy={self.busy})"
        )
