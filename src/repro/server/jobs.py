"""Background batch jobs with a buffered progress-event stream.

``POST /v1/batch?mode=async`` turns a :class:`~repro.api.BatchRequest`
into a *job*: the work runs on its own thread against a session checked
out of the :class:`~repro.server.pool.SessionPool`, and every structured
progress event the engine emits while the job holds that session
(:mod:`repro.engine.events`) is appended — in emission order, already in
wire form — to the job's buffer.  ``GET /v1/events/<job_id>`` long-polls
that buffer with a cursor: the call returns immediately when events past
the cursor exist, otherwise it blocks until one arrives, the job ends,
or the poll times out.  Cursors make the stream resumable and lossless —
a slow reader misses nothing, it just pages through the buffer.

A finished job keeps its result (the ``batch_response`` wire form) until
it is evicted; the manager retains the most recent ``keep`` finished
jobs so an abandoned poller cannot pin memory forever.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Optional

from repro.api.schema import BatchRequest
from repro.api.session import Session
from repro.engine.events import EngineEvent, event_to_wire
from repro.server.pool import SessionPool

__all__ = ["Job", "JobManager"]

#: Job lifecycle states, in order.
QUEUED, RUNNING, DONE, ERROR = "queued", "running", "done", "error"


class Job:
    """One asynchronous batch run: state + event buffer + result."""

    def __init__(self, job_id: str, size: int) -> None:
        self.job_id = job_id
        self.size = size  # number of requests in the batch
        # One condition guards all mutable job state; its (reentrant)
        # lock makes status/result/events move together, and waiters in
        # wait_events() wake on every transition.
        self._cond = threading.Condition()
        self.status = QUEUED  # guarded-by: _cond
        self.events: list[dict] = []  # guarded-by: _cond
        self.result: Optional[dict] = None  # guarded-by: _cond
        self.error: Optional[dict] = None  # guarded-by: _cond
        self.created = time.monotonic()
        self.finished_at: Optional[float] = None  # guarded-by: _cond

    @property
    def done(self) -> bool:
        with self._cond:
            return self.status in (DONE, ERROR)

    # ------------------------------------------------------------- mutation
    def mark_running(self) -> None:
        with self._cond:
            self.status = RUNNING
            self._cond.notify_all()

    def add_event(self, event: EngineEvent) -> None:
        wire = event_to_wire(event)
        with self._cond:
            self.events.append(wire)
            self._cond.notify_all()

    def finish(self, result: Optional[dict], error: Optional[dict]) -> None:
        with self._cond:
            self.result = result
            self.error = error
            self.status = ERROR if error is not None else DONE
            self.finished_at = time.monotonic()
            self._cond.notify_all()

    # -------------------------------------------------------------- reading
    def wait_events(
        self, cursor: int, timeout: Optional[float]
    ) -> tuple[list[dict], int, bool]:
        """Events past ``cursor``: ``(events, next_cursor, done)``.

        Blocks until at least one new event exists, the job finishes, or
        ``timeout`` seconds pass (``None`` = do not block).  The returned
        cursor is the index to pass on the next poll.
        """
        cursor = max(0, cursor)
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while (
                len(self.events) <= cursor
                and not self.done
                and deadline is not None
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            fresh = self.events[cursor:]
            return fresh, cursor + len(fresh), self.done

    def snapshot(self) -> dict:
        """One coherent view of the mutable state, for the wire layer:
        ``{status, events (buffer length), response, error}``."""
        with self._cond:
            return {
                "status": self.status,
                "events": len(self.events),
                "response": self.result,
                "error": self.error,
            }


class JobManager:
    """Create, run, look up and expire background batch jobs."""

    def __init__(self, pool: SessionPool, keep: int = 128) -> None:
        self.pool = pool
        self.keep = max(1, int(keep))
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock
        self._counter = itertools.count(1)  # guarded-by: _lock

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def submit(self, batch: BatchRequest) -> Job:
        """Register a job for ``batch`` and start it on its own thread."""
        with self._lock:
            job = Job(f"job-{next(self._counter)}", len(batch))
            self._jobs[job.job_id] = job
            self._evict_locked()
        thread = threading.Thread(
            target=self._run,
            args=(job, batch),
            name=f"janus-serve-{job.job_id}",
            daemon=True,
        )
        thread.start()
        return job

    def _run(self, job: Job, batch: BatchRequest) -> None:
        def work(session: Session) -> dict:
            session.subscribe(job.add_event)
            try:
                return session.run_batch(batch).to_wire()
            finally:
                session.unsubscribe(job.add_event)

        job.mark_running()
        try:
            result = self.pool.run(work)
        # janalyze: allow-broad-except job thread — any failure must be
        # recorded as the job's error envelope so pollers see it
        except Exception as exc:
            # Import here to keep jobs.py free of HTTP concerns beyond
            # the one error envelope it must record.
            from repro.server.protocol import error_wire, status_for_exception

            job.finish(None, error_wire(status_for_exception(exc), exc))
        else:
            job.finish(result, None)

    def _evict_locked(self) -> None:
        """Drop the oldest *finished* jobs beyond the retention bound."""
        finished = [j for j in self._jobs.values() if j.done]
        excess = len(self._jobs) - self.keep
        if excess <= 0:
            return
        finished.sort(key=lambda j: j.finished_at or 0.0)
        for job in finished[:excess]:
            del self._jobs[job.job_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
