"""Experiment runner: executes algorithms on instances and collects rows.

The runner mirrors the paper's reporting: for every instance it records
the function signature (#in, #pi, degree), the initial bounds (lb, old ub
from DP/PS/DPS, new ub including IPS/IDPS/DS) and, per algorithm, the
solution shape, switch count and wall time.  Published values ride along
so harnesses can print paper-vs-measured side by side.

Profiles keep the default run laptop-sized:

* ``fast``   — instances with at most 7 inputs (sub-second LM probes);
* ``medium`` — everything up to 8 inputs;
* ``full``   — all 48 instances (the 10/11-input ones are slow in pure
  Python; expect long runtimes, as the authors did with 6-hour budgets).

Select with ``REPRO_BENCH_PROFILE`` or the ``profile`` argument.

Suites shard across worker processes: ``run_table2(..., jobs=4)``
dispatches one instance per worker and collects rows in deterministic
(input) order, and ``cache=<dir>`` shares one persistent cache between
all workers and runs (see :mod:`repro.engine`).  The cache is layered:
individual LM probes *and* whole per-instance artifacts (the bounds
report and the JANUS result) are stored, so a warm suite run recomputes
nothing — zero SAT calls and zero upper-bound constructions.
``portfolio=True`` additionally races the eager paper encoding against
the lazy CEGAR backend inside every probe (measured by
``benchmarks/bench_parallel.py --portfolio``); portfolio answers are
valid but need not match the deterministic lattice, and are cached under
their own namespace.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.api.backends import BackendContext, get_backend
from repro.api.schema import SynthesisResponse
from repro.core.bounds import best_upper_bound
from repro.core.decompose import ub_ds
from repro.core.janus import JanusOptions, make_spec
from repro.core.structural import structural_lower_bound
from repro.core.target import TargetSpec
from repro.errors import SynthesisError
from repro.bench.instances import PAPER_TABLE2, PaperRow, build_instance

__all__ = [
    "ALGORITHMS",
    "AlgoResult",
    "BoundsReport",
    "Table2Row",
    "profile_names",
    "compute_bounds_report",
    "run_algorithm",
    "run_table2_instance",
    "run_table2",
    "format_table2",
    "default_options",
]


def _legacy_algorithm(backend_name: str) -> Callable:
    """Old-style ``fn(target, name=..., options=...)`` callable resolved
    through the backend registry (see the ``ALGORITHMS`` shim below)."""

    def run(target, name: str = "f", options: Optional[JanusOptions] = None,
            prober=None):
        options = options or JanusOptions()
        spec = make_spec(target, name=name, exact=options.exact_minimization)
        return get_backend(backend_name).run(
            spec, options, BackendContext(engine=prober)
        )

    return run


def __getattr__(name: str):
    # Deprecation shim: the old algorithm table of bare callables.  The
    # registry (repro.api.get_backend) is the supported way to resolve
    # an algorithm by name.
    if name == "ALGORITHMS":
        warnings.warn(
            "repro.bench.runner.ALGORITHMS is deprecated; resolve "
            "algorithms by name via repro.api.get_backend instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            key: _legacy_algorithm(key)
            for key in ("janus", "exact", "approx", "heuristic", "pcircuit")
        }
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

_FAST_MAX_INPUTS = 7
_MEDIUM_MAX_INPUTS = 8


def profile_names(profile: Optional[str] = None) -> list[str]:
    """Instance names included in a bench profile."""
    profile = profile or os.environ.get("REPRO_BENCH_PROFILE", "fast")
    if profile == "full":
        return [row.name for row in PAPER_TABLE2]
    if profile == "medium":
        return [
            row.name
            for row in PAPER_TABLE2
            if row.num_inputs <= _MEDIUM_MAX_INPUTS
        ]
    if profile == "fast":
        return [
            row.name
            for row in PAPER_TABLE2
            if row.num_inputs <= _FAST_MAX_INPUTS and row.num_products <= 7
        ]
    raise ValueError(f"unknown profile {profile!r} (fast|medium|full)")


def default_options(profile: Optional[str] = None) -> JanusOptions:
    """Solver budgets matched to the profile."""
    profile = profile or os.environ.get("REPRO_BENCH_PROFILE", "fast")
    if profile == "full":
        return JanusOptions(max_conflicts=400_000, lm_time_limit=1200.0)
    if profile == "medium":
        return JanusOptions(max_conflicts=150_000, lm_time_limit=300.0)
    return JanusOptions(max_conflicts=30_000, lm_time_limit=30.0)


@dataclass
class BoundsReport:
    """Initial bounds for one instance (paper's lb / oub / nub columns)."""

    lb: int
    old_ub: int  # best of DP/PS/DPS
    new_ub: int  # best including IPS/IDPS/DS
    per_method: dict[str, tuple[int, int]]
    wall_time: float


@dataclass
class AlgoResult:
    """One algorithm's outcome on one instance."""

    algorithm: str
    shape: str
    size: int
    wall_time: float
    provably_minimum: bool
    # The lattice itself as (var, positive) pairs, so determinism checks
    # (bench_parallel) can compare parallel vs serial runs cell by cell.
    entries: tuple = ()
    # Full SynthesisResponse in wire form (a plain dict, so it crosses
    # the shard-worker pickle boundary); feeds `table2 --json`.
    response: Optional[dict] = None


@dataclass
class Table2Row:
    """Everything reported for one instance of Table II."""

    name: str
    spec: TargetSpec
    paper: PaperRow
    bounds: BoundsReport
    results: dict[str, AlgoResult] = field(default_factory=dict)
    # Stats snapshot (``dataclasses.asdict`` of EngineStats) from the
    # per-instance engine, when one was used; crosses the shard-worker
    # process boundary as a plain dict so harnesses can assert cache
    # behavior (e.g. a warm run reporting zero solver calls).
    engine: Optional[dict] = None

    @property
    def signature_exact(self) -> bool:
        """False when the synthesizer only approximated the signature."""
        return not self.spec.name.startswith("~")


def _bounds_payload(report: BoundsReport) -> dict:
    return {
        "kind": "bounds",
        "lb": report.lb,
        "old_ub": report.old_ub,
        "new_ub": report.new_ub,
        "per_method": {k: [r, c] for k, (r, c) in report.per_method.items()},
        "wall_time": report.wall_time,
    }


def _bounds_from_payload(payload: dict) -> Optional[BoundsReport]:
    if payload.get("kind") != "bounds":
        return None
    try:
        return BoundsReport(
            lb=payload["lb"],
            old_ub=payload["old_ub"],
            new_ub=payload["new_ub"],
            per_method={
                k: (r, c) for k, (r, c) in payload["per_method"].items()
            },
            wall_time=payload["wall_time"],
        )
    except (KeyError, TypeError, ValueError):
        return None


def _bounds_cache(spec: TargetSpec, options: JanusOptions, prober):
    """(cache, key) for the bounds report, or (None, None) without one."""
    cache = getattr(prober, "cache", None)
    if cache is None:
        return None, None
    from repro.engine.suite import suite_cache_key

    # Use the engine's own namespace so both cache layers always agree
    # (ParallelEngine._mode requires jobs > 1 for "portfolio": a
    # single-worker portfolio engine computes eagerly).
    mode = getattr(prober, "_mode", "eager")
    return cache, suite_cache_key(spec, options, kind="bounds", mode=mode)


def compute_bounds_report(
    spec: TargetSpec,
    options: Optional[JanusOptions] = None,
    prober=None,
) -> BoundsReport:
    """lb plus old (DP/PS/DPS) and new (+IPS/IDPS/DS) upper bounds.

    When ``prober`` carries a persistent cache, the whole report is
    served from it — a warm suite run must not recompute a single bound
    (the DS bound alone re-runs JANUS on subfunctions).
    """
    options = options or default_options()
    cache, key = _bounds_cache(spec, options, prober)
    if cache is not None:
        payload = cache.get(key)
        if payload is not None:
            report = _bounds_from_payload(payload)
            if report is not None:
                stats = getattr(prober, "stats", None)
                if stats is not None:
                    stats.suite_hits += 1
                return report
    stats = getattr(prober, "stats", None)
    if stats is not None:
        if cache is not None:
            stats.suite_misses += 1
        stats.bound_calls += 1
    start = time.monotonic()
    lb = structural_lower_bound(spec)
    _best_old, old_all = best_upper_bound(spec, ("dp", "ps", "dps"))
    _best_new, new_all = best_upper_bound(spec, ("dp", "ps", "dps", "ips", "idps"))
    per_method = {k: (v.rows, v.cols) for k, v in new_all.items()}
    try:
        ds = ub_ds(spec, options, prober=prober)
        new_all["ds"] = ds
        per_method["ds"] = (ds.rows, ds.cols)
    except SynthesisError:
        pass  # DS does not apply to every target (same as the workers)
    old_ub = min(v.size for k, v in old_all.items())
    new_ub = min(v.size for v in new_all.values())
    report = BoundsReport(
        lb=lb,
        old_ub=old_ub,
        new_ub=new_ub,
        per_method=per_method,
        wall_time=time.monotonic() - start,
    )
    if cache is not None:
        cache.put(key, _bounds_payload(report))
    return report


def run_algorithm(
    algorithm: str,
    spec: TargetSpec,
    options: Optional[JanusOptions] = None,
    prober=None,
) -> AlgoResult:
    """Run one named backend on one instance.

    Algorithms resolve through the :mod:`repro.api` backend registry;
    an engine ``prober`` rides along in the :class:`BackendContext` so
    the ``janus`` backend engages probe racing and the suite-level
    result cache exactly as before the facade.
    """
    options = options or default_options()
    backend = get_backend(algorithm)
    result = backend.run(spec, options, BackendContext(engine=prober))
    response = SynthesisResponse.from_result(result, backend=algorithm)
    return AlgoResult(
        algorithm=algorithm,
        shape=result.shape,
        size=result.size,
        wall_time=result.wall_time,
        provably_minimum=result.is_provably_minimum,
        entries=tuple((e.var, e.positive) for e in result.assignment.entries),
        response=response.to_wire(),
    )


def run_table2_instance(
    name: str,
    algorithms: Sequence[str] = ("janus",),
    options: Optional[JanusOptions] = None,
    cache: Union[str, Path, None] = None,
    portfolio: bool = False,
    npn: bool = False,
) -> Table2Row:
    prober = None
    if cache is not None or portfolio:
        from repro.engine import ParallelEngine

        # In-process engine for caching: no nested pool (this already
        # runs inside a shard worker when jobs > 1), but every probe and
        # artifact goes through the shared on-disk cache.  Portfolio mode
        # needs two workers of its own to race the eager and lazy
        # backends per probe.
        prober = ParallelEngine(
            jobs=2 if portfolio else 1, cache=cache, portfolio=portfolio,
            npn=npn,
        )
    spec = build_instance(name)
    try:
        row = Table2Row(
            name=name,
            spec=spec,
            paper=next(r for r in PAPER_TABLE2 if r.name == name),
            bounds=compute_bounds_report(spec, options, prober=prober),
        )
        for algorithm in algorithms:
            row.results[algorithm] = run_algorithm(
                algorithm, spec, options, prober
            )
        if prober is not None:
            row.engine = asdict(prober.stats)
    finally:
        if prober is not None:
            prober.close()
    return row


def _instance_task(args: tuple) -> Table2Row:
    """Module-level shard task (must be picklable for the pool)."""
    name, algorithms, options, cache, portfolio, npn = args
    return run_table2_instance(
        name, algorithms, options, cache=cache, portfolio=portfolio, npn=npn
    )


def run_table2(
    names: Optional[Sequence[str]] = None,
    algorithms: Sequence[str] = ("janus",),
    options: Optional[JanusOptions] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Union[str, Path, None] = None,
    portfolio: bool = False,
    npn: bool = False,
) -> list[Table2Row]:
    """Run Table II instances, optionally sharded across ``jobs`` workers.

    Rows come back in input order regardless of which worker finishes
    first, so parallel runs produce the same report as serial ones.
    """
    names = list(names) if names is not None else profile_names()
    cache = str(cache) if cache is not None else None
    tasks = [
        (name, tuple(algorithms), options, cache, portfolio, npn)
        for name in names
    ]
    rows: list[Table2Row] = []
    if jobs > 1:
        from repro.engine import ParallelEngine

        with ParallelEngine(jobs=jobs) as engine:
            for row in engine.imap_ordered(_instance_task, tasks):
                rows.append(row)
                if verbose:
                    print(format_table2([row], header=len(rows) == 1))
        return rows
    for task in tasks:
        row = _instance_task(task)
        rows.append(row)
        if verbose:
            print(format_table2([row], header=len(rows) == 1))
    return rows


def format_table2(rows: Sequence[Table2Row], header: bool = True) -> str:
    """Render rows in the paper's Table II layout, paper values alongside."""
    cols = [
        "instance", "#in", "#pi", "d", "lb", "oub", "nub",
        "nub(paper)", "janus", "janus(paper)", "size", "CPU",
    ]
    lines = []
    fmt = (
        "{:>11} {:>4} {:>4} {:>2} {:>4} {:>5} {:>5} {:>10} "
        "{:>7} {:>12} {:>5} {:>8}"
    )
    if header:
        lines.append(fmt.format(*cols))
    for row in rows:
        janus = row.results.get("janus")
        lines.append(
            fmt.format(
                row.name + ("" if row.signature_exact else "~"),
                row.spec.num_inputs,
                row.spec.num_products,
                row.spec.degree,
                row.bounds.lb,
                row.bounds.old_ub,
                row.bounds.new_ub,
                row.paper.nub,
                janus.shape if janus else "-",
                row.paper.sol_janus,
                janus.size if janus else "-",
                f"{janus.wall_time:.1f}" if janus else "-",
            )
        )
        for algo, res in row.results.items():
            if algo == "janus":
                continue
            lines.append(
                f"{'':>11} {algo:>14}: {res.shape} size={res.size} "
                f"CPU={res.wall_time:.1f}s"
            )
    return "\n".join(lines)
