"""Benchmark instances for the paper's evaluation (Tables II and III).

The paper evaluates on 48 single-output slices of LGSynth91 PLA benchmarks
plus three multi-output benchmarks.  The original PLA files are not
shipped here (offline environment), so instances are reconstructed:

* ``squar5`` exactly, from its arithmetic definition (output k is bit
  ``k + 2`` of the square of the 5-bit input; bits 0-1 are the trivial
  ``x0`` and constant 0 the benchmark omits);
* the ``clpl`` slices exactly, from their carry-lookahead cascade
  structure ``f = a1 + b1 a2 + b1 b2 a3 + ...`` (the published
  #inputs/#pi/degree signatures match this shape precisely);
* every other named instance by a seeded synthesizer that searches for an
  irredundant minimum cover with the instance's published signature
  (#inputs, #prime implicants, degree).  The LS search behaviour is driven
  by exactly these parameters, so the comparison's shape survives the
  substitution; per-instance lattice sizes will differ from the paper and
  are reported side by side.

``PAPER_TABLE2`` transcribes the paper's Table II so harnesses can print
published-vs-measured columns; ``PAPER_TABLE3`` does the same for
Table III.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.errors import UnsatisfiableSignatureError
from repro.boolf.cube import Cube
from repro.boolf.minimize import minimize
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.target import TargetSpec

__all__ = [
    "PaperRow",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "instance_names",
    "build_instance",
    "build_multi_instance",
    "squar5_outputs",
    "clpl_output",
    "synth_signature",
]


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table II (published values)."""

    name: str
    num_inputs: int
    num_products: int
    degree: int
    lb: int
    oub: int
    nub: int
    cpu_bounds: float
    sol_pcircuit: str  # method [9]
    sol_heuristic: str  # method [11]
    cpu_heuristic: float
    sol_approx: str  # approximate [6]
    cpu_approx: float
    sol_exact: str  # exact [6]
    cpu_exact: float
    sol_janus: str
    cpu_janus: float

    @property
    def janus_size(self) -> int:
        r, c = self.sol_janus.split("x")
        return int(r) * int(c)


def _row(name, ni, pi, deg, lb, oub, nub, cpu_b, s9, s11, c11, sa, ca, se, ce, sj, cj):
    return PaperRow(name, ni, pi, deg, lb, oub, nub, cpu_b, s9, s11, c11, sa, ca,
                    se, ce, sj, cj)


#: Table II of the paper, transcribed.  CPU columns are the authors'
#: seconds on a 28-core Xeon with a 6-hour limit (21600.0 = timed out).
PAPER_TABLE2: list[PaperRow] = [
    _row("5xp1_1", 7, 11, 5, 16, 105, 32, 4.1, "5x10", "5x5", 501.2, "6x5", 21600.0, "5x5", 21600.0, "4x6", 2023.2),
    _row("5xp1_3", 6, 14, 5, 15, 135, 40, 57.3, "4x11", "5x27", 21600.0, "11x4", 21600.0, "11x4", 21600.0, "4x9", 19745.8),
    _row("b12_00", 6, 4, 4, 9, 24, 20, 0.2, "4x3", "4x3", 0.3, "4x3", 0.6, "4x3", 2.1, "4x3", 0.3),
    _row("b12_01", 7, 7, 4, 12, 35, 20, 0.2, "4x4", "4x4", 1.1, "4x4", 1.6, "5x3", 8.5, "5x3", 1.1),
    _row("b12_02", 8, 7, 5, 12, 42, 24, 0.8, "5x8", "4x4", 5.7, "5x4", 3.7, "4x4", 35.4, "4x4", 4.1),
    _row("b12_03", 4, 4, 2, 6, 6, 6, 0.1, "2x5", "3x2", 0.1, "3x2", 0.2, "3x2", 0.1, "3x2", 0.1),
    _row("b12_06", 9, 9, 6, 15, 44, 24, 4.3, "5x4", "5x4", 23.8, "5x4", 4.6, "5x4", 139.3, "5x4", 23.8),
    _row("b12_07", 7, 6, 4, 16, 24, 24, 0.3, "6x8", "3x6", 1.1, "5x4", 2.5, "3x6", 5.4, "3x6", 1.5),
    _row("c17_01", 4, 4, 2, 6, 6, 6, 0.1, "3x2", "3x2", 0.1, "3x2", 0.2, "3x2", 0.1, "3x2", 0.1),
    _row("clpl_00", 7, 4, 4, 12, 16, 15, 0.2, "4x5", "3x4", 0.4, "3x4", 0.3, "3x4", 1.3, "3x4", 0.3),
    _row("clpl_03", 11, 6, 6, 16, 36, 24, 0.6, "6x9", "3x6", 19.6, "3x6", 2.3, "3x6", 200.0, "3x6", 84.9),
    _row("clpl_04", 9, 5, 5, 15, 25, 18, 0.3, "5x8", "3x5", 5.0, "3x5", 1.3, "3x5", 25.3, "3x5", 1.3),
    _row("dc1_00", 4, 4, 3, 9, 16, 15, 0.2, "4x4", "3x3", 0.1, "3x3", 0.4, "3x3", 0.4, "3x3", 0.2),
    _row("dc1_02", 4, 4, 3, 12, 16, 15, 0.2, "3x5", "3x4", 0.1, "3x4", 0.3, "4x3", 0.2, "4x3", 0.3),
    _row("dc1_03", 4, 4, 4, 9, 20, 18, 0.2, "4x5", "4x3", 0.2, "4x3", 0.4, "4x3", 0.5, "4x3", 0.3),
    _row("ex5_06", 7, 8, 3, 16, 32, 24, 0.3, "3x10", "3x6", 1.2, "3x7", 12.0, "3x6", 7.2, "3x6", 2.1),
    _row("ex5_07", 8, 10, 4, 24, 40, 27, 0.7, "3x13", "4x6", 19.7, "3x9", 332.2, "4x6", 473.2, "3x8", 2.5),
    _row("ex5_08", 8, 7, 3, 20, 21, 21, 0.2, "3x9", "3x7", 0.0, "3x7", 9.3, "3x7", 51.2, "3x7", 7.2),
    _row("ex5_09", 8, 10, 4, 24, 40, 30, 12.3, "3x11", "4x6", 5.7, "3x8", 108.2, "4x6", 454.6, "3x8", 17.6),
    _row("ex5_10", 6, 7, 3, 16, 21, 21, 0.2, "3x9", "3x6", 0.7, "3x6", 1.4, "3x6", 3.8, "3x6", 0.5),
    _row("ex5_12", 8, 9, 3, 15, 25, 20, 0.2, "5x9", "3x5", 1.8, "3x5", 1.7, "3x5", 13.7, "3x5", 12.6),
    _row("ex5_13", 8, 9, 3, 24, 36, 27, 0.9, "3x13", "3x8", 10.0, "4x6", 57.6, "4x6", 190.2, "3x8", 2.8),
    _row("ex5_14", 8, 8, 2, 16, 16, 16, 0.2, "3x11", "2x8", 0.9, "2x8", 1.2, "2x8", 6.7, "2x8", 0.2),
    _row("ex5_15", 8, 12, 4, 20, 72, 33, 3.1, "4x13", "4x7", 48.5, "6x12", 21600.0, "6x5", 21600.0, "3x8", 2562.4),
    _row("ex5_17", 8, 14, 4, 20, 105, 42, 23.2, "4x10", "4x7", 1425.6, "10x6", 21600.0, "6x6", 21600.0, "3x9", 4377.6),
    _row("ex5_19", 8, 6, 3, 16, 18, 18, 0.1, "5x7", "3x6", 1.4, "3x6", 1.1, "3x6", 6.9, "3x6", 0.4),
    _row("ex5_21", 8, 10, 3, 20, 57, 30, 0.5, "4x9", "3x7", 8.2, "4x7", 1364.6, "3x7", 280.9, "3x7", 790.8),
    _row("ex5_22", 7, 6, 3, 16, 33, 21, 0.2, "3x8", "3x6", 1.3, "3x6", 2.0, "3x6", 8.4, "3x6", 1.2),
    _row("ex5_23", 8, 12, 4, 24, 92, 36, 39.0, "4x11", "4x8", 2465.0, "11x5", 21600.0, "3x9", 15418.6, "3x9", 3726.4),
    _row("ex5_24", 8, 14, 5, 20, 105, 33, 7.0, "5x14", "15x7", 21600.0, "3x11", 21600.0, "4x7", 21600.0, "3x8", 1638.8),
    _row("ex5_25", 8, 8, 3, 20, 40, 27, 0.3, "3x8", "3x7", 16.4, "3x7", 6.4, "3x7", 79.4, "3x7", 152.7),
    _row("ex5_26", 8, 10, 3, 20, 57, 30, 0.7, "4x11", "3x7", 12.9, "3x9", 384.5, "3x7", 238.5, "3x7", 36.3),
    _row("ex5_27", 8, 11, 4, 20, 77, 27, 1.3, "4x10", "4x6", 58.1, "3x8", 1049.5, "4x6", 1561.3, "3x8", 1229.3),
    _row("ex5_28", 8, 9, 3, 24, 27, 27, 0.2, "3x13", "3x8", 5.3, "3x8", 180.2, "6x4", 51.5, "3x8", 1.6),
    _row("misex1_00", 4, 2, 4, 6, 8, 8, 0.1, "4x3", "4x2", 0.1, "4x2", 0.2, "4x2", 0.2, "4x2", 0.1),
    _row("misex1_01", 6, 5, 4, 12, 35, 18, 0.2, "5x5", "3x5", 1.9, "4x4", 1.7, "3x5", 7.4, "3x5", 1.1),
    _row("misex1_02", 7, 5, 5, 12, 40, 25, 0.4, "5x5", "5x4", 24.0, "5x4", 4.6, "5x4", 50.9, "5x4", 19.7),
    _row("misex1_03", 7, 4, 5, 9, 28, 20, 0.3, "4x6", "4x3", 0.9, "5x3", 1.2, "4x3", 3.9, "4x3", 0.5),
    _row("misex1_04", 4, 5, 4, 12, 25, 18, 0.2, "4x7", "3x4", 0.2, "5x3", 1.0, "3x4", 0.7, "3x4", 0.4),
    _row("misex1_05", 6, 6, 4, 12, 42, 21, 0.3, "4x6", "4x4", 4.6, "5x4", 4.9, "4x4", 13.4, "4x4", 2.1),
    _row("misex1_06", 6, 5, 4, 12, 35, 18, 0.2, "4x7", "5x3", 1.3, "5x3", 1.6, "5x3", 4.7, "5x3", 1.3),
    _row("misex1_07", 6, 4, 4, 9, 20, 18, 0.3, "5x5", "4x3", 0.7, "5x3", 1.0, "4x3", 1.6, "4x3", 0.5),
    _row("mp2d_01", 10, 8, 5, 24, 48, 30, 4.3, "4x11", "5x7", 28.7, "4x7", 291.3, "3x9", 6478.3, "3x9", 3257.3),
    _row("mp2d_02", 11, 10, 4, 28, 50, 33, 0.9, "4x13", "4x9", 33.9, "4x7", 730.7, "4x7", 4580.7, "4x7", 948.9),
    _row("mp2d_03", 10, 5, 8, 15, 72, 32, 4.5, "7x6", "5x5", 42.3, "4x6", 188.2, "6x4", 1322.7, "4x6", 271.2),
    _row("mp2d_04", 10, 6, 9, 15, 57, 36, 5.5, "7x3", "7x3", 18.9, "7x3", 58.8, "7x3", 3043.1, "7x3", 286.8),
    _row("mp2d_06", 5, 3, 5, 8, 18, 16, 0.3, "5x4", "6x2", 0.3, "7x2", 1.2, "4x3", 1.1, "6x2", 0.4),
    _row("newtag_00", 8, 8, 3, 16, 32, 24, 0.2, "3x8", "3x6", 2.7, "3x6", 2.1, "3x6", 19.0, "3x6", 2.2),
]

#: Table III of the paper: (name, #out, straightforward sol/size/CPU,
#: JANUS-MF sol/size/CPU).
PAPER_TABLE3: dict[str, dict] = {
    "bw": {"outputs": 28, "sf_sol": "5x119", "sf_size": 595, "sf_cpu": 12.7,
           "mf_sol": "3x135", "mf_size": 405, "mf_cpu": 14.1},
    "misex1": {"outputs": 7, "sf_sol": "5x31", "sf_size": 155, "sf_cpu": 25.3,
               "mf_sol": "3x42", "mf_size": 126, "mf_cpu": 30.4},
    "squar5": {"outputs": 8, "sf_sol": "5x31", "sf_size": 155, "sf_cpu": 31.7,
               "mf_sol": "3x36", "mf_size": 108, "mf_cpu": 59.7},
}


def instance_names() -> list[str]:
    return [row.name for row in PAPER_TABLE2]


def _paper_row(name: str) -> PaperRow:
    for row in PAPER_TABLE2:
        if row.name == name:
            return row
    raise KeyError(f"unknown instance {name!r}")


# ------------------------------------------------------------ exact rebuilds
def clpl_output(num_products: int) -> Sop:
    """A clpl slice: the carry-lookahead cascade with ``k`` products.

    ``f = a1 + b1 a2 + b1 b2 a3 + ... + b1..b_{k-1} a_k`` over
    ``2k - 1`` variables; product i has i literals, so #pi = k and
    degree = k, matching the published clpl signatures exactly.
    """
    num_vars = 2 * num_products - 1
    # variables: a_i at even indices 0,2,..; b_i at odd indices 1,3,..
    cubes = []
    for i in range(num_products):
        lits = [(2 * i, True)] + [(2 * j + 1, True) for j in range(i)]
        cubes.append(Cube.from_literals(lits, num_vars))
    return Sop(cubes, num_vars)


def squar5_outputs() -> list[TruthTable]:
    """The 8 non-trivial outputs of squar5: bits 2..9 of x**2, x 5-bit."""
    outs = []
    for bit in range(2, 10):
        values = np.zeros(32, dtype=bool)
        for x in range(32):
            values[x] = bool((x * x) >> bit & 1)
        outs.append(TruthTable(values, 5))
    return outs


# -------------------------------------------------------- seeded synthesis
def stable_seed(name: str) -> int:
    """Process-independent seed for an instance name (crc32, not hash())."""
    return zlib.crc32(name.encode())


def synth_signature(
    num_inputs: int,
    num_products: int,
    degree: int,
    name: str = "synthetic",
    base_seed: int = 0,
    max_tries: int = 400,
) -> TargetSpec:
    """Search for a function whose minimum cover has the given signature.

    Seeded rejection sampling: propose covers, minimize exactly, accept on
    a (#pi, degree, full support) match.  Falls back to the closest
    attempt when no exact match is found within ``max_tries`` (recorded in
    the spec name with a ``~`` prefix so reports can flag it).
    """
    # An impossible signature used to surface as a raw numpy ValueError
    # from cube sampling (degree > #inputs) or an opaque fallback miss;
    # validate up front so a broken published row names itself.
    if num_inputs < 1 or num_products < 1 or degree < 1:
        raise UnsatisfiableSignatureError(
            name, num_inputs, num_products, degree,
            "every signature component must be at least 1",
        )
    if degree > num_inputs:
        raise UnsatisfiableSignatureError(
            name, num_inputs, num_products, degree,
            "a product cannot have more literals than there are inputs",
        )
    best: Optional[TargetSpec] = None
    best_err = None
    for attempt in range(max_tries):
        rng = np.random.default_rng((base_seed, attempt, num_inputs, degree))
        sop = _propose(rng, num_inputs, num_products, degree)
        tt = sop.to_truthtable()
        if tt.is_zero() or tt.is_one():
            continue
        cover = minimize(tt)
        support_ok = len(cover.support()) == num_inputs
        err = (
            abs(cover.num_products - num_products) * 10
            + abs(cover.degree - degree) * 10
            + (0 if support_ok else 5)
        )
        if err == 0:
            spec = TargetSpec(
                name=name,
                tt=tt,
                isop=cover.sorted(),
                dual_isop=minimize(tt.dual()).sorted(),
                names=None,
            )
            return spec
        if best_err is None or err < best_err:
            best_err = err
            best = TargetSpec(
                name=f"~{name}",
                tt=tt,
                isop=cover.sorted(),
                dual_isop=minimize(tt.dual()).sorted(),
                names=None,
            )
    if best is None:
        raise UnsatisfiableSignatureError(
            name, num_inputs, num_products, degree,
            f"no usable cover within {max_tries} seeded proposals",
        )
    return best


def _propose(
    rng: np.random.Generator, num_inputs: int, num_products: int, degree: int
) -> Sop:
    """Propose a cover: one product of full degree, the rest a bit smaller."""
    cubes: set[Cube] = set()
    sizes = [degree]
    lo = max(1, degree - rng.integers(0, 3))
    while len(sizes) < num_products:
        sizes.append(int(rng.integers(lo, degree + 1)))
    guard = 0
    for size in sizes:
        while guard < 10_000:
            guard += 1
            chosen = rng.choice(num_inputs, size=size, replace=False)
            polarity = rng.integers(0, 2, size=size)
            cube = Cube.from_literals(
                [(int(v), bool(p)) for v, p in zip(chosen, polarity)], num_inputs
            )
            if cube not in cubes:
                cubes.add(cube)
                break
    return Sop(sorted(cubes), num_inputs)


# ------------------------------------------------------------- public entry
@lru_cache(maxsize=None)
def build_instance(name: str) -> TargetSpec:
    """Build a Table II instance by name (exact rebuild or synthesized)."""
    row = _paper_row(name)
    if name.startswith("clpl"):
        sop = clpl_output(row.num_products)
        tt = sop.to_truthtable()
        return TargetSpec(
            name=name,
            tt=tt,
            isop=minimize(tt).sorted(),
            dual_isop=minimize(tt.dual()).sorted(),
            names=None,
        )
    return synth_signature(
        row.num_inputs,
        row.num_products,
        row.degree,
        name=name,
        base_seed=stable_seed(name),
    )


@lru_cache(maxsize=None)
def build_multi_instance(name: str) -> tuple[TargetSpec, ...]:
    """Build a Table III multi-output instance by name."""
    if name == "squar5":
        return tuple(
            TargetSpec.from_truthtable(tt, name=f"squar5_{k}")
            for k, tt in enumerate(squar5_outputs())
        )
    if name == "misex1":
        # Table III reports 7 outputs; use the first seven Table II slices.
        return tuple(build_instance(f"misex1_{k:02d}") for k in range(7))
    if name == "bw":
        # bw: 5 inputs, 28 small outputs.  Signatures chosen to mimic the
        # benchmark's profile (mostly 1-4 products of degree 2-5).
        rng = np.random.default_rng(1991)
        specs = []
        for k in range(28):
            pi = int(rng.integers(1, 5))
            deg = int(rng.integers(2, 6))
            specs.append(
                synth_signature(5, pi, min(deg, 5), name=f"bw_{k:02d}", base_seed=k)
            )
        return tuple(specs)
    raise KeyError(f"unknown multi-output instance {name!r}")
