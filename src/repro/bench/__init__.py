"""Benchmark suite: instances, runner, and table regenerators."""

from repro.bench.instances import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PaperRow,
    build_instance,
    build_multi_instance,
    clpl_output,
    instance_names,
    squar5_outputs,
    synth_signature,
)
from repro.bench.runner import (
    AlgoResult,
    BoundsReport,
    Table2Row,
    compute_bounds_report,
    default_options,
    format_table2,
    profile_names,
    run_algorithm,
    run_table2,
    run_table2_instance,
)
from repro.bench.tables import Fig4Report, Table3Row, fig4, table1, table2, table3


def __getattr__(name: str):
    if name == "ALGORITHMS":  # deprecated shim; warns in repro.bench.runner
        from repro.bench import runner

        return runner.ALGORITHMS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PaperRow",
    "build_instance",
    "build_multi_instance",
    "clpl_output",
    "instance_names",
    "squar5_outputs",
    "synth_signature",
    "ALGORITHMS",
    "AlgoResult",
    "BoundsReport",
    "Table2Row",
    "compute_bounds_report",
    "default_options",
    "format_table2",
    "profile_names",
    "run_algorithm",
    "run_table2",
    "run_table2_instance",
    "Fig4Report",
    "Table3Row",
    "fig4",
    "table1",
    "table2",
    "table3",
]
