"""Benchmark suite: instances, runner, and table regenerators.

Reproduces the paper's experimental section and doubles as the
heavy-workload harness:

* :mod:`repro.bench.instances` — the Table II/III benchmark functions
  (MCNC PLA outputs) with :func:`build_instance` constructing specs by
  name, plus the paper's published numbers for comparison;
* :mod:`repro.bench.runner` — :func:`run_table2` and profiles
  (``fast``/``medium``/``full`` budget tiers); suites shard across
  engine workers (``jobs=N``) with per-row engine-stat snapshots;
* :mod:`repro.bench.tables` — Table I/II/III and Fig. 4 regenerators
  behind the ``janus table1|table2|table3|fig4`` CLI.

Timing benchmarks (wall-clock measurements rather than regenerated
tables) live in the top-level ``benchmarks/`` directory.
"""

from repro.bench.instances import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PaperRow,
    build_instance,
    build_multi_instance,
    clpl_output,
    instance_names,
    squar5_outputs,
    synth_signature,
)
from repro.bench.runner import (
    AlgoResult,
    BoundsReport,
    Table2Row,
    compute_bounds_report,
    default_options,
    format_table2,
    profile_names,
    run_algorithm,
    run_table2,
    run_table2_instance,
)
from repro.bench.tables import Fig4Report, Table3Row, fig4, table1, table2, table3


def __getattr__(name: str):
    if name == "ALGORITHMS":  # deprecated shim; warns in repro.bench.runner
        from repro.bench import runner

        return runner.ALGORITHMS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PaperRow",
    "build_instance",
    "build_multi_instance",
    "clpl_output",
    "instance_names",
    "squar5_outputs",
    "synth_signature",
    "ALGORITHMS",
    "AlgoResult",
    "BoundsReport",
    "Table2Row",
    "compute_bounds_report",
    "default_options",
    "format_table2",
    "profile_names",
    "run_algorithm",
    "run_table2",
    "run_table2_instance",
    "Fig4Report",
    "Table3Row",
    "fig4",
    "table1",
    "table2",
    "table3",
]
