"""Regenerators for every quantitative artifact in the paper.

* :func:`table1` — product counts of lattice functions and duals.
* :func:`fig4` — the six upper bounds on the worked example.
* :func:`table2` — the 48-instance single-function comparison.
* :func:`table3` — the multi-output comparison (straightforward vs MF).

Each returns structured data and a formatted report mixing measured and
published values, and is wired both to the CLI (``python -m repro ...``)
and to the pytest-benchmark modules in ``benchmarks/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.api.backends import BackendContext, get_backend
from repro.core.bounds import best_upper_bound
from repro.core.decompose import ub_ds
from repro.core.janus import JanusOptions
from repro.core.multi import merge_straightforward, synthesize_multi
from repro.core.structural import structural_lower_bound
from repro.core.target import TargetSpec
from repro.errors import SynthesisError
from repro.lattice.count import PAPER_TABLE1, format_table1, products_table
from repro.bench.instances import (
    PAPER_TABLE3,
    build_multi_instance,
)
from repro.bench.runner import (
    Table2Row,
    default_options,
    format_table2,
    profile_names,
    run_table2,
)

__all__ = ["table1", "fig4", "table2", "table3", "Fig4Report", "Table3Row"]

#: The worked example of Fig. 4 and its published bounds.
FIG4_FUNCTION = "cd + c'd' + abe + a'b'e'"
FIG4_PAPER_BOUNDS = {
    "dp": (6, 4),
    "ps": (3, 7),
    "dps": (11, 4),
    "ips": (3, 5),
    "idps": (8, 4),
    "ds": (3, 5),
}
FIG4_PAPER_LB = 12
FIG4_PAPER_MINIMUM = (3, 4)


def table1(max_m: int = 8, max_n: int = 8, check: bool = True) -> str:
    """Recompute Table I; optionally assert agreement with the paper."""
    entries = products_table(max_m, max_n)
    if check:
        mismatches = [
            (e.rows, e.cols, (e.products, e.dual_products), PAPER_TABLE1[(e.rows, e.cols)])
            for e in entries
            if (e.products, e.dual_products) != PAPER_TABLE1[(e.rows, e.cols)]
        ]
        if mismatches:
            raise AssertionError(f"Table I mismatches: {mismatches}")
    report = format_table1(entries)
    status = "all entries match the paper" if check else "unchecked"
    return f"{report}\n[{status}]"


@dataclass
class Fig4Report:
    bounds: dict[str, tuple[int, int]]
    lb: int
    solution: tuple[int, int]
    wall_time: float

    def format(self) -> str:
        lines = ["Fig. 4 worked example: f = " + FIG4_FUNCTION]
        lines.append(f"{'method':>8} {'measured':>9} {'paper':>7}")
        for method, paper_shape in FIG4_PAPER_BOUNDS.items():
            got = self.bounds.get(method)
            got_s = f"{got[0]}x{got[1]}" if got else "-"
            lines.append(
                f"{method:>8} {got_s:>9} {paper_shape[0]}x{paper_shape[1]:<5}"
            )
        lines.append(f"lower bound: {self.lb} (paper {FIG4_PAPER_LB})")
        lines.append(
            f"JANUS solution: {self.solution[0]}x{self.solution[1]} "
            f"(paper {FIG4_PAPER_MINIMUM[0]}x{FIG4_PAPER_MINIMUM[1]}) "
            f"in {self.wall_time:.1f}s"
        )
        return "\n".join(lines)


def fig4(options: Optional[JanusOptions] = None) -> Fig4Report:
    """Reproduce the Fig. 4 bound comparison and the 3x4 optimum."""
    options = options or default_options()
    spec = TargetSpec.from_string(FIG4_FUNCTION, name="fig4")
    start = time.monotonic()
    _best, all_bounds = best_upper_bound(spec)
    bounds = {k: (v.rows, v.cols) for k, v in all_bounds.items()}
    try:
        ds = ub_ds(spec, options)
        bounds["ds"] = (ds.rows, ds.cols)
    except SynthesisError:
        pass  # DS does not apply to every target (same as the workers)
    # Resolve JANUS through the backend registry (not core.janus
    # directly) but hand it the caller's full JanusOptions — the wire
    # schema's RequestOptions would drop the EncodeOptions knobs.
    result = get_backend("janus").run(spec, options, BackendContext())
    return Fig4Report(
        bounds=bounds,
        lb=structural_lower_bound(spec),
        solution=(result.rows, result.cols),
        wall_time=time.monotonic() - start,
    )


def table2(
    profile: Optional[str] = None,
    algorithms: Sequence[str] = ("janus",),
    names: Optional[Sequence[str]] = None,
    verbose: bool = True,
    jobs: int = 1,
    cache=None,
    portfolio: bool = False,
    npn: bool = False,
    solver_config=None,
) -> tuple[list[Table2Row], str]:
    """Run the Table II comparison for a profile; returns (rows, report).

    ``solver_config`` (a :class:`~repro.sat.solver.SolverConfig`)
    replaces the default CDCL tuning for every instance — the profile's
    conflict/time budgets still apply on top of it.
    """
    options = default_options(profile)
    if solver_config is not None:
        from dataclasses import replace

        options = replace(options, solver=solver_config)
    use = names if names is not None else profile_names(profile)
    rows = run_table2(
        use,
        algorithms,
        options,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        portfolio=portfolio,
        npn=npn,
    )
    report = format_table2(rows)
    summary = _table2_summary(rows)
    return rows, report + "\n" + summary


def _table2_summary(rows: list[Table2Row]) -> str:
    if not rows:
        return "(no rows)"
    n = len(rows)
    avg_lb = sum(r.bounds.lb for r in rows) / n
    avg_old = sum(r.bounds.old_ub for r in rows) / n
    avg_new = sum(r.bounds.new_ub for r in rows) / n
    lines = [
        f"instances: {n}",
        f"avg lb {avg_lb:.1f} | avg old ub {avg_old:.1f} | avg new ub "
        f"{avg_new:.1f} | ub improvement {100 * (1 - avg_new / avg_old):.1f}% "
        f"(paper: 42.8% on all 48)",
    ]
    janus_rows = [r for r in rows if "janus" in r.results]
    if janus_rows:
        avg_sz = sum(r.results["janus"].size for r in janus_rows) / len(janus_rows)
        opt = sum(1 for r in janus_rows if r.results["janus"].provably_minimum)
        lines.append(
            f"avg JANUS size {avg_sz:.1f} | provably minimum on "
            f"{opt}/{len(janus_rows)}"
        )
    for algo in ("exact", "approx", "heuristic", "pcircuit"):
        algo_rows = [r for r in rows if algo in r.results]
        if algo_rows:
            avg = sum(r.results[algo].size for r in algo_rows) / len(algo_rows)
            wins = sum(
                1
                for r in algo_rows
                if "janus" in r.results
                and r.results["janus"].size <= r.results[algo].size
            )
            lines.append(
                f"avg {algo} size {avg:.1f} | JANUS <= {algo} on "
                f"{wins}/{len(algo_rows)}"
            )
    return "\n".join(lines)


@dataclass
class Table3Row:
    name: str
    outputs: int
    sf_shape: str
    sf_size: int
    sf_cpu: float
    mf_shape: str
    mf_size: int
    mf_cpu: float

    def format(self) -> str:
        paper = PAPER_TABLE3[self.name]
        return (
            f"{self.name:>8} out={self.outputs:<3} "
            f"sf {self.sf_shape:>7} size={self.sf_size:<4} "
            f"(paper {paper['sf_sol']} {paper['sf_size']}) | "
            f"mf {self.mf_shape:>7} size={self.mf_size:<4} "
            f"(paper {paper['mf_sol']} {paper['mf_size']}) | "
            f"gain {100 * (1 - self.mf_size / self.sf_size):.0f}%"
        )


def table3(
    names: Sequence[str] = ("squar5", "misex1", "bw"),
    options: Optional[JanusOptions] = None,
) -> tuple[list[Table3Row], str]:
    """Run the Table III multi-output comparison."""
    options = options or default_options()
    rows = []
    for name in names:
        specs = list(build_multi_instance(name))
        sf = merge_straightforward(specs, options)
        mf = synthesize_multi(specs, options=options)
        rows.append(
            Table3Row(
                name=name,
                outputs=len(specs),
                sf_shape=sf.shape,
                sf_size=sf.size,
                sf_cpu=sf.wall_time,
                mf_shape=mf.shape,
                mf_size=mf.size,
                mf_cpu=mf.wall_time,
            )
        )
    report = "\n".join(r.format() for r in rows)
    return rows, report
