"""DRUP proof emission and forward checking.

:class:`~repro.sat.solver.CdclSolver` built with ``proof=True`` records
every derived clause (learnt clauses, level-0 strengthened inputs, the
final empty clause) and every learnt-clause deletion.  All of the solver's
lemmas are *reverse unit propagation* (RUP) consequences, the fragment of
DRAT that needs no resolution-candidate checks, so a forward RUP check
validates an entire refutation:

    for each added clause C (in order):
        assume every literal of C false, unit-propagate over the current
        clause database; the proof step is valid iff propagation conflicts.

The checker is deliberately independent of the solver — a plain
counter-free watched-literal propagator built from scratch — so that a
solver bug cannot hide in shared code.  :func:`check_refutation` returns a
:class:`ProofCheck` with the failing step when validation fails.

Proofs serialize to the standard DRAT text format (``d`` prefix for
deletions, ``0`` terminators) via :func:`write_drat` / :func:`read_drat`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, TextIO

from repro.errors import SolverError

__all__ = [
    "ProofCheck",
    "check_refutation",
    "check_rup",
    "read_drat",
    "write_drat",
]

ProofStep = tuple[str, tuple[int, ...]]


@dataclass
class ProofCheck:
    """Outcome of :func:`check_refutation`."""

    valid: bool
    steps_checked: int = 0
    reason: str = ""

    def __bool__(self) -> bool:
        return self.valid


class _Propagator:
    """Minimal two-watched-literal propagator used only for checking.

    Clauses are lists of DIMACS literals.  ``propagate`` runs from a set of
    assumed-false literals and reports whether a conflict was reached.
    """

    def __init__(self) -> None:
        self._clauses: dict[int, list[int]] = {}
        self._next_id = 0
        self._units: list[int] = []
        self._by_key: dict[tuple[int, ...], list[int]] = {}

    @staticmethod
    def _key(lits: Iterable[int]) -> tuple[int, ...]:
        return tuple(sorted(set(lits)))

    def add(self, lits: Sequence[int]) -> None:
        key = self._key(lits)
        cid = self._next_id
        self._next_id += 1
        self._clauses[cid] = list(key)
        self._by_key.setdefault(key, []).append(cid)

    def delete(self, lits: Sequence[int]) -> bool:
        """Remove one copy of the clause; False if it was never present."""
        key = self._key(lits)
        ids = self._by_key.get(key)
        if not ids:
            return False
        cid = ids.pop()
        if not ids:
            del self._by_key[key]
        del self._clauses[cid]
        return True

    def rup(self, clause: Sequence[int]) -> bool:
        """True iff asserting every literal of ``clause`` false conflicts."""
        assign: dict[int, bool] = {}

        def value(lit: int) -> Optional[bool]:
            val = assign.get(abs(lit))
            if val is None:
                return None
            return val if lit > 0 else not val

        queue: list[int] = []
        for lit in clause:
            forced = -lit
            val = value(forced)
            if val is False:
                return True  # clause contains complementary literals
            if val is None:
                assign[abs(forced)] = forced > 0
                queue.append(forced)

        # Saturating propagation over all clauses.  O(steps * clauses) —
        # adequate for checking, which favours simplicity over speed.
        changed = True
        while changed:
            changed = False
            for lits in self._clauses.values():
                unassigned: Optional[int] = None
                satisfied = False
                multiple = False
                for lit in lits:
                    val = value(lit)
                    if val is True:
                        satisfied = True
                        break
                    if val is None:
                        if unassigned is None:
                            unassigned = lit
                        else:
                            multiple = True
                            break
                if satisfied or multiple:
                    continue
                if unassigned is None:
                    return True  # conflict: clause fully falsified
                assign[abs(unassigned)] = unassigned > 0
                changed = True
        return False


def check_rup(clauses: Iterable[Sequence[int]], lemma: Sequence[int]) -> bool:
    """Standalone RUP check of ``lemma`` against ``clauses``."""
    prop = _Propagator()
    for clause in clauses:
        prop.add(clause)
    return prop.rup(lemma)


def check_refutation(
    clauses: Iterable[Sequence[int]],
    proof: Sequence[ProofStep],
    require_empty: bool = True,
) -> ProofCheck:
    """Forward-check a DRUP proof against the original formula.

    ``proof`` is the solver's ``proof`` attribute (or :func:`read_drat`
    output).  With ``require_empty=True`` the proof must derive the empty
    clause — i.e. constitute a full refutation.
    """
    prop = _Propagator()
    count = 0
    for clause in clauses:
        prop.add(clause)
        count += 1
    if count == 0 and not proof:
        return ProofCheck(False, 0, "empty formula and empty proof")

    empty_derived = False
    for step_index, (kind, lits) in enumerate(proof):
        if kind == "d":
            if not prop.delete(lits):
                return ProofCheck(
                    False,
                    step_index,
                    f"step {step_index}: deleted clause {list(lits)} not present",
                )
            continue
        if kind != "a":
            return ProofCheck(
                False, step_index, f"step {step_index}: unknown kind {kind!r}"
            )
        if not prop.rup(lits):
            return ProofCheck(
                False,
                step_index,
                f"step {step_index}: clause {list(lits)} is not RUP",
            )
        if not lits:
            empty_derived = True
            break
        prop.add(lits)

    if require_empty and not empty_derived:
        return ProofCheck(
            False, len(proof), "proof ends without deriving the empty clause"
        )
    return ProofCheck(True, len(proof))


def write_drat(proof: Sequence[ProofStep], stream: TextIO) -> None:
    """Serialize proof steps in the standard DRAT text format."""
    for kind, lits in proof:
        prefix = "d " if kind == "d" else ""
        body = " ".join(str(l) for l in lits)
        stream.write(f"{prefix}{body}{' ' if body else ''}0\n")


def read_drat(stream: TextIO) -> list[ProofStep]:
    """Parse a DRAT text proof into the solver's in-memory step format."""
    steps: list[ProofStep] = []
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        kind = "a"
        if line.startswith("d "):
            kind = "d"
            line = line[2:]
        tokens = line.split()
        if not tokens or tokens[-1] != "0":
            raise SolverError(f"line {line_no}: missing 0 terminator")
        try:
            lits = tuple(int(t) for t in tokens[:-1])
        except ValueError as exc:
            raise SolverError(f"line {line_no}: bad literal ({exc})") from exc
        if 0 in lits:
            raise SolverError(f"line {line_no}: literal 0 inside clause")
        steps.append((kind, lits))
    return steps
