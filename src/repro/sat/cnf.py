"""CNF formula container and named-variable pool.

Variables are positive integers and literals are signed non-zero integers,
DIMACS style.  :class:`VarPool` hands out fresh variable ids keyed by
arbitrary hashable objects so encoders can write
``pool.var(("map", cell, lit))`` and decode models symbolically.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

from repro.errors import EncodingError

__all__ = ["Cnf", "VarPool"]


class VarPool:
    """Allocates SAT variables, optionally keyed by hashable names."""

    def __init__(self, start: int = 1) -> None:
        if start < 1:
            raise EncodingError("variable ids start at 1")
        self._next = start
        self._by_key: dict[Hashable, int] = {}
        self._by_id: dict[int, Hashable] = {}

    @property
    def num_vars(self) -> int:
        return self._next - 1

    def fresh(self) -> int:
        """A brand-new anonymous variable."""
        var = self._next
        self._next += 1
        return var

    def var(self, key: Hashable) -> int:
        """The variable registered for ``key``, creating it on first use."""
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        var = self.fresh()
        self._by_key[key] = var
        self._by_id[var] = key
        return var

    def lookup(self, key: Hashable) -> Optional[int]:
        """The variable for ``key`` if it exists, else ``None``."""
        return self._by_key.get(key)

    def key_of(self, var: int) -> Optional[Hashable]:
        return self._by_id.get(var)

    def items(self) -> Iterator[tuple[Hashable, int]]:
        return iter(self._by_key.items())


class Cnf:
    """A conjunction of clauses with an attached variable pool."""

    def __init__(self, pool: Optional[VarPool] = None) -> None:
        self.pool = pool if pool is not None else VarPool()
        self.clauses: list[list[int]] = []

    @property
    def num_vars(self) -> int:
        return self.pool.num_vars

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def complexity(self) -> int:
        """Variables times clauses — the paper's encoding-size measure."""
        return self.num_vars * self.num_clauses

    def add(self, lits: Iterable[int]) -> None:
        """Add one clause, validating literals."""
        clause = list(lits)
        for lit in clause:
            if lit == 0:
                raise EncodingError("literal 0 is not allowed")
            if abs(lit) > self.pool.num_vars:
                raise EncodingError(
                    f"literal {lit} references an unallocated variable"
                )
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add(clause)

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={self.num_clauses})"
