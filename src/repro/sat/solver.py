"""A CDCL SAT solver with swappable propagation cores.

This is the library's replacement for glucose 4.1 (the solver the paper
uses): conflict-driven clause learning with

* two-watched-literal unit propagation,
* first-UIP conflict analysis with recursive clause minimization,
* EVSIDS variable activities with phase saving,
* Luby-sequence restarts,
* learned-clause database reduction driven by LBD and activity,
* deterministic conflict budgets and optional wall-clock budgets.

The interface is deliberately small: ``add_clause`` + ``solve``.  Literals
are signed DIMACS integers.  ``solve`` returns a :class:`SolveResult` whose
``status`` is ``"sat"``, ``"unsat"`` or ``"unknown"`` (budget ran out —
the paper treats solver timeouts as "not realizable", and the JANUS driver
mirrors that policy explicitly).

Architecture: :class:`CdclSolver` is a *driver* — it owns the search
policy (decisions, restarts, budgets, the reduce schedule, proof
logging, assumption handling) but none of the hot loops.  Those live
behind the **PropagationCore seam**: an int-packed kernel interface
(:data:`CORE_INTERFACE`) with two byte-identical implementations,

* :class:`repro.sat.core_pure.PurePythonCore` — always available, and
  itself a rewrite of the historical loop onto a flat clause arena with
  blocker watch lists;
* ``repro.sat._native.NativeCore`` — an optional C extension compiled
  from ``src/repro/sat/_native/_kernel.c``, auto-detected at import
  with graceful fallback (see :mod:`repro.sat._native`).

Core selection: the ``core=`` constructor argument wins, then the
``JANUS_NATIVE`` environment variable (``0`` forces pure, ``1``
requires native), then auto (native when built).  Both cores produce
the same decisions, the same learnt clauses and the same
:class:`SolverStats` on every instance — the parity suite
(``tests/sat/test_native_parity.py``) and DRAT proof checking pin that
down — so every byte-identity property of the engine holds no matter
which core served a probe.  ``SolverStats.core`` records which one did.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from repro.errors import SolverError
from repro.sat.core_pure import PurePythonCore
from repro.sat import _native

__all__ = [
    "CdclSolver",
    "CORE_INTERFACE",
    "SOLVER_PRESETS",
    "SolverConfig",
    "SolveRequest",
    "SolveResult",
    "SolverStats",
    "available_cores",
    "resolve_core_class",
    "solve_cnf",
    "solve_request",
]

_UNASSIGNED = -1

# Sentinel distinguishing "budget not given" from an explicit None (no
# budget) in per-call overrides.
_KEEP = object()

_RESTART_STRATEGIES = ("luby", "geometric")
_PHASE_MODES = ("save", "off")

#: The method surface a propagation core must implement.  The pure and
#: native twins are held to this list by the janalyze
#: ``dual-source-drift`` checker and the parity test matrix.
CORE_INTERFACE: tuple[str, ...] = (
    "add_var",
    "num_vars",
    "value",
    "var_value",
    "phase_of",
    "decision_level",
    "propagation_count",
    "num_learnts",
    "model",
    "pick_branch",
    "decide_next",
    "decay",
    "attach",
    "clause_lits",
    "enqueue",
    "new_level",
    "propagate",
    "backtrack",
    "analyze",
    "analyze_final",
    "reduce_db",
)


def available_cores() -> tuple[str, ...]:
    """Names of the propagation cores importable in this process."""
    if _native.native_available():
        return ("pure", "native")
    return ("pure",)


def resolve_core_class(core: Optional[str] = None):
    """Pick the propagation-core class for a new solver.

    ``core`` may be ``"pure"``, ``"native"`` or ``None`` (auto).  Auto
    consults ``JANUS_NATIVE`` (``0`` forces pure, ``1`` requires
    native) and otherwise uses the native kernel when it was importable
    at package import, falling back to the pure twin.
    """
    if core is None:
        env = os.environ.get("JANUS_NATIVE", "").strip()
        if env == "0":
            return PurePythonCore
        if env == "1":
            if _native.NativeCore is None:
                raise SolverError(
                    "JANUS_NATIVE=1 but the native kernel is not built "
                    f"({_native.native_import_error()}); build it with "
                    "`make native` or unset JANUS_NATIVE"
                )
            return _native.NativeCore
        return _native.NativeCore or PurePythonCore
    if core == "pure":
        return PurePythonCore
    if core == "native":
        if _native.NativeCore is None:
            raise SolverError(
                "native core requested but the extension is not built "
                f"({_native.native_import_error()}); build it with "
                "`make native`"
            )
        return _native.NativeCore
    raise SolverError(
        f"unknown propagation core {core!r}; expected 'pure', 'native' "
        "or None (auto)"
    )


@dataclass(frozen=True)
class SolverConfig:
    """Every tunable knob of :class:`CdclSolver`, as one frozen value.

    The defaults reproduce the solver's historical hardcoded behaviour
    *exactly* — ``SolverConfig()`` is byte-identical to the pre-config
    solver on every trajectory, which is what lets the engine cache and
    the byte-identity tests treat "no config" and "default config" as
    the same thing.

    Budgets (``max_conflicts`` / ``max_time``) are defaults, not caps:
    an explicit per-call or per-constructor budget always wins, so the
    JANUS engine's deterministic conflict budgets keep their authority
    over whatever a preset suggests.
    """

    restart_strategy: str = "luby"  # "luby" | "geometric"
    restart_base: int = 100
    restart_growth: float = 1.5  # geometric strategy only
    var_decay: float = 0.95
    clause_decay: float = 0.999
    phase_saving: str = "save"  # "save" | "off"
    reduce_base: int = 1000
    reduce_growth: float = 1.3
    max_conflicts: Optional[int] = None
    max_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.restart_strategy not in _RESTART_STRATEGIES:
            raise SolverError(
                f"unknown restart_strategy {self.restart_strategy!r}; "
                f"expected one of {_RESTART_STRATEGIES}"
            )
        if self.phase_saving not in _PHASE_MODES:
            raise SolverError(
                f"unknown phase_saving {self.phase_saving!r}; "
                f"expected one of {_PHASE_MODES}"
            )
        if self.restart_base < 1:
            raise SolverError("restart_base must be >= 1")
        if self.restart_growth <= 1.0:
            raise SolverError("restart_growth must be > 1.0")
        if not 0.0 < self.var_decay <= 1.0:
            raise SolverError("var_decay must be in (0, 1]")
        if not 0.0 < self.clause_decay <= 1.0:
            raise SolverError("clause_decay must be in (0, 1]")
        if self.reduce_base < 1:
            raise SolverError("reduce_base must be >= 1")
        if self.reduce_growth < 1.0:
            raise SolverError("reduce_growth must be >= 1.0")
        if self.max_conflicts is not None and self.max_conflicts < 0:
            raise SolverError("max_conflicts must be >= 0")
        if self.max_time is not None and self.max_time < 0:
            raise SolverError("max_time must be >= 0")

    @classmethod
    def default(cls) -> "SolverConfig":
        return cls()

    @classmethod
    def preset(cls, name: str) -> "SolverConfig":
        """A named preset; raises :class:`SolverError` for unknown names."""
        try:
            return SOLVER_PRESETS[name]
        except KeyError:
            raise SolverError(
                f"unknown solver preset {name!r}; "
                f"expected one of {sorted(SOLVER_PRESETS)}"
            ) from None

    def restart_limit(self, idx: int) -> int:
        """Conflicts allowed before the ``idx``-th (1-based) restart."""
        if self.restart_strategy == "geometric":
            return int(self.restart_base * self.restart_growth ** (idx - 1))
        return self.restart_base * _luby(idx)


# The named presets the portfolio races and the CLI/server expose.
# ``default`` is the measured pick: the PR-7 `bench_sat.py --sweep`
# matrix showed honest parity across presets on the realizability
# frontier (deterministic conflict budgets dominate), so the
# byte-identity-preserving historical tuning stays the default.
SOLVER_PRESETS: dict[str, SolverConfig] = {
    "default": SolverConfig(),
    # Rapid Luby restarts, fast-moving activities, aggressive clause-DB
    # pruning: darts for easy/shallow instances.
    "agile": SolverConfig(
        restart_base=32,
        var_decay=0.90,
        clause_decay=0.995,
        reduce_base=600,
        reduce_growth=1.2,
    ),
    # Long geometric restarts and slow decay: stays the course on
    # instances where the heuristic needs time to settle.
    "stable": SolverConfig(
        restart_strategy="geometric",
        restart_base=512,
        restart_growth=1.5,
        var_decay=0.99,
        reduce_base=2000,
    ),
    # Keeps far more learned clauses before reducing: trades memory for
    # propagation power on hard UNSAT cores.
    "heavy": SolverConfig(
        restart_base=256,
        clause_decay=0.9995,
        reduce_base=4000,
        reduce_growth=1.5,
    ),
}


@dataclass
class SolverStats:
    """Counters accumulated over a solver's lifetime."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    max_decision_level: int = 0
    core: str = "pure"  # propagation core that served this solver


@dataclass
class SolveResult:
    """Outcome of a :meth:`CdclSolver.solve` call."""

    status: str  # "sat" | "unsat" | "unknown"
    model: Optional[list[bool]] = None  # model[var-1] for external var ids
    stats: SolverStats = field(default_factory=SolverStats)
    wall_time: float = 0.0
    # For "unsat" results obtained under assumptions: a subset of the
    # assumptions that is already inconsistent with the formula (MiniSat's
    # ``conflict`` vector).  Empty when the formula is unsat outright.
    core: Optional[list[int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"

    def value(self, var: int) -> bool:
        if self.model is None:
            raise SolverError("no model available")
        return self.model[var - 1]


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...  (MiniSat's variant.)
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class CdclSolver:
    """Conflict-driven clause-learning solver over DIMACS-style literals.

    The search policy lives here; all hot loops live in the propagation
    core behind :data:`CORE_INTERFACE` (``core=`` picks one; default is
    auto-detect, see :func:`resolve_core_class`).
    """

    def __init__(
        self,
        num_vars: int = 0,
        max_conflicts=_KEEP,
        max_time=_KEEP,
        restart_base=_KEEP,
        var_decay=_KEEP,
        clause_decay=_KEEP,
        proof: bool = False,
        config: Optional[SolverConfig] = None,
        core: Optional[str] = None,
    ) -> None:
        # ``config`` is the one true tuning surface; the loose kwargs are
        # a deprecation shim for pre-SolverConfig call sites.  Explicitly
        # passed kwargs override the matching config field, so legacy
        # callers keep their exact behaviour.
        cfg = config if config is not None else SolverConfig()
        overrides = {
            name: value
            for name, value in (
                ("max_conflicts", max_conflicts),
                ("max_time", max_time),
                ("restart_base", restart_base),
                ("var_decay", var_decay),
                ("clause_decay", clause_decay),
            )
            if value is not _KEEP
        }
        if overrides:
            cfg = replace(cfg, **overrides)
        self.config = cfg
        self.ok = True
        core_cls = resolve_core_class(core)
        self.core_name: str = core_cls.core_name
        self._core = core_cls(
            cfg.var_decay,
            cfg.clause_decay,
            1 if cfg.phase_saving == "save" else 0,
        )
        self.stats = SolverStats(core=self.core_name)
        self.max_conflicts = cfg.max_conflicts
        self.max_time = cfg.max_time
        self.restart_base = cfg.restart_base
        # DRUP proof log: ("a"|"d", external-literal tuple) per event.  Only
        # *derived* clauses are logged (learnt clauses, level-0 strengthened
        # inputs, the final empty clause) plus learnt-clause deletions; this
        # is exactly the fragment :mod:`repro.sat.drat` checks.
        self.proof: Optional[list[tuple[str, tuple[int, ...]]]] = (
            [] if proof else None
        )
        self._nvars = 0
        self._num_clauses = 0  # attached problem clauses (reduce schedule)
        while self._nvars < num_vars:
            self._new_var_internal()

    # ----------------------------------------------------------- interface
    def new_var(self) -> int:
        """Allocate a variable; returns its external (1-based) id."""
        self._new_var_internal()
        return self._nvars

    def _new_var_internal(self) -> None:
        self._nvars += 1
        self._core.add_var()

    def _ensure_vars(self, ext_lits: Iterable[int]) -> None:
        top = 0
        for lit in ext_lits:
            top = max(top, abs(lit))
        while self._nvars < top:
            self._new_var_internal()

    @staticmethod
    def _to_internal(ext: int) -> int:
        var = abs(ext) - 1
        return var * 2 + (1 if ext < 0 else 0)

    @staticmethod
    def _to_external(internal: int) -> int:
        var = (internal >> 1) + 1
        return -var if internal & 1 else var

    def _log_proof(self, kind: str, internal_lits: Sequence[int]) -> None:
        if self.proof is not None:
            self.proof.append(
                (kind, tuple(self._to_external(l) for l in internal_lits))
            )

    def _sync_stats(self) -> None:
        self.stats.propagations = self._core.propagation_count()

    def add_clause(self, ext_lits: Sequence[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if not self.ok:
            return False
        core = self._core
        if core.decision_level():
            raise SolverError("clauses must be added at decision level 0")
        for lit in ext_lits:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
        self._ensure_vars(ext_lits)
        lits = sorted({self._to_internal(l) for l in ext_lits})
        # Tautology / duplicate / falsified-literal simplification at level 0.
        out: list[int] = []
        for lit in lits:
            if lit ^ 1 in out:
                return True  # tautology: x or ~x
            val = core.value(lit)
            if val == 1:
                return True  # already satisfied at level 0
            if val == 0:
                continue  # falsified at level 0: drop the literal
            out.append(lit)
        if len(out) < len(lits):
            # The stored clause was strengthened by level-0 facts; it is a
            # derived (RUP) clause, so a proof must introduce it.
            self._log_proof("a", out)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            if not core.enqueue(out[0], -1):
                self._log_proof("a", [])
                self.ok = False
                return False
            conflict = core.propagate()
            self._sync_stats()
            if conflict >= 0:
                self._log_proof("a", [])
                self.ok = False
                return False
            return True
        self._attach(out, learnt=False)
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts=_KEEP,
        max_time=_KEEP,
    ) -> SolveResult:
        """Search for a model; honour conflict/time budgets.

        ``max_conflicts`` / ``max_time`` override the constructor budgets
        for this call only (pass ``None`` to lift a budget).  Budgets are
        per call: a reused solver gets a fresh conflict allowance on
        every ``solve``, which is what lets the incremental prober give
        each probe the same deterministic budget the one-shot path has.
        """
        start = time.monotonic()
        limit_conflicts = (
            self.max_conflicts if max_conflicts is _KEEP else max_conflicts
        )
        limit_time = self.max_time if max_time is _KEEP else max_time
        try:
            result = self._solve(
                assumptions, start, limit_conflicts, limit_time
            )
        finally:
            self._sync_stats()
        result.wall_time = time.monotonic() - start
        return result

    # ------------------------------------------------------------ internals
    def _attach(self, lits: list[int], learnt: bool, lbd: int = 0) -> int:
        cref = self._core.attach(lits, 1 if learnt else 0, lbd)
        if learnt:
            self.stats.learned += 1
        else:
            self._num_clauses += 1
        return cref

    def _reduce_db(self) -> None:
        """Drop the weaker half of the learned clauses."""
        deleted = self._core.reduce_db()
        for lits in deleted:
            self._log_proof("d", lits)
        self.stats.deleted += len(deleted)

    def _decide(self, lit: int) -> None:
        core = self._core
        core.new_level()
        self.stats.decisions += 1
        level = core.decision_level()
        if level > self.stats.max_decision_level:
            self.stats.max_decision_level = level
        if not core.enqueue(lit, -1):
            raise SolverError("decision literal was already falsified")

    def _analyze_final(self, lit: int) -> list[int]:
        """Assumptions (external lits) forcing ``lit`` false — MiniSat's
        analyzeFinal, computed by the core; every decision met on the
        implication walk is an assumption (only assumptions are
        decisions while the assumption prefix is being installed)."""
        internal = self._core.analyze_final(lit)
        external = {self._to_external(l) for l in internal}
        return sorted(external, key=lambda e: (abs(e), e))

    def _solve(
        self,
        assumptions: Sequence[int],
        start: float,
        max_conflicts: Optional[int],
        max_time: Optional[float],
    ) -> SolveResult:
        if not self.ok:
            return SolveResult("unsat", stats=self.stats, core=[])
        self._ensure_vars(assumptions)
        core = self._core
        conflict = core.propagate()
        if conflict >= 0:
            self._log_proof("a", [])
            self.ok = False
            return SolveResult("unsat", stats=self.stats, core=[])

        assum = [self._to_internal(a) for a in assumptions]
        cfg = self.config
        stats = self.stats
        n_assum = len(assum)
        conflicts_start = stats.conflicts
        restart_idx = 1
        restart_limit = cfg.restart_limit(restart_idx)
        conflicts_since_restart = 0
        # Shadow of ``core.decision_level()``: the driver mirrors every
        # level change (decide, backtrack, empty assumption level) so
        # the hot loop never crosses the seam just to read it.
        dl = 0
        # With the default config (reduce_base=1000) this is the
        # historical ``max(1000, len(clauses) // 3 + 500)`` schedule.
        max_learnts = max(
            cfg.reduce_base,
            (self._num_clauses // 3) + cfg.reduce_base // 2,
        )

        while True:
            conflict = core.propagate()
            if conflict >= 0:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if dl == 0:
                    self._log_proof("a", [])
                    self.ok = False
                    return SolveResult("unsat", stats=stats, core=[])
                learnt, bt_level, lbd = core.analyze(conflict)
                self._log_proof("a", learnt)
                core.backtrack(bt_level)
                dl = bt_level
                if len(learnt) == 1:
                    if not core.enqueue(learnt[0], -1):
                        self._log_proof("a", [])
                        self.ok = False
                        return SolveResult("unsat", stats=stats, core=[])
                else:
                    cref = self._attach(learnt, learnt=True, lbd=lbd)
                    if not core.enqueue(learnt[0], cref):
                        raise SolverError(
                            "asserting literal rejected after backjump"
                        )
                core.decay()

                if (
                    max_conflicts is not None
                    and stats.conflicts - conflicts_start >= max_conflicts
                ):
                    core.backtrack(0)
                    return SolveResult("unknown", stats=stats)
                if max_time is not None and (
                    time.monotonic() - start
                ) > max_time:
                    core.backtrack(0)
                    return SolveResult("unknown", stats=stats)
                if conflicts_since_restart >= restart_limit:
                    stats.restarts += 1
                    restart_idx += 1
                    restart_limit = cfg.restart_limit(restart_idx)
                    conflicts_since_restart = 0
                    core.backtrack(0)
                    dl = 0
                continue

            if core.num_learnts() >= max_learnts:
                self._reduce_db()
                max_learnts = int(max_learnts * cfg.reduce_growth)

            # Take pending assumptions as forced decisions first.
            if dl < n_assum:
                candidate = assum[dl]
                val = core.value(candidate)
                if val == 0:
                    failed = self._analyze_final(candidate)
                    core.backtrack(0)
                    return SolveResult("unsat", stats=stats, core=failed)
                if val == 1:
                    # Already satisfied: open an empty decision level so the
                    # remaining assumptions keep their positions.
                    core.new_level()
                    dl += 1
                    continue
                self._decide(candidate)
                dl += 1
                continue
            lit = core.decide_next()
            if lit < 0:
                model = core.model()
                core.backtrack(0)
                return SolveResult("sat", model=model, stats=stats)
            stats.decisions += 1
            dl += 1
            if dl > stats.max_decision_level:
                stats.max_decision_level = dl


def solve_cnf(
    cnf,
    assumptions: Sequence[int] = (),
    max_conflicts=_KEEP,
    max_time=_KEEP,
    config: Optional[SolverConfig] = None,
) -> SolveResult:
    """One-shot convenience wrapper around :class:`CdclSolver`.

    ``max_conflicts`` / ``max_time`` override the config's budgets when
    passed explicitly (``None`` lifts the budget, as in ``solve``).
    """
    solver = CdclSolver(
        num_vars=cnf.num_vars,
        max_conflicts=max_conflicts,
        max_time=max_time,
        config=config,
    )
    for clause in cnf.clauses:
        if not solver.add_clause(clause):
            return SolveResult("unsat", stats=solver.stats)
    return solver.solve(assumptions)


@dataclass(frozen=True)
class SolveRequest:
    """A self-contained, picklable SAT workload.

    Carries plain tuples (no :class:`~repro.sat.cnf.VarPool`, no solver
    state) so it can cross a process boundary cheaply; budgets and the
    :class:`SolverConfig` ride along so every worker enforces its own
    limits and tuning.  Built for the parallel engine's process pool, but
    equally usable for shipping instances to any executor.  The
    propagation core is deliberately *not* part of the request: each
    process auto-detects its own, and core parity guarantees the answer
    is byte-identical either way.
    """

    clauses: tuple[tuple[int, ...], ...]
    num_vars: int = 0
    assumptions: tuple[int, ...] = ()
    max_conflicts: Optional[int] = None
    max_time: Optional[float] = None
    config: Optional[SolverConfig] = None

    @classmethod
    def from_cnf(
        cls,
        cnf,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        max_time: Optional[float] = None,
        config: Optional[SolverConfig] = None,
    ) -> "SolveRequest":
        return cls(
            clauses=tuple(tuple(c) for c in cnf.clauses),
            num_vars=cnf.num_vars,
            assumptions=tuple(assumptions),
            max_conflicts=max_conflicts,
            max_time=max_time,
            config=config,
        )

    def run(self) -> SolveResult:
        # An explicit request budget wins over the config's; an absent
        # one (None) defers to whatever the config carries.
        overrides: dict = {}
        if self.max_conflicts is not None:
            overrides["max_conflicts"] = self.max_conflicts
        if self.max_time is not None:
            overrides["max_time"] = self.max_time
        solver = CdclSolver(
            num_vars=self.num_vars, config=self.config, **overrides
        )
        for clause in self.clauses:
            if not solver.add_clause(clause):
                return SolveResult("unsat", stats=solver.stats)
        return solver.solve(self.assumptions)


def solve_request(request: SolveRequest) -> SolveResult:
    """Module-level entry point for ``ProcessPoolExecutor.map``/``submit``."""
    return request.run()
