"""The pure-Python :class:`PropagationCore`: an int-packed CDCL kernel.

This module is one of the two twin implementations behind the
``PropagationCore`` seam in :mod:`repro.sat.solver` (the other is the
optional C extension in :mod:`repro.sat._native`).  It owns every hot
data structure of the solver — clause storage, watch lists, the trail,
assignments, activities, the VSIDS order heap — and exposes the small
method surface the :class:`~repro.sat.solver.CdclSolver` driver
orchestrates: ``propagate`` (two-watched-literal BCP), ``analyze``
(first-UIP learning with recursive minimization), ``backtrack``,
``pick_branch``, ``reduce_db`` and friends.

Micro-architecture (shared verbatim by the C twin, which is what makes
the two cores byte-identical on every trajectory):

* **Flat clause arena** — all clauses live in one growing list of ints.
  A clause reference (*cref*) is the arena index of its first literal;
  ``arena[cref - 1]`` holds the size and ``arena[cref - 2]`` the learnt
  index (``-1`` for problem clauses).  No per-clause Python objects, no
  ``id()``-keyed side tables: activity/LBD live in parallel arrays
  indexed by the learnt index, and every tie-break that used to lean on
  ``id(clause)`` now uses the (deterministic) cref.
* **Blocker watch lists** — ``watches[lit]`` is a flat
  ``[blocker, cref, blocker, cref, ...]`` list.  A watched clause is
  skipped without touching the arena whenever its cached *blocker*
  literal is already true, which is the common case by far.
* **Parallel binary-implication lists** — ``bin_other[lit]`` /
  ``bin_cref[lit]``: when ``lit`` becomes false each partner in
  ``bin_other[lit]`` is forced directly, iterated by a bare list
  iterator with no clause access and no index arithmetic; the matching
  cref is only fetched (by position) for the rare entry that actually
  assigns or conflicts.
* **Literals as ints end-to-end** — internal literal ``v*2`` is the
  positive, ``v*2 + 1`` the negated occurrence of variable ``v``.
  ``assign`` is indexed *per literal* (``2 * nv`` slots): a literal's
  truth value is the single load ``assign[lit]`` (``1`` true, ``0``
  false, ``-1`` unassigned; ``assign[lit ^ 1]`` always holds the
  complement while assigned).  One redundant store per assignment buys
  the cheapest possible test in the BCP loop, where each literal is
  tested many times but assigned once.
* **Indexed VSIDS heap** — a binary max-heap of variables keyed by
  activity with a position index (MiniSat's ``order_heap``), so bumps
  are in-place sift-ups and ``pick_branch`` never wades through stale
  entries.  Assigned variables are removed lazily on pop and
  re-inserted on backtrack; activity rescales multiply every key by
  one constant and therefore never disturb the heap order.

Hot arrays are plain Python lists, not ``array('i')``: in CPython,
list indexing returns cached references while ``array`` boxes a fresh
int on every read, and this loop is exactly the place that difference
is measurable (the same observation drove PR 4's loop tightening).

The class keeps **no search policy**: decisions, restarts, budgets,
proof logging and the reduce/restart schedules stay in the driver, so
both cores are forced through one shared orchestration path and cannot
drift in anything but the kernel math this module defines.
"""

from __future__ import annotations

__all__ = ["PurePythonCore"]

_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100


class PurePythonCore:
    """Int-packed BCP + conflict-analysis kernel (pure-Python twin)."""

    core_name = "pure"

    __slots__ = (
        "nv",
        "arena",
        "watches",
        "bin_other",
        "bin_cref",
        "assign",
        "level",
        "reason",
        "trail",
        "trail_lim",
        "qhead",
        "act",
        "var_inc",
        "var_decay",
        "cla_inc",
        "cla_decay",
        "phase",
        "save_phase",
        "seen",
        "heap",
        "hpos",
        "l_cref",
        "l_act",
        "l_lbd",
        "n_learnts",
        "props",
    )

    def __init__(
        self, var_decay: float, clause_decay: float, save_phase: int
    ) -> None:
        self.nv = 0
        self.arena: list[int] = []
        self.watches: list[list[int]] = []
        self.bin_other: list[list[int]] = []
        self.bin_cref: list[list[int]] = []
        self.assign: list[int] = []
        self.level: list[int] = []
        self.reason: list[int] = []
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.act: list[float] = []
        self.var_inc = 1.0
        self.var_decay = var_decay
        self.cla_inc = 1.0
        self.cla_decay = clause_decay
        self.phase: list[int] = []
        self.save_phase = save_phase
        self.seen: list[int] = []
        self.heap: list[int] = []
        self.hpos: list[int] = []
        self.l_cref: list[int] = []
        self.l_act: list[float] = []
        self.l_lbd: list[int] = []
        self.n_learnts = 0
        self.props = 0

    # ----------------------------------------------------------- variables
    def add_var(self) -> None:
        var = self.nv
        self.nv = var + 1
        self.watches.append([])
        self.watches.append([])
        self.bin_other.append([])
        self.bin_other.append([])
        self.bin_cref.append([])
        self.bin_cref.append([])
        self.assign.append(-1)
        self.assign.append(-1)
        self.level.append(0)
        self.reason.append(-1)
        self.act.append(0.0)
        self.phase.append(0)
        self.seen.append(0)
        # Activity 0.0 can never exceed an ancestor's key, so appending
        # at the bottom keeps the heap property without a sift.
        self.hpos.append(len(self.heap))
        self.heap.append(var)

    def num_vars(self) -> int:
        return self.nv

    # -------------------------------------------------------------- values
    def value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned (for an internal literal)."""
        return self.assign[lit]

    def var_value(self, var: int) -> int:
        return self.assign[var << 1]

    def phase_of(self, var: int) -> int:
        return self.phase[var]

    def decision_level(self) -> int:
        return len(self.trail_lim)

    def propagation_count(self) -> int:
        return self.props

    def num_learnts(self) -> int:
        return self.n_learnts

    def model(self) -> list[bool]:
        assign = self.assign
        return [assign[var << 1] == 1 for var in range(self.nv)]

    def decay(self) -> None:
        self.var_inc /= self.var_decay
        self.cla_inc /= self.cla_decay

    # ----------------------------------------------------------- VSIDS heap
    def _heap_up(self, var: int) -> None:
        """Restore the heap property after ``act[var]`` increased.

        The key is the total order (activity desc, var asc) — no
        structural ties, so the pop sequence is a pure function of the
        activities, independent of heap history.
        """
        heap = self.heap
        hpos = self.hpos
        act = self.act
        i = hpos[var]
        a = act[var]
        while i > 0:
            parent_i = (i - 1) >> 1
            parent = heap[parent_i]
            pa = act[parent]
            if pa > a or (pa == a and parent < var):
                break
            heap[i] = parent
            hpos[parent] = i
            i = parent_i
        heap[i] = var
        hpos[var] = i

    def pick_branch(self) -> int:
        """Pop the highest-activity unassigned variable (-1 when none).

        Assigned variables encountered at the root are discarded lazily
        (they re-enter on backtrack), so an empty heap means every
        variable is assigned.
        """
        heap = self.heap
        hpos = self.hpos
        act = self.act
        assign = self.assign
        while heap:
            var = heap[0]
            last = heap.pop()
            hpos[var] = -1
            n = len(heap)
            if n:
                # Sift ``last`` down from the root under the total
                # order (activity desc, var asc).
                i = 0
                a = act[last]
                while True:
                    child_i = 2 * i + 1
                    if child_i >= n:
                        break
                    child = heap[child_i]
                    ca = act[child]
                    right_i = child_i + 1
                    if right_i < n:
                        right = heap[right_i]
                        ra = act[right]
                        if ra > ca or (ra == ca and right < child):
                            child_i = right_i
                            child = right
                            ca = ra
                    if ca > a or (ca == a and child < last):
                        heap[i] = child
                        hpos[child] = i
                        i = child_i
                    else:
                        break
                heap[i] = last
                hpos[last] = i
            if assign[var << 1] < 0:
                return var
        return -1

    def decide_next(self) -> int:
        """Open a new decision level on the highest-activity unassigned
        variable with its saved phase; returns the decided literal, or
        -1 when every variable is assigned (a model is found)."""
        var = self.pick_branch()
        if var < 0:
            return -1
        lit = var * 2 + (1 if self.phase[var] == 0 else 0)
        self.trail_lim.append(len(self.trail))
        self.assign[lit] = 1
        self.assign[lit ^ 1] = 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = -1
        self.trail.append(lit)
        return lit

    # ------------------------------------------------------------- clauses
    def attach(self, lits, learnt: int, lbd: int) -> int:
        """Store a clause (>= 2 literals, in the given order) and watch it.

        Returns the clause reference.  Learnt clauses get the current
        clause activity increment and the supplied LBD.
        """
        arena = self.arena
        if learnt:
            lidx = len(self.l_cref)
        else:
            lidx = -1
        arena.append(lidx)
        arena.append(len(lits))
        cref = len(arena)
        arena.extend(lits)
        if learnt:
            self.l_cref.append(cref)
            self.l_act.append(self.cla_inc)
            self.l_lbd.append(lbd)
            self.n_learnts += 1
        l0 = arena[cref]
        l1 = arena[cref + 1]
        if len(lits) == 2:
            self.bin_other[l0].append(l1)
            self.bin_cref[l0].append(cref)
            self.bin_other[l1].append(l0)
            self.bin_cref[l1].append(cref)
        else:
            w0 = self.watches[l0]
            w0.append(l1)
            w0.append(cref)
            w1 = self.watches[l1]
            w1.append(l0)
            w1.append(cref)
        return cref

    def clause_lits(self, cref: int) -> list[int]:
        return self.arena[cref : cref + self.arena[cref - 1]]

    def enqueue(self, lit: int, reason_cref: int) -> bool:
        """Assign ``lit`` true with the given reason; False on conflict."""
        val = self.assign[lit]
        if val >= 0:
            return val == 1
        var = lit >> 1
        self.assign[lit] = 1
        self.assign[lit ^ 1] = 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_cref
        self.trail.append(lit)
        return True

    def new_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    # ----------------------------------------------------------------- BCP
    def propagate(self) -> int:
        """Two-watched-literal BCP; returns the conflicting cref or -1."""
        arena = self.arena
        watches = self.watches
        bin_other = self.bin_other
        bin_cref = self.bin_cref
        assign = self.assign
        level = self.level
        reason = self.reason
        trail = self.trail
        cur_level = len(self.trail_lim)
        qhead = self.qhead
        props = 0
        confl = -1
        trail_append = trail.append
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            props += 1
            fal = lit ^ 1
            # Binary implications: ``fal`` is false, each partner literal
            # is forced without touching the arena.  The single ``<= 0``
            # gate keeps the dominant already-true case to one compare.
            for other, cref in zip(bin_other[fal], bin_cref[fal]):
                if assign[other] <= 0:
                    if assign[other] < 0:
                        assign[other] = 1
                        assign[other ^ 1] = 0
                        level[other >> 1] = cur_level
                        reason[other >> 1] = cref
                        trail_append(other)
                        if arena[cref] != other:
                            arena[cref] = other
                            arena[cref + 1] = fal
                    else:
                        if arena[cref] != other:
                            arena[cref] = other
                            arena[cref + 1] = fal
                        confl = cref
                        qhead = len(trail)
                        break
            if confl >= 0:
                break
            # Long clauses: blocker check first, arena only on demand.
            wl = watches[fal]
            i = 0
            j = 0
            n = len(wl)
            while i < n:
                blocker = wl[i]
                if assign[blocker] == 1:
                    if j != i:
                        wl[j] = blocker
                        wl[j + 1] = wl[i + 1]
                    i += 2
                    j += 2
                    continue
                cref = wl[i + 1]
                i += 2
                # Ensure the falsified literal sits at position 1.
                c0 = arena[cref]
                if c0 == fal:
                    c0 = arena[cref + 1]
                    arena[cref] = c0
                    arena[cref + 1] = fal
                v0 = assign[c0]
                if v0 == 1:
                    # Satisfied by the other watcher: keep, cache it as
                    # the new blocker.
                    wl[j] = c0
                    wl[j + 1] = cref
                    j += 2
                    continue
                # Look for a replacement watch (any non-false literal).
                end = cref + arena[cref - 1]
                moved = 0
                for k in range(cref + 2, end):
                    o = arena[k]
                    if assign[o]:  # true (1) or unassigned (-1)
                        arena[cref + 1] = o
                        arena[k] = fal
                        wo = watches[o]
                        wo.append(c0)
                        wo.append(cref)
                        moved = 1
                        break
                if moved:
                    continue
                # Clause is unit or conflicting; keep watching ``fal``.
                wl[j] = c0
                wl[j + 1] = cref
                j += 2
                if v0 == 0:  # c0 false: conflict
                    while i < n:
                        wl[j] = wl[i]
                        wl[j + 1] = wl[i + 1]
                        i += 2
                        j += 2
                    confl = cref
                    qhead = len(trail)
                    break
                assign[c0] = 1
                assign[c0 ^ 1] = 0
                level[c0 >> 1] = cur_level
                reason[c0 >> 1] = cref
                trail_append(c0)
            del wl[j:]
            if confl >= 0:
                break
        self.qhead = qhead
        self.props += props
        return confl

    # ---------------------------------------------------------- backtrack
    def backtrack(self, target: int) -> None:
        """Undo to ``target`` level; unassigned variables re-enter the
        order heap (popped decisions were its only absentees)."""
        if len(self.trail_lim) <= target:
            return
        bound = self.trail_lim[target]
        trail = self.trail
        assign = self.assign
        reason = self.reason
        phase = self.phase
        save_phase = self.save_phase
        heap = self.heap
        hpos = self.hpos
        for idx in range(len(trail) - 1, bound - 1, -1):
            lit = trail[idx]
            var = lit >> 1
            if save_phase:
                # ``lit`` is the true literal: even means the variable
                # is 1, odd means 0.
                phase[var] = (lit & 1) ^ 1
            assign[lit] = -1
            assign[lit ^ 1] = -1
            reason[var] = -1
            if hpos[var] < 0:
                hpos[var] = len(heap)
                heap.append(var)
                self._heap_up(var)
        del trail[bound:]
        del self.trail_lim[target:]
        self.qhead = bound

    # ------------------------------------------------------------- analyze
    def analyze(self, confl: int):
        """First-UIP learning with recursive minimization.

        Returns ``(learnt, backjump_level, lbd)``.  Variable and clause
        activity bumps (with their rescales and heap sift-ups) happen
        in here; rescales multiply every key by one constant, so the
        order heap never needs rebuilding.
        """
        arena = self.arena
        seen = self.seen
        level = self.level
        reason = self.reason
        trail = self.trail
        act = self.act
        hpos = self.hpos
        l_act = self.l_act
        var_inc = self.var_inc
        cla_inc = self.cla_inc
        learnt = [0]  # placeholder for the asserting literal
        counter = 0
        lit = -1
        cref = confl
        index = len(trail) - 1
        cur_level = len(self.trail_lim)

        while True:
            lidx = arena[cref - 2]
            if lidx >= 0:
                la = l_act[lidx] + cla_inc
                l_act[lidx] = la
                if la > _RESCALE_LIMIT:
                    for i in range(len(l_act)):
                        l_act[i] *= _RESCALE_FACTOR
                    cla_inc *= _RESCALE_FACTOR
            # For reason clauses (every iteration after the first)
            # position 0 holds the implied literal itself; skip it.
            start = cref if lit == -1 else cref + 1
            for p in range(start, cref + arena[cref - 1]):
                q = arena[p]
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    a = act[var] + var_inc
                    act[var] = a
                    if a > _RESCALE_LIMIT:
                        for v in range(self.nv):
                            act[v] *= _RESCALE_FACTOR
                        var_inc *= _RESCALE_FACTOR
                    if hpos[var] >= 0:
                        self._heap_up(var)
                    if level[var] == cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next literal from the trail at the current level.
            while not seen[trail[index] >> 1]:
                index -= 1
            lit = trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            cref = reason[var]
            if counter == 0:
                break
        self.var_inc = var_inc
        self.cla_inc = cla_inc
        learnt[0] = lit ^ 1

        # Recursive (MiniSat ccmin=deep) minimization: drop literals
        # implied by the rest of the clause through the implication
        # graph.  ``seen`` marks are shared so walks amortize;
        # ``abstract_levels`` prunes chains that touch decision levels
        # absent from the clause.
        to_clear = learnt[1:]
        abstract_levels = 0
        for q in to_clear:
            seen[q >> 1] = 1
            abstract_levels |= 1 << (level[q >> 1] & 31)
        keep = [learnt[0]]
        for q in learnt[1:]:
            if reason[q >> 1] < 0 or not self._lit_redundant(
                q, abstract_levels, to_clear
            ):
                keep.append(q)
        for q in to_clear:
            seen[q >> 1] = 0
        seen[learnt[0] >> 1] = 0
        learnt = keep

        if len(learnt) == 1:
            bt_level = 0
        else:
            # Second-highest decision level moves to slot 1.
            max_i = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = level[learnt[1] >> 1]

        lbd = len({level[q >> 1] for q in learnt})
        return learnt, bt_level, lbd

    def _lit_redundant(
        self, lit: int, abstract_levels: int, to_clear: list[int]
    ) -> bool:
        """MiniSat's litRedundant over the arena: walk ``lit``'s
        implication ancestry; redundant iff the walk only meets seen
        (in-clause) variables, level-0 facts, or further implied
        variables at clause decision levels."""
        arena = self.arena
        seen = self.seen
        level = self.level
        reason = self.reason
        stack = [lit]
        stack_pop = stack.pop
        stack_append = stack.append
        clear_append = to_clear.append
        top = len(to_clear)
        while stack:
            p = stack_pop()
            cref = reason[p >> 1]
            for idx in range(cref + 1, cref + arena[cref - 1]):
                q = arena[idx]
                var = q >> 1
                if seen[var] or level[var] == 0:
                    continue
                if reason[var] < 0 or not (
                    abstract_levels >> (level[var] & 31) & 1
                ):
                    # A decision, or a level foreign to the clause: the
                    # chain fails.  Un-mark what this walk added (marks
                    # made by successful walks stay).
                    for q2 in to_clear[top:]:
                        seen[q2 >> 1] = 0
                    del to_clear[top:]
                    return False
                seen[var] = 1
                clear_append(q)
                stack_append(q)
        return True

    # ------------------------------------------------------ assumption core
    def analyze_final(self, lit: int) -> list[int]:
        """Assumption literals forcing ``lit`` false (MiniSat's
        analyzeFinal); returns internal literals, ``lit`` first."""
        out = [lit]
        if not self.trail_lim:
            return out
        arena = self.arena
        seen = self.seen
        level = self.level
        reason = self.reason
        trail = self.trail
        seen[lit >> 1] = 1
        for idx in range(len(trail) - 1, self.trail_lim[0] - 1, -1):
            trail_lit = trail[idx]
            var = trail_lit >> 1
            if not seen[var]:
                continue
            cref = reason[var]
            if cref < 0:
                out.append(trail_lit)
            else:
                for p in range(cref + 1, cref + arena[cref - 1]):
                    q = arena[p]
                    if level[q >> 1] > 0:
                        seen[q >> 1] = 1
            seen[var] = 0
        seen[lit >> 1] = 0
        return out

    # ------------------------------------------------------------ reduce DB
    def reduce_db(self) -> list[tuple[int, ...]]:
        """Drop the weaker half of the learned clauses (by LBD, then
        activity, then cref); returns the deleted clauses' literals in
        deletion order for proof logging."""
        arena = self.arena
        reason = self.reason
        assign = self.assign
        locked = set()
        for var in range(self.nv):
            if assign[var << 1] >= 0 and reason[var] >= 0:
                locked.add(reason[var])
        l_cref = self.l_cref
        l_act = self.l_act
        l_lbd = self.l_lbd
        scored = []
        for lidx in range(len(l_cref)):
            cref = l_cref[lidx]
            if cref < 0 or arena[cref - 1] <= 2 or cref in locked:
                continue
            scored.append((l_lbd[lidx], -l_act[lidx], cref, lidx))
        scored.sort()
        drop = scored[len(scored) // 2 :]
        if not drop:
            return []
        drop_idx = sorted(entry[3] for entry in drop)
        deleted: list[tuple[int, ...]] = []
        for lidx in drop_idx:
            cref = l_cref[lidx]
            lits = tuple(arena[cref : cref + arena[cref - 1]])
            self._detach(cref)
            l_cref[lidx] = -1
            self.n_learnts -= 1
            deleted.append(lits)
        return deleted

    def _detach(self, cref: int) -> None:
        arena = self.arena
        for watch_lit in (arena[cref], arena[cref + 1]):
            wl = self.watches[watch_lit]
            for i in range(1, len(wl), 2):
                if wl[i] == cref:
                    wl[i - 1] = wl[-2]
                    wl[i] = wl[-1]
                    del wl[-2:]
                    break
