"""SatELite-style CNF preprocessing: subsumption, self-subsuming
resolution and bounded variable elimination (BVE).

This complements :mod:`repro.sat.simplify` (units, pure literals,
tautologies): `simplify` only ever *forces* variables, while the passes
here rewrite the clause database.  BVE removes a variable ``v`` by
replacing the clauses containing it with all non-tautological resolvents
on ``v``, accepted only when that does not grow the clause count (NiVER's
criterion).  Eliminated variables need *model reconstruction*: a model of
the reduced formula is extended by processing eliminations in reverse,
setting ``v`` true exactly when some original clause with literal ``v``
has every other literal false.

All passes preserve equisatisfiability, and
:meth:`PreprocessResult.extend_model` turns any model of the result into a
model of the original formula — property-tested against brute force in
``tests/sat/test_preprocess.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sat.cnf import Cnf, VarPool
from repro.sat.simplify import simplify

__all__ = ["PreprocessResult", "PreprocessStats", "preprocess"]


@dataclass
class PreprocessStats:
    """Work counters for one :func:`preprocess` call."""

    subsumed: int = 0
    strengthened: int = 0
    eliminated_vars: int = 0
    forced_vars: int = 0
    rounds: int = 0


@dataclass
class PreprocessResult:
    """Outcome of :func:`preprocess`."""

    cnf: Optional[Cnf]  # None when the formula is UNSAT
    is_unsat: bool = False
    forced: dict[int, bool] = field(default_factory=dict)
    # (var, clauses-that-mentioned-var) per elimination, in order.
    eliminated: list[tuple[int, list[list[int]]]] = field(default_factory=list)
    stats: PreprocessStats = field(default_factory=PreprocessStats)

    def extend_model(self, model: Sequence[bool], num_vars: int) -> list[bool]:
        """Extend a model of ``self.cnf`` to the original variable set.

        ``model`` indexes variables as ``model[var-1]``; missing tail
        variables default to False before reconstruction overlays them.
        """
        out = list(model) + [False] * (num_vars - len(model))
        out = out[:num_vars]
        for var, val in self.forced.items():
            if var <= num_vars:
                out[var - 1] = val

        def lit_true(lit: int) -> bool:
            val = out[abs(lit) - 1]
            return val if lit > 0 else not val

        for var, clauses in reversed(self.eliminated):
            value = False
            for clause in clauses:
                if var in clause and not any(
                    lit_true(l) for l in clause if l != var
                ):
                    value = True
                    break
            out[var - 1] = value
        return out


def preprocess(
    cnf: Cnf,
    max_occurrences: int = 12,
    max_rounds: int = 4,
) -> PreprocessResult:
    """Run subsumption, strengthening and BVE to a fixed point.

    ``max_occurrences`` bounds the occurrence count of variables
    considered for elimination (SatELite's heuristic guard); growth-free
    elimination keeps the clause database from exploding either way.
    """
    stats = PreprocessStats()
    result = PreprocessResult(None, stats=stats)

    base = simplify(cnf)
    if base.is_unsat:
        result.is_unsat = True
        return result
    result.forced.update(base.forced)
    stats.forced_vars = len(result.forced)
    assert base.cnf is not None
    clauses: list[list[int]] = [sorted(set(c)) for c in base.cnf]

    for _ in range(max_rounds):
        stats.rounds += 1
        changed = False
        clauses, sub_removed, strengthened_count, conflict = _subsume_round(clauses)
        if conflict:
            result.is_unsat = True
            return result
        stats.subsumed += sub_removed
        stats.strengthened += strengthened_count
        changed |= bool(sub_removed or strengthened_count)

        # Strengthening can create units; re-run the cheap simplifier so
        # BVE sees a propagated database.
        clauses, forced, conflict = _propagate_units(clauses)
        if conflict:
            result.is_unsat = True
            return result
        for var, val in forced.items():
            if var not in result.forced:
                result.forced[var] = val
                stats.forced_vars += 1
        changed |= bool(forced)

        eliminated_now = _bve_round(
            clauses, result, stats, max_occurrences
        )
        changed |= eliminated_now
        if not changed:
            break

    out = Cnf(VarPool(start=cnf.pool.num_vars + 1))
    for clause in clauses:
        out.add(clause)
    result.cnf = out
    return result


def _propagate_units(
    clauses: list[list[int]],
) -> tuple[list[list[int]], dict[int, bool], bool]:
    """Unit propagation over a clause list; returns (clauses, forced, unsat)."""
    forced: dict[int, bool] = {}

    def value(lit: int) -> Optional[bool]:
        val = forced.get(abs(lit))
        if val is None:
            return None
        return val if lit > 0 else not val

    work = [list(c) for c in clauses]
    changed = True
    while changed:
        changed = False
        next_work: list[list[int]] = []
        for clause in work:
            live: list[int] = []
            satisfied = False
            for lit in clause:
                val = value(lit)
                if val is True:
                    satisfied = True
                    break
                if val is None:
                    live.append(lit)
            if satisfied:
                continue
            if not live:
                return [], {}, True
            if len(live) == 1:
                lit = live[0]
                forced[abs(lit)] = lit > 0
                changed = True
                continue
            next_work.append(live)
        work = next_work
    return work, forced, False


def _subsume_round(
    clauses: list[list[int]],
) -> tuple[list[list[int]], int, int, bool]:
    """One pass of subsumption + self-subsuming resolution.

    Returns (clauses, n_subsumed, n_strengthened, found_empty_clause).
    """
    subsumed = 0
    strengthened = 0
    # Sort short-first so subsumers are processed before their victims.
    work = sorted((sorted(set(c)) for c in clauses), key=len)
    sets = [set(c) for c in work]
    alive = [True] * len(work)

    occurrences: dict[int, list[int]] = {}
    for idx, clause in enumerate(work):
        for lit in clause:
            occurrences.setdefault(lit, []).append(idx)

    for i, clause in enumerate(work):
        if not alive[i]:
            continue
        # Candidate victims must share the clause's rarest literal, which
        # keeps the scan near-linear on benchmark-sized formulas.
        rarest = min(clause, key=lambda l: len(occurrences.get(l, ())))
        # Plain subsumption: clause ⊆ victim.
        for j in occurrences.get(rarest, []):
            if j == i or not alive[j]:
                continue
            if len(work[j]) >= len(clause) and sets[i] <= sets[j]:
                alive[j] = False
                subsumed += 1
        # Self-subsuming resolution: for each literal l in clause, victims
        # containing -l and all other literals of clause lose -l.
        for lit in clause:
            rest = sets[i] - {lit}
            for j in occurrences.get(-lit, []):
                if not alive[j] or j == i:
                    continue
                # Occurrence lists go stale after strengthening: re-check
                # that the victim still contains -lit.
                if -lit in sets[j] and len(work[j]) >= len(clause) and rest <= sets[j]:
                    sets[j].discard(-lit)
                    work[j] = sorted(sets[j])
                    strengthened += 1
                    if not work[j]:
                        return [], subsumed, strengthened, True
    out = [work[i] for i in range(len(work)) if alive[i]]
    return out, subsumed, strengthened, False


def _bve_round(
    clauses: list[list[int]],
    result: PreprocessResult,
    stats: PreprocessStats,
    max_occurrences: int,
) -> bool:
    """Growth-free bounded variable elimination, in place on ``clauses``."""
    progress = False
    while True:
        occurrences: dict[int, list[int]] = {}
        for idx, clause in enumerate(clauses):
            for lit in clause:
                occurrences.setdefault(lit, []).append(idx)
        candidates = sorted(
            {abs(l) for l in occurrences},
            key=lambda v: len(occurrences.get(v, ()))
            + len(occurrences.get(-v, ())),
        )
        eliminated_one = False
        for var in candidates:
            pos_idx = occurrences.get(var, [])
            neg_idx = occurrences.get(-var, [])
            if len(pos_idx) + len(neg_idx) > max_occurrences:
                continue
            if not pos_idx or not neg_idx:
                continue  # pure literals already handled by simplify
            resolvents: list[list[int]] = []
            within_budget = True
            for pi in pos_idx:
                for ni in neg_idx:
                    resolvent = _resolve(clauses[pi], clauses[ni], var)
                    if resolvent is None:
                        continue  # tautological resolvent: drop
                    if not resolvent:
                        result.is_unsat = True
                        return progress
                    resolvents.append(resolvent)
                    # NiVER acceptance: elimination must not grow the
                    # clause database.
                    if len(resolvents) > len(pos_idx) + len(neg_idx):
                        within_budget = False
                        break
                if not within_budget:
                    break
            if not within_budget:
                continue
            # Accept: record the removed clauses for reconstruction.
            removed = [clauses[i] for i in pos_idx + neg_idx]
            result.eliminated.append((var, removed))
            stats.eliminated_vars += 1
            keep = [
                c
                for i, c in enumerate(clauses)
                if i not in set(pos_idx) | set(neg_idx)
            ]
            keep.extend(sorted(set(map(tuple, resolvents))))  # type: ignore[arg-type]
            clauses[:] = [list(c) for c in keep]
            eliminated_one = True
            progress = True
            break  # occurrence lists are stale; rebuild
        if not eliminated_one:
            return progress


def _resolve(
    pos_clause: Sequence[int], neg_clause: Sequence[int], var: int
) -> Optional[list[int]]:
    """Resolvent on ``var``; None when tautological."""
    merged = {l for l in pos_clause if l != var}
    for lit in neg_clause:
        if lit == -var:
            continue
        if -lit in merged:
            return None
        merged.add(lit)
    return sorted(merged)
