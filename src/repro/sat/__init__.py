"""SAT substrate: CNF containers, CDCL solver, encodings, proofs, I/O.

A self-contained conflict-driven clause-learning stack:

* :class:`CdclSolver` — two-watched-literal propagation, VSIDS-style
  activities, restarts, clause deletion, *assumptions* (the hook the
  incremental probe protocol rides), per-call conflict/time budgets and
  optional DRAT proof logging;
* :class:`Cnf` / :class:`VarPool` — clause containers and variable
  allocation shared by every encoder;
* cardinality encodings (pairwise/sequential/commander AMO,
  totalizers) used by the LM encodings;
* :func:`simplify` / :func:`preprocess` — bounded variable elimination
  and subsumption front-ends;
* DIMACS and DRAT I/O plus :func:`check_refutation`, an independent
  proof checker used to audit UNSAT answers in tests.
"""

from repro.sat.cnf import Cnf, VarPool
from repro.sat.solver import (
    SOLVER_PRESETS,
    CdclSolver,
    SolveRequest,
    SolveResult,
    SolverConfig,
    SolverStats,
    solve_cnf,
    solve_request,
)
from repro.sat.encodings import (
    Totalizer,
    at_least_k_totalizer,
    at_least_one,
    at_most_k_sequential,
    at_most_k_totalizer,
    at_most_one_commander,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_k,
    exactly_one,
)
from repro.sat.dimacs import read_dimacs, write_dimacs
from repro.sat.simplify import SimplifyResult, simplify
from repro.sat.preprocess import PreprocessResult, PreprocessStats, preprocess
from repro.sat.drat import (
    ProofCheck,
    check_refutation,
    check_rup,
    read_drat,
    write_drat,
)

__all__ = [
    "Cnf",
    "VarPool",
    "CdclSolver",
    "SOLVER_PRESETS",
    "SolverConfig",
    "SolveRequest",
    "SolveResult",
    "SolverStats",
    "solve_cnf",
    "solve_request",
    "at_least_one",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "at_most_one_commander",
    "at_most_k_sequential",
    "Totalizer",
    "at_most_k_totalizer",
    "at_least_k_totalizer",
    "exactly_k",
    "exactly_one",
    "read_dimacs",
    "write_dimacs",
    "SimplifyResult",
    "simplify",
    "PreprocessResult",
    "PreprocessStats",
    "preprocess",
    "ProofCheck",
    "check_refutation",
    "check_rup",
    "read_drat",
    "write_drat",
]
