"""SAT substrate: CNF containers, CDCL solver, encodings, proofs, I/O."""

from repro.sat.cnf import Cnf, VarPool
from repro.sat.solver import (
    CdclSolver,
    SolveRequest,
    SolveResult,
    SolverStats,
    solve_cnf,
    solve_request,
)
from repro.sat.encodings import (
    Totalizer,
    at_least_k_totalizer,
    at_least_one,
    at_most_k_sequential,
    at_most_k_totalizer,
    at_most_one_commander,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_k,
    exactly_one,
)
from repro.sat.dimacs import read_dimacs, write_dimacs
from repro.sat.simplify import SimplifyResult, simplify
from repro.sat.preprocess import PreprocessResult, PreprocessStats, preprocess
from repro.sat.drat import (
    ProofCheck,
    check_refutation,
    check_rup,
    read_drat,
    write_drat,
)

__all__ = [
    "Cnf",
    "VarPool",
    "CdclSolver",
    "SolveRequest",
    "SolveResult",
    "SolverStats",
    "solve_cnf",
    "solve_request",
    "at_least_one",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "at_most_one_commander",
    "at_most_k_sequential",
    "Totalizer",
    "at_most_k_totalizer",
    "at_least_k_totalizer",
    "exactly_k",
    "exactly_one",
    "read_dimacs",
    "write_dimacs",
    "SimplifyResult",
    "simplify",
    "PreprocessResult",
    "PreprocessStats",
    "preprocess",
    "ProofCheck",
    "check_refutation",
    "check_rup",
    "read_drat",
    "write_drat",
]
