"""Cardinality-constraint CNF encodings.

The LM encoding needs exactly-one constraints over the mapping variables of
every lattice cell.  The paper uses the quadratic pairwise encoding; that
is the default here, with sequential-counter and commander alternatives for
larger groups (and for the ablation bench that compares them).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import EncodingError
from repro.sat.cnf import Cnf

__all__ = [
    "at_least_one",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "at_most_one_commander",
    "at_most_k_sequential",
    "Totalizer",
    "at_most_k_totalizer",
    "at_least_k_totalizer",
    "exactly_k",
    "exactly_one",
]


def at_least_one(cnf: Cnf, lits: Sequence[int]) -> None:
    if not lits:
        raise EncodingError("at_least_one over an empty literal set is UNSAT")
    cnf.add(lits)


def at_most_one_pairwise(cnf: Cnf, lits: Sequence[int]) -> None:
    """O(n^2) binary clauses; no auxiliary variables (the paper's choice)."""
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            cnf.add([-lits[i], -lits[j]])


def at_most_one_sequential(cnf: Cnf, lits: Sequence[int]) -> None:
    """Sinz sequential-counter encoding: O(n) clauses, n-1 aux variables."""
    n = len(lits)
    if n <= 1:
        return
    regs = [cnf.pool.fresh() for _ in range(n - 1)]
    cnf.add([-lits[0], regs[0]])
    for i in range(1, n - 1):
        cnf.add([-lits[i], regs[i]])
        cnf.add([-regs[i - 1], regs[i]])
        cnf.add([-lits[i], -regs[i - 1]])
    cnf.add([-lits[n - 1], -regs[n - 2]])


def at_most_one_commander(
    cnf: Cnf, lits: Sequence[int], group_size: int = 4
) -> None:
    """Commander encoding: recursive grouping with commander variables."""
    n = len(lits)
    if n <= group_size + 1:
        at_most_one_pairwise(cnf, lits)
        return
    commanders: list[int] = []
    for start in range(0, n, group_size):
        group = list(lits[start : start + group_size])
        cmd = cnf.pool.fresh()
        commanders.append(cmd)
        # commander <-> OR(group); both directions keep the constraint exact.
        for lit in group:
            cnf.add([-lit, cmd])
        cnf.add([-cmd] + group)
        at_most_one_pairwise(cnf, group)
    at_most_one_commander(cnf, commanders, group_size)


def at_most_k_sequential(cnf: Cnf, lits: Sequence[int], k: int) -> None:
    """Sinz sequential-counter at-most-k: O(n*k) clauses and aux vars.

    Registers ``s[i][j]`` mean "at least j+1 of the first i+1 literals are
    true"; overflowing the k-th register is forbidden.
    """
    n = len(lits)
    if k < 0:
        raise EncodingError("k must be non-negative")
    if k == 0:
        for lit in lits:
            cnf.add([-lit])
        return
    if n <= k:
        return
    regs = [[cnf.pool.fresh() for _ in range(k)] for _ in range(n - 1)]
    cnf.add([-lits[0], regs[0][0]])
    for j in range(1, k):
        cnf.add([-regs[0][j]])
    for i in range(1, n - 1):
        cnf.add([-lits[i], regs[i][0]])
        cnf.add([-regs[i - 1][0], regs[i][0]])
        for j in range(1, k):
            cnf.add([-lits[i], -regs[i - 1][j - 1], regs[i][j]])
            cnf.add([-regs[i - 1][j], regs[i][j]])
        cnf.add([-lits[i], -regs[i - 1][k - 1]])
    cnf.add([-lits[n - 1], -regs[n - 2][k - 1]])


class Totalizer:
    """Bailleux-Boutaleb totalizer over a set of input literals.

    Builds a balanced tree of unary counters; ``outputs[j]`` is a literal
    meaning "at least j+1 inputs are true".  Once built, at-most-k /
    at-least-k bounds are single unit clauses, so the same tree serves
    incremental bound tightening (as in MaxSAT solvers).
    """

    def __init__(self, cnf: Cnf, lits: Sequence[int]) -> None:
        if not lits:
            raise EncodingError("totalizer over an empty literal set")
        self.cnf = cnf
        self.outputs = self._build(list(lits))

    def _build(self, lits: list[int]) -> list[int]:
        if len(lits) == 1:
            return lits
        mid = len(lits) // 2
        left = self._build(lits[:mid])
        right = self._build(lits[mid:])
        return self._merge(left, right)

    def _merge(self, left: list[int], right: list[int]) -> list[int]:
        cnf = self.cnf
        total = len(left) + len(right)
        out = [cnf.pool.fresh() for _ in range(total)]
        # out >= a+b whenever left >= a and right >= b.
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                if a + b == 0:
                    continue
                ante: list[int] = []
                if a > 0:
                    ante.append(-left[a - 1])
                if b > 0:
                    ante.append(-right[b - 1])
                cnf.add(ante + [out[a + b - 1]])
        # out <= a+b whenever left <= a and right <= b (contrapositive:
        # out[a+b] true forces left > a or right > b).
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                if a + b >= total:
                    continue
                ante = []
                if a < len(left):
                    ante.append(left[a])
                if b < len(right):
                    ante.append(right[b])
                cnf.add(ante + [-out[a + b]])
        return out

    def at_most(self, k: int) -> None:
        """Forbid k+1 or more true inputs."""
        if k < 0:
            raise EncodingError("k must be non-negative")
        if k < len(self.outputs):
            self.cnf.add([-self.outputs[k]])

    def at_least(self, k: int) -> None:
        """Require at least k true inputs."""
        if k <= 0:
            return
        if k > len(self.outputs):
            raise EncodingError(f"at_least({k}) over {len(self.outputs)} inputs")
        self.cnf.add([self.outputs[k - 1]])


def at_most_k_totalizer(cnf: Cnf, lits: Sequence[int], k: int) -> None:
    """At-most-k via a totalizer tree (one-shot convenience wrapper)."""
    if k >= len(lits):
        return
    if k == 0:
        for lit in lits:
            cnf.add([-lit])
        return
    Totalizer(cnf, lits).at_most(k)


def at_least_k_totalizer(cnf: Cnf, lits: Sequence[int], k: int) -> None:
    """At-least-k via a totalizer tree."""
    if k <= 0:
        return
    if k > len(lits):
        raise EncodingError(f"at_least_{k} over {len(lits)} literals is UNSAT")
    Totalizer(cnf, lits).at_least(k)


def exactly_k(cnf: Cnf, lits: Sequence[int], k: int) -> None:
    """Exactly-k via a shared totalizer tree."""
    if k < 0 or k > len(lits):
        raise EncodingError(f"exactly_{k} over {len(lits)} literals is UNSAT")
    if not lits:
        return
    tot = Totalizer(cnf, lits)
    tot.at_most(k)
    tot.at_least(k)


def exactly_one(cnf: Cnf, lits: Sequence[int], method: str = "pairwise") -> None:
    """Exactly-one constraint using the selected AMO encoding."""
    at_least_one(cnf, lits)
    if method == "pairwise":
        at_most_one_pairwise(cnf, lits)
    elif method == "sequential":
        at_most_one_sequential(cnf, lits)
    elif method == "commander":
        at_most_one_commander(cnf, lits)
    else:
        raise EncodingError(f"unknown exactly-one method {method!r}")
