"""Auto-detect seam for the compiled solver core.

This package is the **only** place in the tree allowed to import the
optional C extension ``repro.sat._native._kernel`` (the janalyze
``dual-source-drift`` checker enforces that).  Importing it never
fails: when the extension was not built — no compiler, a fresh
checkout, a different Python ABI — ``NativeCore`` is simply ``None``
and the solver falls back to the pure-Python twin
(:class:`repro.sat.core_pure.PurePythonCore`), which is always
importable and produces byte-identical trajectories.

Detection happens once, at import time.  The ``JANUS_NATIVE``
environment variable overrides *selection* (not detection) per solver
construction — see :func:`repro.sat.solver.resolve_core_class`:

* ``JANUS_NATIVE=0`` — never use the native core, even if built;
* ``JANUS_NATIVE=1`` — require it (constructing a solver raises
  :class:`~repro.errors.SolverError` if the extension is missing);
* unset or anything else — use the native core when available.

Build it with ``make native`` (or ``python setup.py build_ext
--inplace``) from the repository root; see README "Building the
native core".
"""

from __future__ import annotations

from typing import Optional

__all__ = ["NativeCore", "native_available", "native_import_error"]

NativeCore = None
_IMPORT_ERROR: Optional[str] = None

try:
    from repro.sat._native._kernel import NativeCore  # type: ignore[no-redef]
except ImportError as exc:  # extension not built for this interpreter
    _IMPORT_ERROR = str(exc)


def native_available() -> bool:
    """True when the compiled kernel was importable at package import."""
    return NativeCore is not None


def native_import_error() -> Optional[str]:
    """The import failure message when the kernel is unavailable."""
    return _IMPORT_ERROR
