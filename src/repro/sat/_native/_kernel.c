/* NativeCore: the compiled twin of repro.sat.core_pure.PurePythonCore.
 *
 * A hand-written CPython extension type implementing the PropagationCore
 * seam (see repro/sat/solver.py CORE_INTERFACE).  Every data structure
 * and every operation mirrors core_pure.py exactly — same flat clause
 * arena layout, same blocker watch lists, same parallel binary lists,
 * same per-literal assignment array, same indexed VSIDS heap with the
 * (activity desc, var asc) total order, same EVSIDS rescale constants —
 * so that both cores produce byte-identical SolveResult trajectories.
 * All floating-point activity math is plain IEEE-754 double arithmetic
 * in the same operation order as the Python twin (no -ffast-math; see
 * setup.py), which makes the float streams bit-equal as well.
 *
 * The janalyze `dual-source-drift` checker cross-references this file
 * against CORE_INTERFACE; the parity suite
 * (tests/sat/test_native_parity.py) pins the byte-identity down at
 * runtime.  When editing core_pure.py, edit the matching block here.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <limits.h>
#include <stdlib.h>
#include <string.h>

#define RESCALE_LIMIT 1e100
#define RESCALE_FACTOR 1e-100

/* ------------------------------------------------------------------ */
/* growable int / double vectors                                       */

typedef struct {
    int *d;
    Py_ssize_t n, cap;
} IVec;

typedef struct {
    double *d;
    Py_ssize_t n, cap;
} DVec;

static int ivec_grow(IVec *v, Py_ssize_t need)
{
    Py_ssize_t cap = v->cap ? v->cap : 8;
    while (cap < need)
        cap *= 2;
    int *nd = (int *)realloc(v->d, (size_t)cap * sizeof(int));
    if (!nd)
        return -1;
    v->d = nd;
    v->cap = cap;
    return 0;
}

static inline int ivec_push(IVec *v, int x)
{
    if (v->n == v->cap && ivec_grow(v, v->n + 1) < 0)
        return -1;
    v->d[v->n++] = x;
    return 0;
}

static int dvec_push(DVec *v, double x)
{
    if (v->n == v->cap) {
        Py_ssize_t cap = v->cap ? v->cap * 2 : 8;
        double *nd = (double *)realloc(v->d, (size_t)cap * sizeof(double));
        if (!nd)
            return -1;
        v->d = nd;
        v->cap = cap;
    }
    v->d[v->n++] = x;
    return 0;
}

/* ------------------------------------------------------------------ */
/* the NativeCore object                                               */

typedef struct {
    PyObject_HEAD
    Py_ssize_t nv;        /* variables */
    Py_ssize_t var_cap;   /* allocated per-var slots (lit arrays: 2x) */
    IVec arena;
    IVec *watches;        /* per literal: [blocker, cref, ...] */
    IVec *bin_other;      /* per literal: partner literals */
    IVec *bin_cref;       /* per literal: matching crefs */
    signed char *assign;  /* per literal: 1 true, 0 false, -1 unassigned */
    int *level;           /* per var */
    int *reason;          /* per var: cref or -1 */
    IVec trail;
    IVec trail_lim;
    Py_ssize_t qhead;
    double *act;          /* per var */
    double var_inc, var_decay, cla_inc, cla_decay;
    signed char *phase;   /* per var */
    int save_phase;
    signed char *seen;    /* per var */
    int *heap;            /* indexed max-heap of vars */
    Py_ssize_t heap_n;
    int *hpos;            /* per var: heap position or -1 */
    IVec l_cref;
    DVec l_act;
    IVec l_lbd;
    Py_ssize_t n_learnts;
    long long props;
    int *lvl_stamp;       /* per DECISION LEVEL: generation marks for LBD.
                           * Sized by lvl_cap, NOT var_cap: the driver opens
                           * empty levels for satisfied/duplicate assumptions,
                           * so levels can exceed the variable count. */
    Py_ssize_t lvl_cap;
    int lvl_gen;
    IVec min_stack;       /* scratch for litRedundant */
    IVec to_clear;        /* scratch for minimization */
} NativeCore;

static int core_grow_vars(NativeCore *self, Py_ssize_t need)
{
    Py_ssize_t cap = self->var_cap ? self->var_cap : 16;
    while (cap < need)
        cap *= 2;
    if (cap == self->var_cap)
        return 0;

#define GROW(field, type, mult)                                             \
    do {                                                                    \
        void *nd = realloc(self->field,                                     \
                           (size_t)cap * (mult) * sizeof(type));            \
        if (!nd)                                                            \
            return -1;                                                      \
        self->field = (type *)nd;                                           \
    } while (0)

    GROW(watches, IVec, 2);
    GROW(bin_other, IVec, 2);
    GROW(bin_cref, IVec, 2);
    GROW(assign, signed char, 2);
    GROW(level, int, 1);
    GROW(reason, int, 1);
    GROW(act, double, 1);
    GROW(phase, signed char, 1);
    GROW(seen, signed char, 1);
    GROW(heap, int, 1);
    GROW(hpos, int, 1);
#undef GROW
    /* zero the fresh IVec slots so attach/propagate can push blindly */
    memset(self->watches + self->var_cap * 2, 0,
           (size_t)(cap - self->var_cap) * 2 * sizeof(IVec));
    memset(self->bin_other + self->var_cap * 2, 0,
           (size_t)(cap - self->var_cap) * 2 * sizeof(IVec));
    memset(self->bin_cref + self->var_cap * 2, 0,
           (size_t)(cap - self->var_cap) * 2 * sizeof(IVec));
    self->var_cap = cap;
    return 0;
}

/* lvl_stamp is indexed by decision level, which is unrelated to the
 * variable count (empty levels from assumption handling can push it
 * arbitrarily high), so it grows on its own capacity. */
static int core_grow_levels(NativeCore *self, Py_ssize_t need)
{
    if (need <= self->lvl_cap)
        return 0;
    Py_ssize_t cap = self->lvl_cap ? self->lvl_cap : 16;
    while (cap < need)
        cap *= 2;
    int *nd = (int *)realloc(self->lvl_stamp, (size_t)cap * sizeof(int));
    if (!nd)
        return -1;
    memset(nd + self->lvl_cap, 0,
           (size_t)(cap - self->lvl_cap) * sizeof(int));
    self->lvl_stamp = nd;
    self->lvl_cap = cap;
    return 0;
}

/* ------------------------------------------------------------------ */
/* VSIDS heap: total order (activity desc, var asc), as in the twin    */

static void heap_up(NativeCore *self, int var)
{
    int *heap = self->heap;
    int *hpos = self->hpos;
    double *act = self->act;
    Py_ssize_t i = hpos[var];
    double a = act[var];
    while (i > 0) {
        Py_ssize_t parent_i = (i - 1) >> 1;
        int parent = heap[parent_i];
        double pa = act[parent];
        if (pa > a || (pa == a && parent < var))
            break;
        heap[i] = parent;
        hpos[parent] = (int)i;
        i = parent_i;
    }
    heap[i] = var;
    hpos[var] = (int)i;
}

/* Pop the highest-activity unassigned variable; -1 when none. */
static int pick_branch_impl(NativeCore *self)
{
    int *heap = self->heap;
    int *hpos = self->hpos;
    double *act = self->act;
    signed char *assign = self->assign;
    while (self->heap_n) {
        int var = heap[0];
        int last = heap[--self->heap_n];
        hpos[var] = -1;
        Py_ssize_t n = self->heap_n;
        if (n) {
            Py_ssize_t i = 0;
            double a = act[last];
            for (;;) {
                Py_ssize_t child_i = 2 * i + 1;
                if (child_i >= n)
                    break;
                int child = heap[child_i];
                double ca = act[child];
                Py_ssize_t right_i = child_i + 1;
                if (right_i < n) {
                    int right = heap[right_i];
                    double ra = act[right];
                    if (ra > ca || (ra == ca && right < child)) {
                        child_i = right_i;
                        child = right;
                        ca = ra;
                    }
                }
                if (ca > a || (ca == a && child < last)) {
                    heap[i] = child;
                    hpos[child] = (int)i;
                    i = child_i;
                } else {
                    break;
                }
            }
            heap[i] = last;
            hpos[last] = (int)i;
        }
        if (assign[var << 1] < 0)
            return var;
    }
    return -1;
}

/* ------------------------------------------------------------------ */
/* construction                                                        */

static int
NativeCore_init(NativeCore *self, PyObject *args, PyObject *kwds)
{
    double var_decay, clause_decay;
    int save_phase;
    static char *kwlist[] = {"var_decay", "clause_decay", "save_phase",
                             NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "ddi", kwlist, &var_decay,
                                     &clause_decay, &save_phase))
        return -1;
    self->var_inc = 1.0;
    self->cla_inc = 1.0;
    self->var_decay = var_decay;
    self->cla_decay = clause_decay;
    self->save_phase = save_phase;
    return 0;
}

static void
NativeCore_dealloc(NativeCore *self)
{
    free(self->arena.d);
    for (Py_ssize_t i = 0; i < self->var_cap * 2; i++) {
        free(self->watches[i].d);
        free(self->bin_other[i].d);
        free(self->bin_cref[i].d);
    }
    free(self->watches);
    free(self->bin_other);
    free(self->bin_cref);
    free(self->assign);
    free(self->level);
    free(self->reason);
    free(self->trail.d);
    free(self->trail_lim.d);
    free(self->act);
    free(self->phase);
    free(self->seen);
    free(self->heap);
    free(self->hpos);
    free(self->l_cref.d);
    free(self->l_act.d);
    free(self->l_lbd.d);
    free(self->lvl_stamp);
    free(self->min_stack.d);
    free(self->to_clear.d);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* ------------------------------------------------------------------ */
/* small accessors                                                     */

static PyObject *m_add_var(NativeCore *self, PyObject *noarg)
{
    Py_ssize_t var = self->nv;
    /* literals are packed as 2*var+lit_sign into int fields */
    if (var >= (Py_ssize_t)(INT_MAX / 2)) {
        PyErr_SetString(PyExc_OverflowError,
                        "variable count exceeds the native core's "
                        "32-bit literal range");
        return NULL;
    }
    if (core_grow_vars(self, var + 1) < 0)
        return PyErr_NoMemory();
    self->nv = var + 1;
    self->assign[var * 2] = -1;
    self->assign[var * 2 + 1] = -1;
    self->level[var] = 0;
    self->reason[var] = -1;
    self->act[var] = 0.0;
    self->phase[var] = 0;
    self->seen[var] = 0;
    /* activity 0.0 can never beat an ancestor: append, no sift */
    self->hpos[var] = (int)self->heap_n;
    self->heap[self->heap_n++] = (int)var;
    Py_RETURN_NONE;
}

static PyObject *m_num_vars(NativeCore *self, PyObject *noarg)
{
    return PyLong_FromSsize_t(self->nv);
}

static PyObject *m_value(NativeCore *self, PyObject *arg)
{
    long lit = PyLong_AsLong(arg);
    if (lit == -1 && PyErr_Occurred())
        return NULL;
    return PyLong_FromLong(self->assign[lit]);
}

static PyObject *m_var_value(NativeCore *self, PyObject *arg)
{
    long var = PyLong_AsLong(arg);
    if (var == -1 && PyErr_Occurred())
        return NULL;
    return PyLong_FromLong(self->assign[var << 1]);
}

static PyObject *m_phase_of(NativeCore *self, PyObject *arg)
{
    long var = PyLong_AsLong(arg);
    if (var == -1 && PyErr_Occurred())
        return NULL;
    return PyLong_FromLong(self->phase[var]);
}

static PyObject *m_decision_level(NativeCore *self, PyObject *noarg)
{
    return PyLong_FromSsize_t(self->trail_lim.n);
}

static PyObject *m_propagation_count(NativeCore *self, PyObject *noarg)
{
    return PyLong_FromLongLong(self->props);
}

static PyObject *m_num_learnts(NativeCore *self, PyObject *noarg)
{
    return PyLong_FromSsize_t(self->n_learnts);
}

static PyObject *m_model(NativeCore *self, PyObject *noarg)
{
    PyObject *out = PyList_New(self->nv);
    if (!out)
        return NULL;
    for (Py_ssize_t var = 0; var < self->nv; var++) {
        PyObject *b = PyBool_FromLong(self->assign[var << 1] == 1);
        PyList_SET_ITEM(out, var, b);
    }
    return out;
}

static PyObject *m_decay(NativeCore *self, PyObject *noarg)
{
    self->var_inc /= self->var_decay;
    self->cla_inc /= self->cla_decay;
    Py_RETURN_NONE;
}

static PyObject *m_pick_branch(NativeCore *self, PyObject *noarg)
{
    return PyLong_FromLong(pick_branch_impl(self));
}

static PyObject *m_decide_next(NativeCore *self, PyObject *noarg)
{
    int var = pick_branch_impl(self);
    if (var < 0)
        return PyLong_FromLong(-1);
    int lit = var * 2 + (self->phase[var] == 0 ? 1 : 0);
    if (ivec_push(&self->trail_lim, (int)self->trail.n) < 0)
        return PyErr_NoMemory();
    self->assign[lit] = 1;
    self->assign[lit ^ 1] = 0;
    self->level[var] = (int)self->trail_lim.n;
    self->reason[var] = -1;
    if (ivec_push(&self->trail, lit) < 0)
        return PyErr_NoMemory();
    return PyLong_FromLong(lit);
}

/* ------------------------------------------------------------------ */
/* clauses                                                             */

static PyObject *m_attach(NativeCore *self, PyObject *const *args,
                          Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "attach(lits, learnt, lbd)");
        return NULL;
    }
    PyObject *lits = args[0];
    long learnt = PyLong_AsLong(args[1]);
    long lbd = PyLong_AsLong(args[2]);
    if (PyErr_Occurred())
        return NULL;
    PyObject *fast = PySequence_Fast(lits, "attach: lits not a sequence");
    if (!fast)
        return NULL;
    Py_ssize_t size = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);

    IVec *arena = &self->arena;
    /* crefs and watch/bin entries hold arena offsets as int; refuse to
     * grow past that range rather than silently wrapping (the pure twin
     * has unbounded ints, so overflow here would also break parity). */
    if (size > (Py_ssize_t)INT_MAX - 2 ||
        arena->n > (Py_ssize_t)INT_MAX - 2 - size) {
        Py_DECREF(fast);
        PyErr_SetString(PyExc_OverflowError,
                        "clause arena exceeds the native core's "
                        "32-bit index range");
        return NULL;
    }
    int lidx = learnt ? (int)self->l_cref.n : -1;
    if (ivec_push(arena, lidx) < 0 || ivec_push(arena, (int)size) < 0)
        goto nomem;
    Py_ssize_t cref = arena->n;
    for (Py_ssize_t i = 0; i < size; i++) {
        long v = PyLong_AsLong(items[i]);
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return NULL;
        }
        if (ivec_push(arena, (int)v) < 0)
            goto nomem;
    }
    if (learnt) {
        if (ivec_push(&self->l_cref, (int)cref) < 0 ||
            dvec_push(&self->l_act, self->cla_inc) < 0 ||
            ivec_push(&self->l_lbd, (int)lbd) < 0)
            goto nomem;
        self->n_learnts++;
    }
    int l0 = arena->d[cref];
    int l1 = arena->d[cref + 1];
    if (size == 2) {
        if (ivec_push(&self->bin_other[l0], l1) < 0 ||
            ivec_push(&self->bin_cref[l0], (int)cref) < 0 ||
            ivec_push(&self->bin_other[l1], l0) < 0 ||
            ivec_push(&self->bin_cref[l1], (int)cref) < 0)
            goto nomem;
    } else {
        IVec *w0 = &self->watches[l0];
        IVec *w1 = &self->watches[l1];
        if (ivec_push(w0, l1) < 0 || ivec_push(w0, (int)cref) < 0 ||
            ivec_push(w1, l0) < 0 || ivec_push(w1, (int)cref) < 0)
            goto nomem;
    }
    Py_DECREF(fast);
    return PyLong_FromSsize_t(cref);
nomem:
    Py_DECREF(fast);
    return PyErr_NoMemory();
}

static PyObject *m_clause_lits(NativeCore *self, PyObject *arg)
{
    long cref = PyLong_AsLong(arg);
    if (cref == -1 && PyErr_Occurred())
        return NULL;
    int size = self->arena.d[cref - 1];
    PyObject *out = PyList_New(size);
    if (!out)
        return NULL;
    for (int i = 0; i < size; i++) {
        PyObject *v = PyLong_FromLong(self->arena.d[cref + i]);
        if (!v) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, v);
    }
    return out;
}

static PyObject *m_enqueue(NativeCore *self, PyObject *const *args,
                           Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "enqueue(lit, reason_cref)");
        return NULL;
    }
    long lit = PyLong_AsLong(args[0]);
    long reason_cref = PyLong_AsLong(args[1]);
    if (PyErr_Occurred())
        return NULL;
    signed char val = self->assign[lit];
    if (val >= 0)
        return PyBool_FromLong(val == 1);
    long var = lit >> 1;
    self->assign[lit] = 1;
    self->assign[lit ^ 1] = 0;
    self->level[var] = (int)self->trail_lim.n;
    self->reason[var] = (int)reason_cref;
    if (ivec_push(&self->trail, (int)lit) < 0)
        return PyErr_NoMemory();
    Py_RETURN_TRUE;
}

static PyObject *m_new_level(NativeCore *self, PyObject *noarg)
{
    if (ivec_push(&self->trail_lim, (int)self->trail.n) < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* BCP                                                                 */

static PyObject *m_propagate(NativeCore *self, PyObject *noarg)
{
    int *arena = self->arena.d;
    IVec *watches = self->watches;
    IVec *bin_other = self->bin_other;
    IVec *bin_cref = self->bin_cref;
    signed char *assign = self->assign;
    int *level = self->level;
    int *reason = self->reason;
    IVec *trail = &self->trail;
    int cur_level = (int)self->trail_lim.n;
    Py_ssize_t qhead = self->qhead;
    long long props = 0;
    long confl = -1;

    while (qhead < trail->n) {
        int lit = trail->d[qhead++];
        props++;
        int fal = lit ^ 1;
        /* binary implications */
        {
            IVec *bol = &bin_other[fal];
            int *bo = bol->d;
            int *bc = bin_cref[fal].d;
            Py_ssize_t nb = bol->n;
            for (Py_ssize_t bi = 0; bi < nb; bi++) {
                int other = bo[bi];
                if (assign[other] <= 0) {
                    int cref = bc[bi];
                    if (assign[other] < 0) {
                        assign[other] = 1;
                        assign[other ^ 1] = 0;
                        level[other >> 1] = cur_level;
                        reason[other >> 1] = cref;
                        if (ivec_push(trail, other) < 0)
                            return PyErr_NoMemory();
                        if (arena[cref] != other) {
                            arena[cref] = other;
                            arena[cref + 1] = fal;
                        }
                    } else {
                        if (arena[cref] != other) {
                            arena[cref] = other;
                            arena[cref + 1] = fal;
                        }
                        confl = cref;
                        qhead = trail->n;
                        break;
                    }
                }
            }
        }
        if (confl >= 0)
            break;
        /* long clauses: blocker first, arena on demand */
        {
            IVec *wlv = &watches[fal];
            int *wl = wlv->d;
            Py_ssize_t i = 0, j = 0, n = wlv->n;
            while (i < n) {
                int blocker = wl[i];
                if (assign[blocker] == 1) {
                    if (j != i) {
                        wl[j] = blocker;
                        wl[j + 1] = wl[i + 1];
                    }
                    i += 2;
                    j += 2;
                    continue;
                }
                int cref = wl[i + 1];
                i += 2;
                int c0 = arena[cref];
                if (c0 == fal) {
                    c0 = arena[cref + 1];
                    arena[cref] = c0;
                    arena[cref + 1] = fal;
                }
                signed char v0 = assign[c0];
                if (v0 == 1) {
                    wl[j] = c0;
                    wl[j + 1] = cref;
                    j += 2;
                    continue;
                }
                Py_ssize_t end = cref + arena[cref - 1];
                int moved = 0;
                for (Py_ssize_t k = cref + 2; k < end; k++) {
                    int o = arena[k];
                    if (assign[o]) { /* true (1) or unassigned (-1) */
                        arena[cref + 1] = o;
                        arena[k] = fal;
                        IVec *wo = &watches[o];
                        if (ivec_push(wo, c0) < 0 ||
                            ivec_push(wo, cref) < 0)
                            return PyErr_NoMemory();
                        moved = 1;
                        break;
                    }
                }
                if (moved)
                    continue;
                wl[j] = c0;
                wl[j + 1] = cref;
                j += 2;
                if (v0 == 0) { /* conflict */
                    while (i < n) {
                        wl[j] = wl[i];
                        wl[j + 1] = wl[i + 1];
                        i += 2;
                        j += 2;
                    }
                    confl = cref;
                    qhead = trail->n;
                    break;
                }
                assign[c0] = 1;
                assign[c0 ^ 1] = 0;
                level[c0 >> 1] = cur_level;
                reason[c0 >> 1] = cref;
                if (ivec_push(trail, c0) < 0)
                    return PyErr_NoMemory();
            }
            wlv->n = j;
        }
        if (confl >= 0)
            break;
    }
    self->qhead = qhead;
    self->props += props;
    return PyLong_FromLong(confl);
}

/* ------------------------------------------------------------------ */
/* backtrack                                                           */

static PyObject *m_backtrack(NativeCore *self, PyObject *arg)
{
    long target = PyLong_AsLong(arg);
    if (target == -1 && PyErr_Occurred())
        return NULL;
    if (self->trail_lim.n <= target)
        Py_RETURN_NONE;
    Py_ssize_t bound = self->trail_lim.d[target];
    int *trail = self->trail.d;
    signed char *assign = self->assign;
    int *reason = self->reason;
    signed char *phase = self->phase;
    int save_phase = self->save_phase;
    int *hpos = self->hpos;
    for (Py_ssize_t idx = self->trail.n - 1; idx >= bound; idx--) {
        int lit = trail[idx];
        int var = lit >> 1;
        if (save_phase)
            phase[var] = (signed char)((lit & 1) ^ 1);
        assign[lit] = -1;
        assign[lit ^ 1] = -1;
        reason[var] = -1;
        if (hpos[var] < 0) {
            hpos[var] = (int)self->heap_n;
            self->heap[self->heap_n++] = var;
            heap_up(self, var);
        }
    }
    self->trail.n = bound;
    self->trail_lim.n = target;
    self->qhead = bound;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* conflict analysis                                                   */

/* MiniSat litRedundant over the arena; mirrors the twin exactly. */
static int lit_redundant(NativeCore *self, int lit,
                         unsigned int abstract_levels)
{
    int *arena = self->arena.d;
    signed char *seen = self->seen;
    int *level = self->level;
    int *reason = self->reason;
    IVec *stack = &self->min_stack;
    IVec *to_clear = &self->to_clear;
    stack->n = 0;
    if (ivec_push(stack, lit) < 0)
        return -1;
    Py_ssize_t top = to_clear->n;
    while (stack->n) {
        int p = stack->d[--stack->n];
        int cref = reason[p >> 1];
        Py_ssize_t end = cref + arena[cref - 1];
        for (Py_ssize_t idx = cref + 1; idx < end; idx++) {
            int q = arena[idx];
            int var = q >> 1;
            if (seen[var] || level[var] == 0)
                continue;
            if (reason[var] < 0 ||
                !((abstract_levels >> (level[var] & 31)) & 1u)) {
                for (Py_ssize_t t = top; t < to_clear->n; t++)
                    seen[to_clear->d[t] >> 1] = 0;
                to_clear->n = top;
                return 0;
            }
            seen[var] = 1;
            if (ivec_push(to_clear, q) < 0 || ivec_push(stack, q) < 0)
                return -1;
        }
    }
    return 1;
}

static PyObject *m_analyze(NativeCore *self, PyObject *arg)
{
    long confl = PyLong_AsLong(arg);
    if (confl == -1 && PyErr_Occurred())
        return NULL;
    int *arena = self->arena.d;
    signed char *seen = self->seen;
    int *level = self->level;
    int *reason = self->reason;
    int *trail = self->trail.d;
    double *act = self->act;
    int *hpos = self->hpos;
    double *l_act = self->l_act.d;
    double var_inc = self->var_inc;
    double cla_inc = self->cla_inc;

    IVec learnt = {NULL, 0, 0};
    if (ivec_push(&learnt, 0) < 0) /* placeholder for asserting literal */
        return PyErr_NoMemory();
    int counter = 0;
    int lit = -1;
    long cref = confl;
    Py_ssize_t index = self->trail.n - 1;
    int cur_level = (int)self->trail_lim.n;

    for (;;) {
        int lidx = arena[cref - 2];
        if (lidx >= 0) {
            double la = l_act[lidx] + cla_inc;
            l_act[lidx] = la;
            if (la > RESCALE_LIMIT) {
                for (Py_ssize_t i = 0; i < self->l_act.n; i++)
                    l_act[i] *= RESCALE_FACTOR;
                cla_inc *= RESCALE_FACTOR;
            }
        }
        /* reason clauses carry the implied literal at position 0 */
        Py_ssize_t start = (lit == -1) ? cref : cref + 1;
        Py_ssize_t end = cref + arena[cref - 1];
        for (Py_ssize_t p = start; p < end; p++) {
            int q = arena[p];
            int var = q >> 1;
            if (!seen[var] && level[var] > 0) {
                seen[var] = 1;
                double a = act[var] + var_inc;
                act[var] = a;
                if (a > RESCALE_LIMIT) {
                    for (Py_ssize_t v = 0; v < self->nv; v++)
                        act[v] *= RESCALE_FACTOR;
                    var_inc *= RESCALE_FACTOR;
                }
                if (hpos[var] >= 0)
                    heap_up(self, var);
                if (level[var] == cur_level) {
                    counter++;
                } else {
                    if (ivec_push(&learnt, q) < 0) {
                        free(learnt.d);
                        return PyErr_NoMemory();
                    }
                }
            }
        }
        while (!seen[trail[index] >> 1])
            index--;
        lit = trail[index];
        index--;
        int var = lit >> 1;
        seen[var] = 0;
        counter--;
        cref = reason[var];
        if (counter == 0)
            break;
    }
    self->var_inc = var_inc;
    self->cla_inc = cla_inc;
    learnt.d[0] = lit ^ 1;

    /* recursive minimization (ccmin=deep), shared seen marks */
    IVec *to_clear = &self->to_clear;
    to_clear->n = 0;
    unsigned int abstract_levels = 0;
    for (Py_ssize_t i = 1; i < learnt.n; i++) {
        int q = learnt.d[i];
        if (ivec_push(to_clear, q) < 0) {
            free(learnt.d);
            return PyErr_NoMemory();
        }
        seen[q >> 1] = 1;
        abstract_levels |= 1u << (level[q >> 1] & 31);
    }
    Py_ssize_t keep_n = 1;
    for (Py_ssize_t i = 1; i < learnt.n; i++) {
        int q = learnt.d[i];
        int red = 0;
        if (reason[q >> 1] >= 0) {
            red = lit_redundant(self, q, abstract_levels);
            if (red < 0) {
                free(learnt.d);
                return PyErr_NoMemory();
            }
        }
        if (!red)
            learnt.d[keep_n++] = q;
    }
    for (Py_ssize_t t = 0; t < to_clear->n; t++)
        seen[to_clear->d[t] >> 1] = 0;
    seen[learnt.d[0] >> 1] = 0;
    learnt.n = keep_n;

    int bt_level = 0;
    if (learnt.n > 1) {
        Py_ssize_t max_i = 1;
        for (Py_ssize_t i = 2; i < learnt.n; i++)
            if (level[learnt.d[i] >> 1] > level[learnt.d[max_i] >> 1])
                max_i = i;
        int tmp = learnt.d[1];
        learnt.d[1] = learnt.d[max_i];
        learnt.d[max_i] = tmp;
        bt_level = level[learnt.d[1] >> 1];
    }

    /* LBD: count distinct decision levels via generation stamps.  Any
     * level in the learnt clause is <= the current decision level. */
    if (core_grow_levels(self, (Py_ssize_t)self->trail_lim.n + 1) < 0) {
        free(learnt.d);
        return PyErr_NoMemory();
    }
    int lbd = 0;
    int gen = ++self->lvl_gen;
    for (Py_ssize_t i = 0; i < learnt.n; i++) {
        int l = level[learnt.d[i] >> 1];
        if (self->lvl_stamp[l] != gen) {
            self->lvl_stamp[l] = gen;
            lbd++;
        }
    }

    PyObject *py_learnt = PyList_New(learnt.n);
    if (!py_learnt) {
        free(learnt.d);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < learnt.n; i++) {
        PyObject *v = PyLong_FromLong(learnt.d[i]);
        if (!v) {
            Py_DECREF(py_learnt);
            free(learnt.d);
            return NULL;
        }
        PyList_SET_ITEM(py_learnt, i, v);
    }
    free(learnt.d);
    return Py_BuildValue("(Nii)", py_learnt, bt_level, lbd);
}

/* ------------------------------------------------------------------ */
/* assumption core                                                     */

static PyObject *m_analyze_final(NativeCore *self, PyObject *arg)
{
    long lit = PyLong_AsLong(arg);
    if (lit == -1 && PyErr_Occurred())
        return NULL;
    PyObject *out = PyList_New(0);
    if (!out)
        return NULL;
    PyObject *first = PyLong_FromLong(lit);
    if (!first || PyList_Append(out, first) < 0) {
        Py_XDECREF(first);
        Py_DECREF(out);
        return NULL;
    }
    Py_DECREF(first);
    if (!self->trail_lim.n)
        return out;
    int *arena = self->arena.d;
    signed char *seen = self->seen;
    int *level = self->level;
    int *reason = self->reason;
    int *trail = self->trail.d;
    seen[lit >> 1] = 1;
    for (Py_ssize_t idx = self->trail.n - 1;
         idx >= self->trail_lim.d[0]; idx--) {
        int trail_lit = trail[idx];
        int var = trail_lit >> 1;
        if (!seen[var])
            continue;
        int cref = reason[var];
        if (cref < 0) {
            PyObject *v = PyLong_FromLong(trail_lit);
            if (!v || PyList_Append(out, v) < 0) {
                Py_XDECREF(v);
                Py_DECREF(out);
                return NULL;
            }
            Py_DECREF(v);
        } else {
            Py_ssize_t end = cref + arena[cref - 1];
            for (Py_ssize_t p = cref + 1; p < end; p++) {
                int q = arena[p];
                if (level[q >> 1] > 0)
                    seen[q >> 1] = 1;
            }
        }
        seen[var] = 0;
    }
    seen[lit >> 1] = 0;
    return out;
}

/* ------------------------------------------------------------------ */
/* clause-DB reduction                                                 */

typedef struct {
    int lbd;
    double neg_act;
    int cref;
    int lidx;
} Scored;

static int scored_cmp(const void *pa, const void *pb)
{
    const Scored *a = (const Scored *)pa;
    const Scored *b = (const Scored *)pb;
    if (a->lbd != b->lbd)
        return a->lbd < b->lbd ? -1 : 1;
    if (a->neg_act != b->neg_act)
        return a->neg_act < b->neg_act ? -1 : 1;
    if (a->cref != b->cref)
        return a->cref < b->cref ? -1 : 1;
    return a->lidx < b->lidx ? -1 : (a->lidx > b->lidx ? 1 : 0);
}

static int int_cmp(const void *pa, const void *pb)
{
    int a = *(const int *)pa, b = *(const int *)pb;
    return a < b ? -1 : (a > b ? 1 : 0);
}

static void detach_clause(NativeCore *self, int cref)
{
    int *arena = self->arena.d;
    int wlits[2] = {arena[cref], arena[cref + 1]};
    for (int w = 0; w < 2; w++) {
        IVec *wl = &self->watches[wlits[w]];
        for (Py_ssize_t i = 1; i < wl->n; i += 2) {
            if (wl->d[i] == cref) {
                wl->d[i - 1] = wl->d[wl->n - 2];
                wl->d[i] = wl->d[wl->n - 1];
                wl->n -= 2;
                break;
            }
        }
    }
}

static PyObject *m_reduce_db(NativeCore *self, PyObject *noarg)
{
    int *arena = self->arena.d;
    int *reason = self->reason;
    signed char *assign = self->assign;
    Py_ssize_t n_l = self->l_cref.n;
    Scored *scored = (Scored *)malloc((size_t)(n_l ? n_l : 1)
                                      * sizeof(Scored));
    if (!scored)
        return PyErr_NoMemory();
    Py_ssize_t n_scored = 0;
    for (Py_ssize_t lidx = 0; lidx < n_l; lidx++) {
        int cref = self->l_cref.d[lidx];
        if (cref < 0 || arena[cref - 1] <= 2)
            continue;
        /* locked: the clause is some assigned variable's reason.  The
         * implied literal always sits at position 0 (enqueue and the
         * in-propagate swaps maintain that), so one direct check is
         * equivalent to the twin's reason-set membership test. */
        int p0 = arena[cref];
        if (assign[p0] >= 0 && reason[p0 >> 1] == cref)
            continue;
        scored[n_scored].lbd = self->l_lbd.d[lidx];
        scored[n_scored].neg_act = -self->l_act.d[lidx];
        scored[n_scored].cref = cref;
        scored[n_scored].lidx = (int)lidx;
        n_scored++;
    }
    qsort(scored, (size_t)n_scored, sizeof(Scored), scored_cmp);
    Py_ssize_t drop_start = n_scored / 2;
    Py_ssize_t n_drop = n_scored - drop_start;
    if (!n_drop) {
        free(scored);
        return PyList_New(0);
    }
    int *drop_idx = (int *)malloc((size_t)n_drop * sizeof(int));
    if (!drop_idx) {
        free(scored);
        return PyErr_NoMemory();
    }
    for (Py_ssize_t i = 0; i < n_drop; i++)
        drop_idx[i] = scored[drop_start + i].lidx;
    free(scored);
    qsort(drop_idx, (size_t)n_drop, sizeof(int), int_cmp);

    PyObject *deleted = PyList_New(n_drop);
    if (!deleted) {
        free(drop_idx);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n_drop; i++) {
        int lidx = drop_idx[i];
        int cref = self->l_cref.d[lidx];
        int size = arena[cref - 1];
        PyObject *lits = PyTuple_New(size);
        if (!lits) {
            Py_DECREF(deleted);
            free(drop_idx);
            return NULL;
        }
        for (int k = 0; k < size; k++) {
            PyObject *v = PyLong_FromLong(arena[cref + k]);
            if (!v) {
                Py_DECREF(lits);
                Py_DECREF(deleted);
                free(drop_idx);
                return NULL;
            }
            PyTuple_SET_ITEM(lits, k, v);
        }
        detach_clause(self, cref);
        self->l_cref.d[lidx] = -1;
        self->n_learnts--;
        PyList_SET_ITEM(deleted, i, lits);
    }
    free(drop_idx);
    return deleted;
}

/* ------------------------------------------------------------------ */

static PyMethodDef NativeCore_methods[] = {
    {"add_var", (PyCFunction)m_add_var, METH_NOARGS, NULL},
    {"num_vars", (PyCFunction)m_num_vars, METH_NOARGS, NULL},
    {"value", (PyCFunction)m_value, METH_O, NULL},
    {"var_value", (PyCFunction)m_var_value, METH_O, NULL},
    {"phase_of", (PyCFunction)m_phase_of, METH_O, NULL},
    {"decision_level", (PyCFunction)m_decision_level, METH_NOARGS, NULL},
    {"propagation_count", (PyCFunction)m_propagation_count, METH_NOARGS,
     NULL},
    {"num_learnts", (PyCFunction)m_num_learnts, METH_NOARGS, NULL},
    {"model", (PyCFunction)m_model, METH_NOARGS, NULL},
    {"pick_branch", (PyCFunction)m_pick_branch, METH_NOARGS, NULL},
    {"decide_next", (PyCFunction)m_decide_next, METH_NOARGS, NULL},
    {"decay", (PyCFunction)m_decay, METH_NOARGS, NULL},
    {"attach", (PyCFunction)m_attach, METH_FASTCALL, NULL},
    {"clause_lits", (PyCFunction)m_clause_lits, METH_O, NULL},
    {"enqueue", (PyCFunction)m_enqueue, METH_FASTCALL, NULL},
    {"new_level", (PyCFunction)m_new_level, METH_NOARGS, NULL},
    {"propagate", (PyCFunction)m_propagate, METH_NOARGS, NULL},
    {"backtrack", (PyCFunction)m_backtrack, METH_O, NULL},
    {"analyze", (PyCFunction)m_analyze, METH_O, NULL},
    {"analyze_final", (PyCFunction)m_analyze_final, METH_O, NULL},
    {"reduce_db", (PyCFunction)m_reduce_db, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject NativeCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sat._native._kernel.NativeCore",
    .tp_basicsize = sizeof(NativeCore),
    .tp_dealloc = (destructor)NativeCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled PropagationCore twin (see repro.sat.core_pure).",
    .tp_methods = NativeCore_methods,
    .tp_init = (initproc)NativeCore_init,
    .tp_new = PyType_GenericNew,
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sat._native._kernel",
    .m_doc = "Native BCP + conflict-analysis kernel for the CDCL solver.",
    .m_size = -1,
};

PyMODINIT_FUNC PyInit__kernel(void)
{
    if (PyType_Ready(&NativeCoreType) < 0)
        return NULL;
    /* class attribute used by the driver for SolverStats.core */
    PyObject *name = PyUnicode_FromString("native");
    if (!name)
        return NULL;
    if (PyDict_SetItemString(NativeCoreType.tp_dict, "core_name", name) <
        0) {
        Py_DECREF(name);
        return NULL;
    }
    Py_DECREF(name);
    PyObject *m = PyModule_Create(&kernel_module);
    if (!m)
        return NULL;
    Py_INCREF(&NativeCoreType);
    if (PyModule_AddObject(m, "NativeCore", (PyObject *)&NativeCoreType) <
        0) {
        Py_DECREF(&NativeCoreType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
