"""DIMACS CNF import/export.

Lets the LM encodings produced here be cross-checked with any external SAT
solver, and lets external CNFs exercise :class:`repro.sat.CdclSolver`.
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from repro.errors import ParseError
from repro.sat.cnf import Cnf, VarPool

__all__ = ["read_dimacs", "write_dimacs"]


def read_dimacs(source: Union[str, TextIO]) -> Cnf:
    """Parse DIMACS CNF text (string or open file)."""
    if isinstance(source, str):
        source = io.StringIO(source)
    declared_vars = declared_clauses = None
    clauses: list[list[int]] = []
    pending: list[int] = []
    for raw in source:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ParseError(f"bad problem line {line!r}")
            declared_vars, declared_clauses = int(parts[2]), int(parts[3])
            continue
        if line.startswith("%"):
            break
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(pending)
                pending = []
            else:
                pending.append(lit)
    if pending:
        clauses.append(pending)
    if declared_vars is None:
        raise ParseError("missing problem line")
    max_var = max((abs(l) for c in clauses for l in c), default=0)
    pool = VarPool()
    for _ in range(max(declared_vars, max_var)):
        pool.fresh()
    cnf = Cnf(pool)
    for clause in clauses:
        cnf.add(clause)
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Tolerated: many generators emit an approximate count.  The parse
        # is still exact.
        pass
    return cnf


def write_dimacs(cnf: Cnf, comment: str = "") -> str:
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"c {row}")
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"
