"""DIMACS CNF import/export.

Lets the LM encodings produced here be cross-checked with any external SAT
solver, and lets external CNFs exercise :class:`repro.sat.CdclSolver`.
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from repro.errors import ParseError
from repro.sat.cnf import Cnf, VarPool

__all__ = ["read_dimacs", "write_dimacs"]

# Declared variable counts beyond this are junk input, not real formulas;
# refusing them keeps malformed headers from reserving huge id ranges.
_MAX_DECLARED_VARS = 100_000_000


def _parse_int(token: str, line: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ParseError(f"non-integer token {token!r} in {line!r}") from None


def read_dimacs(source: Union[str, TextIO]) -> Cnf:
    """Parse DIMACS CNF text (string or open file)."""
    if isinstance(source, str):
        source = io.StringIO(source)
    declared_vars = declared_clauses = None
    clauses: list[list[int]] = []
    pending: list[int] = []
    for raw in source:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ParseError(f"bad problem line {line!r}")
            declared_vars = _parse_int(parts[2], line)
            declared_clauses = _parse_int(parts[3], line)
            if declared_vars < 0 or declared_clauses < 0:
                raise ParseError(f"negative size in problem line {line!r}")
            if declared_vars > _MAX_DECLARED_VARS:
                raise ParseError(
                    f"declared variable count {declared_vars} exceeds the "
                    f"{_MAX_DECLARED_VARS} limit"
                )
            continue
        if line.startswith("%"):
            break
        for tok in line.split():
            lit = _parse_int(tok, line)
            if lit == 0:
                clauses.append(pending)
                pending = []
            else:
                if abs(lit) > _MAX_DECLARED_VARS:
                    # Same DoS guard as the header: a single junk literal
                    # must not reserve a billion-variable id range.
                    raise ParseError(
                        f"literal {lit} exceeds the {_MAX_DECLARED_VARS} "
                        "variable limit"
                    )
                pending.append(lit)
    if pending:
        clauses.append(pending)
    if declared_vars is None:
        raise ParseError("missing problem line")
    max_var = max((abs(l) for c in clauses for l in c), default=0)
    # Reserve the id range directly rather than looping ``fresh()``: a junk
    # header declaring millions of variables must not cost millions of calls.
    pool = VarPool(start=max(declared_vars, max_var) + 1)
    cnf = Cnf(pool)
    for clause in clauses:
        cnf.add(clause)
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Tolerated: many generators emit an approximate count.  The parse
        # is still exact.
        pass
    return cnf


def write_dimacs(cnf: Cnf, comment: str = "") -> str:
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"c {row}")
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"
