"""Lightweight CNF preprocessing.

Applied by the JANUS driver before handing LM encodings to the solver:
unit propagation to a fixed point, pure-literal elimination, tautology and
duplicate-literal removal.  The simplifier returns the forced assignments
so models of the simplified formula extend to models of the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sat.cnf import Cnf, VarPool

__all__ = ["SimplifyResult", "simplify"]


@dataclass
class SimplifyResult:
    """Outcome of :func:`simplify`."""

    cnf: Optional[Cnf]  # None when the formula is UNSAT
    forced: dict[int, bool] = field(default_factory=dict)  # var -> value
    is_unsat: bool = False

    def extend_model(self, model: list[bool]) -> list[bool]:
        """Overlay forced assignments onto a model of the simplified CNF."""
        out = list(model)
        for var, val in self.forced.items():
            while len(out) < var:
                out.append(False)
            out[var - 1] = val
        return out


def simplify(cnf: Cnf, pure_literals: bool = True) -> SimplifyResult:
    """Unit propagation + optional pure-literal elimination."""
    assign: dict[int, bool] = {}
    clauses: list[list[int]] = []
    for clause in cnf.clauses:
        lits = sorted(set(clause))
        if any(-l in lits for l in lits):
            continue  # tautology
        clauses.append(lits)

    changed = True
    while changed:
        changed = False
        next_clauses: list[list[int]] = []
        for clause in clauses:
            out: list[int] = []
            satisfied = False
            for lit in clause:
                val = assign.get(abs(lit))
                if val is None:
                    out.append(lit)
                elif (lit > 0) == val:
                    satisfied = True
                    break
            if satisfied:
                changed = True
                continue
            if not out:
                return SimplifyResult(None, assign, is_unsat=True)
            if len(out) == 1:
                lit = out[0]
                prev = assign.get(abs(lit))
                if prev is not None and prev != (lit > 0):
                    return SimplifyResult(None, assign, is_unsat=True)
                assign[abs(lit)] = lit > 0
                changed = True
                continue
            if len(out) != len(clause):
                changed = True
            next_clauses.append(out)
        clauses = next_clauses

        if pure_literals and not changed:
            polarity: dict[int, set[bool]] = {}
            for clause in clauses:
                for lit in clause:
                    polarity.setdefault(abs(lit), set()).add(lit > 0)
            pure = {
                var: next(iter(pols))
                for var, pols in polarity.items()
                if len(pols) == 1 and var not in assign
            }
            if pure:
                assign.update(pure)
                changed = True

    pool = VarPool()
    for _ in range(cnf.num_vars):
        pool.fresh()
    out_cnf = Cnf(pool)
    for clause in clauses:
        out_cnf.add(clause)
    return SimplifyResult(out_cnf, assign)
