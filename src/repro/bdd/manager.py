"""ROBDD manager.

Nodes are integers indexing into the manager's node arrays.  The two
terminals are ``ZERO = 0`` and ``ONE = 1``; every other node ``u`` stores a
triple ``(level, lo, hi)`` where ``level`` is a *position in the variable
order* (0 is the root-most level) and ``lo``/``hi`` are the cofactors for
the level's variable being 0/1.  Reduction invariants:

* no node has ``lo == hi`` (redundant tests are never constructed),
* the unique table guarantees structural sharing, so two nodes are
  functionally equal iff they are the same integer.

Variables are external indices ``0 .. num_vars-1`` exactly as in
:class:`~repro.boolf.truthtable.TruthTable` (variable 0 is the least
significant minterm bit).  The manager keeps a ``var_order`` mapping level
to variable; by default it is the identity.  Reordering is performed by
rebuilding (see :mod:`repro.bdd.reorder`) — honest and entirely adequate
for the paper's at-most-11-input functions.

The :class:`BddFunction` wrapper pairs a node with its manager so that
call sites can use operator syntax (``f & g``, ``~f``) without threading
the manager everywhere.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import DimensionError
from repro.boolf.cube import Cube
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable

__all__ = ["Bdd", "BddFunction"]

ZERO = 0
ONE = 1


class Bdd:
    """A reduced ordered BDD manager over a fixed variable universe."""

    def __init__(
        self,
        num_vars: int,
        names: Optional[Sequence[str]] = None,
        var_order: Optional[Sequence[int]] = None,
    ) -> None:
        if num_vars < 0:
            raise DimensionError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.names = list(names) if names is not None else None
        if var_order is None:
            var_order = list(range(num_vars))
        if sorted(var_order) != list(range(num_vars)):
            raise DimensionError(f"var_order is not a permutation: {var_order}")
        # var_order[level] = variable tested at that level.
        self.var_order = list(var_order)
        self._level_of = [0] * num_vars
        for level, var in enumerate(self.var_order):
            self._level_of[var] = level

        # Node storage.  Terminals occupy slots 0 and 1 with a sentinel
        # level below every real level so comparisons stay simple.
        self._level = [num_vars, num_vars]
        self._lo = [0, 1]
        self._hi = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------ invariants
    @property
    def zero(self) -> int:
        return ZERO

    @property
    def one(self) -> int:
        return ONE

    def is_terminal(self, u: int) -> bool:
        return u <= 1

    def level(self, u: int) -> int:
        """Order position tested at node ``u`` (``num_vars`` for terminals)."""
        return self._level[u]

    def var_at(self, u: int) -> int:
        """External variable index tested at node ``u``."""
        if self.is_terminal(u):
            raise DimensionError("terminals test no variable")
        return self.var_order[self._level[u]]

    def lo(self, u: int) -> int:
        return self._lo[u]

    def hi(self, u: int) -> int:
        return self._hi[u]

    def level_of_var(self, var: int) -> int:
        if not 0 <= var < self.num_vars:
            raise DimensionError(f"variable {var} out of range")
        return self._level_of[var]

    def num_nodes(self) -> int:
        """Total nodes allocated in this manager (including terminals)."""
        return len(self._level)

    # --------------------------------------------------------- construction
    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Hash-consed node constructor enforcing the reduction rules."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def var(self, var: int) -> int:
        """The projection function ``x_var``."""
        return self._mk(self.level_of_var(var), ZERO, ONE)

    def nvar(self, var: int) -> int:
        """The complemented projection ``~x_var``."""
        return self._mk(self.level_of_var(var), ONE, ZERO)

    def literal(self, var: int, positive: bool) -> int:
        return self.var(var) if positive else self.nvar(var)

    # ------------------------------------------------------------------ ITE
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h`` — the universal connective."""
        # Terminal short-cuts.
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        result = self._ite_cache.get((f, g, h))
        if result is not None:
            return result
        top = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        h0, h1 = self._cofactors_at(h, top)
        result = self._mk(
            top, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        self._ite_cache[(f, g, h)] = result
        return result

    def _cofactors_at(self, u: int, level: int) -> tuple[int, int]:
        if self._level[u] == level:
            return self._lo[u], self._hi[u]
        return u, u

    # ---------------------------------------------------------- connectives
    def not_(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, ONE)

    def conjoin(self, fs: Iterable[int]) -> int:
        out = ONE
        for f in fs:
            out = self.and_(out, f)
            if out == ZERO:
                break
        return out

    def disjoin(self, fs: Iterable[int]) -> int:
        out = ZERO
        for f in fs:
            out = self.or_(out, f)
            if out == ONE:
                break
        return out

    # ------------------------------------------------------------ cofactors
    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Restrict ``x_var = value``; the universe is unchanged."""
        level = self.level_of_var(var)
        cache: dict[int, int] = {}

        def walk(u: int) -> int:
            if self._level[u] > level:
                return u
            got = cache.get(u)
            if got is not None:
                return got
            if self._level[u] == level:
                out = self._hi[u] if value else self._lo[u]
            else:
                out = self._mk(
                    self._level[u], walk(self._lo[u]), walk(self._hi[u])
                )
            cache[u] = out
            return out

        return walk(f)

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over ``variables``."""
        out = f
        for var in variables:
            out = self.or_(
                self.cofactor(out, var, False), self.cofactor(out, var, True)
            )
        return out

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification over ``variables``."""
        out = f
        for var in variables:
            out = self.and_(
                self.cofactor(out, var, False), self.cofactor(out, var, True)
            )
        return out

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        return self.ite(
            g, self.cofactor(f, var, True), self.cofactor(f, var, False)
        )

    # -------------------------------------------------------------- queries
    def evaluate(self, f: int, minterm: int) -> bool:
        u = f
        while not self.is_terminal(u):
            var = self.var_order[self._level[u]]
            u = self._hi[u] if minterm >> var & 1 else self._lo[u]
        return u == ONE

    def satcount(self, f: int) -> int:
        """Number of minterms (over the full universe) where ``f`` is 1.

        Counts root-to-ONE paths, weighting each edge by the levels it
        skips (every skipped level doubles the count).
        """
        memo: dict[int, int] = {}

        def paths(u: int) -> int:
            """Minterm count assuming ``u`` sits directly below level -1."""
            if u == ZERO:
                return 0
            if u == ONE:
                return 1
            got = memo.get(u)
            if got is not None:
                return got
            lo_cnt = paths(self._lo[u]) << (
                self._level[self._lo[u]] - self._level[u] - 1
            )
            hi_cnt = paths(self._hi[u]) << (
                self._level[self._hi[u]] - self._level[u] - 1
            )
            out = lo_cnt + hi_cnt
            memo[u] = out
            return out

        return paths(f) << self._level[f]

    def support(self, f: int) -> list[int]:
        """External variable indices ``f`` depends on, ascending."""
        seen: set[int] = set()
        variables: set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u in seen or self.is_terminal(u):
                continue
            seen.add(u)
            variables.add(self.var_order[self._level[u]])
            stack.append(self._lo[u])
            stack.append(self._hi[u])
        return sorted(variables)

    def dag_size(self, f: int) -> int:
        """Number of distinct nodes reachable from ``f`` (incl. terminals)."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if not self.is_terminal(u):
                stack.append(self._lo[u])
                stack.append(self._hi[u])
        return len(seen)

    def dag_sizes(self, roots: Sequence[int]) -> int:
        """Distinct nodes reachable from any of ``roots`` (shared counted once)."""
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if not self.is_terminal(u):
                stack.append(self._lo[u])
                stack.append(self._hi[u])
        return len(seen)

    def iter_minterms(self, f: int) -> Iterator[int]:
        """Yield every satisfying minterm of ``f`` in increasing order."""
        for minterm in range(1 << self.num_vars):
            if self.evaluate(f, minterm):
                yield minterm

    def pick_minterm(self, f: int) -> Optional[int]:
        """Some satisfying minterm, or ``None`` when ``f`` is ZERO."""
        if f == ZERO:
            return None
        minterm = 0
        u = f
        while not self.is_terminal(u):
            # Skipped levels default to 0; they are free choices.
            var = self.var_order[self._level[u]]
            if self._lo[u] != ZERO:
                u = self._lo[u]
            else:
                minterm |= 1 << var
                u = self._hi[u]
        return minterm

    # ---------------------------------------------------------- conversions
    def from_cube(self, cube: Cube) -> int:
        if cube.num_vars != self.num_vars:
            raise DimensionError("cube universe mismatch")
        return self.conjoin(
            self.literal(var, positive) for var, positive in cube.literals()
        )

    def from_sop(self, sop: Sop) -> int:
        if sop.num_vars != self.num_vars:
            raise DimensionError("sop universe mismatch")
        return self.disjoin(self.from_cube(c) for c in sop.cubes)

    def from_truthtable(self, tt: TruthTable) -> int:
        """Build bottom-up along the variable order (Shannon expansion)."""
        if tt.num_vars != self.num_vars:
            raise DimensionError("truth table universe mismatch")

        def build(level: int, table: TruthTable) -> int:
            if table.is_zero():
                return ZERO
            if table.is_one():
                return ONE
            var = self.var_order[level]
            # After earlier levels were split off, `table` still lives in
            # the full universe; restrict keeps indices aligned.
            lo = build(level + 1, table.restrict(var, False))
            hi = build(level + 1, table.restrict(var, True))
            return self._mk(level, lo, hi)

        return build(0, tt)

    def to_truthtable(self, f: int) -> TruthTable:
        import numpy as np

        values = np.zeros(1 << self.num_vars, dtype=bool)
        for minterm in self.iter_minterms(f):
            values[minterm] = True
        return TruthTable(values, self.num_vars)

    def to_sop(self, f: int) -> Sop:
        """Irredundant SOP via the Minato-Morreale procedure."""
        from repro.bdd.isop import bdd_isop

        _, cubes = bdd_isop(self, f, f)
        return Sop(cubes, self.num_vars, self.names)

    def dual(self, f: int) -> int:
        """BDD of the dual function ``f^D(x) = ~f(~x)``."""
        cache: dict[int, int] = {ZERO: ONE, ONE: ZERO}

        def walk(u: int) -> int:
            got = cache.get(u)
            if got is not None:
                return got
            # Complementing every input swaps the cofactors; complementing
            # the output dualizes the children.
            out = self._mk(self._level[u], walk(self._hi[u]), walk(self._lo[u]))
            cache[u] = out
            return out

        return walk(f)

    # -------------------------------------------------------------- wrapper
    def wrap(self, node: int) -> "BddFunction":
        return BddFunction(self, node)


class BddFunction:
    """A BDD node bound to its manager, with operator syntax."""

    __slots__ = ("mgr", "node")

    def __init__(self, mgr: Bdd, node: int) -> None:
        self.mgr = mgr
        self.node = node

    def _peer(self, other: "BddFunction") -> int:
        if other.mgr is not self.mgr:
            raise DimensionError("BddFunction managers differ")
        return other.node

    def __and__(self, other: "BddFunction") -> "BddFunction":
        return BddFunction(self.mgr, self.mgr.and_(self.node, self._peer(other)))

    def __or__(self, other: "BddFunction") -> "BddFunction":
        return BddFunction(self.mgr, self.mgr.or_(self.node, self._peer(other)))

    def __xor__(self, other: "BddFunction") -> "BddFunction":
        return BddFunction(self.mgr, self.mgr.xor(self.node, self._peer(other)))

    def __invert__(self) -> "BddFunction":
        return BddFunction(self.mgr, self.mgr.not_(self.node))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BddFunction):
            return NotImplemented
        return self.mgr is other.mgr and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.mgr), self.node))

    def is_zero(self) -> bool:
        return self.node == ZERO

    def is_one(self) -> bool:
        return self.node == ONE

    def evaluate(self, minterm: int) -> bool:
        return self.mgr.evaluate(self.node, minterm)

    def satcount(self) -> int:
        return self.mgr.satcount(self.node)

    def support(self) -> list[int]:
        return self.mgr.support(self.node)

    def dag_size(self) -> int:
        return self.mgr.dag_size(self.node)

    def to_truthtable(self) -> TruthTable:
        return self.mgr.to_truthtable(self.node)

    def to_sop(self) -> Sop:
        return self.mgr.to_sop(self.node)

    def __repr__(self) -> str:
        return (
            f"BddFunction(node={self.node}, size={self.dag_size()}, "
            f"vars={self.mgr.num_vars})"
        )
