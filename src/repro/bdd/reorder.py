"""Variable reordering for :class:`~repro.bdd.manager.Bdd`.

Reordering is implemented by *rebuilding* the functions of interest into a
fresh manager with the requested order, rather than by in-place adjacent
swaps.  For the at-most-16-input functions this library targets, a rebuild
costs a single DFS per function and is far easier to validate; the greedy
:func:`sift` search on top of it reproduces the effect of Rudell sifting
(each variable is tried at every position, keeping the best) at laptop
scale.
"""

from __future__ import annotations

from typing import Sequence

from repro.bdd.manager import Bdd, ONE, ZERO

__all__ = ["with_order", "sift"]


def with_order(
    mgr: Bdd, roots: Sequence[int], order: Sequence[int]
) -> tuple[Bdd, list[int]]:
    """Rebuild ``roots`` from ``mgr`` into a new manager using ``order``.

    Returns ``(new_mgr, new_roots)``; functions are preserved exactly
    (same truth tables, possibly very different DAG sizes).
    """
    new_mgr = Bdd(mgr.num_vars, names=mgr.names, var_order=order)
    cache: dict[int, int] = {ZERO: ZERO, ONE: ONE}

    def rebuild(u: int) -> int:
        got = cache.get(u)
        if got is not None:
            return got
        var = mgr.var_at(u)
        lo = rebuild(mgr.lo(u))
        hi = rebuild(mgr.hi(u))
        # Shannon-expand on the *new* manager; ite places the variable at
        # its new level regardless of where it sat in the old order.
        out = new_mgr.ite(new_mgr.var(var), hi, lo)
        cache[u] = out
        return out

    return new_mgr, [rebuild(r) for r in roots]


def sift(
    mgr: Bdd, roots: Sequence[int], max_rounds: int = 2
) -> tuple[Bdd, list[int]]:
    """Greedy sifting: move each variable to its best position.

    Repeats up to ``max_rounds`` passes over all variables, or stops early
    once a full pass yields no improvement.  Returns the rebuilt manager
    and roots under the best order found.
    """
    best_order = list(mgr.var_order)
    best_mgr, best_roots = with_order(mgr, roots, best_order)
    best_size = best_mgr.dag_sizes(best_roots)

    for _ in range(max_rounds):
        improved = False
        for var in range(mgr.num_vars):
            pos = best_order.index(var)
            trial_orders = []
            for new_pos in range(mgr.num_vars):
                if new_pos == pos:
                    continue
                order = list(best_order)
                order.pop(pos)
                order.insert(new_pos, var)
                trial_orders.append(order)
            for order in trial_orders:
                trial_mgr, trial_roots = with_order(best_mgr, best_roots, order)
                size = trial_mgr.dag_sizes(trial_roots)
                if size < best_size:
                    best_order = order
                    best_mgr, best_roots, best_size = trial_mgr, trial_roots, size
                    improved = True
        if not improved:
            break
    return best_mgr, best_roots
