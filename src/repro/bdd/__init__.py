"""Reduced ordered binary decision diagrams (ROBDDs).

The classic two-level-minimization literature (including the Minato-
Morreale ISOP algorithm that `repro.boolf.isop` implements over dense
tables) is formulated over BDDs.  This subpackage provides an honest ROBDD
manager sized for the paper's workloads (functions of at most ~16 inputs):

* :class:`Bdd` — manager with a unique table, hash-consed nodes, an ITE
  computed cache, Boolean connectives, quantification, composition,
  satisfying-assignment counting and conversions to/from the dense
  :class:`~repro.boolf.truthtable.TruthTable` and
  :class:`~repro.boolf.sop.Sop` representations.
* :func:`bdd_isop` — Minato-Morreale irredundant SOP extraction over a
  function interval, the BDD counterpart of
  :func:`repro.boolf.isop.isop_interval`.
* :func:`with_order` / :func:`sift` — rebuild-based variable reordering.
"""

from repro.bdd.manager import Bdd, BddFunction
from repro.bdd.isop import bdd_isop
from repro.bdd.reorder import sift, with_order

__all__ = ["Bdd", "BddFunction", "bdd_isop", "sift", "with_order"]
