"""Minato-Morreale irredundant SOP extraction over BDD intervals.

``bdd_isop(mgr, lower, upper)`` computes a cube cover ``C`` with
``lower <= C <= upper`` (as functions) such that every cube is a prime of
the interval and no cube can be dropped — the same contract as
:func:`repro.boolf.isop.isop_interval`, but computed structurally on the
BDD instead of over dense truth tables.  This is the algorithm's original
habitat (Minato, SASIMI 1992) and scales past the dense representation's
2**r wall.

The recursion at the top variable ``x`` of ``(L, U)`` splits the interval
into the x-negative part, the x-positive part and the part realizable
without mentioning ``x``:

* ``isop0`` covers ``L0 & ~U1`` — minterms that *must* carry ``~x``,
* ``isop1`` covers ``L1 & ~U0`` — minterms that *must* carry ``x``,
* the remainder ``(L0 - covered0) | (L1 - covered1)`` is covered once,
  cube-free in ``x``, against the upper bound ``U0 & U1``.
"""

from __future__ import annotations

from repro.errors import DimensionError
from repro.boolf.cube import Cube
from repro.bdd.manager import Bdd, ONE, ZERO

__all__ = ["bdd_isop"]


def bdd_isop(mgr: Bdd, lower: int, upper: int) -> tuple[int, list[Cube]]:
    """Irredundant prime cover of the interval ``[lower, upper]``.

    Returns ``(cover_node, cubes)`` where ``cover_node`` is the BDD of the
    returned cover (satisfying ``lower <= cover <= upper``) and ``cubes``
    lists the cover's products over ``mgr.num_vars`` variables.

    Raises :class:`~repro.errors.DimensionError` when ``lower`` does not
    imply ``upper`` (the interval is empty).
    """
    if mgr.implies(lower, upper) != ONE:
        raise DimensionError("empty interval: lower does not imply upper")
    cache: dict[tuple[int, int], tuple[int, list[Cube]]] = {}
    cover, cubes = _isop(mgr, lower, upper, cache)
    return cover, cubes


def _isop(
    mgr: Bdd,
    lower: int,
    upper: int,
    cache: dict[tuple[int, int], tuple[int, list[Cube]]],
) -> tuple[int, list[Cube]]:
    if lower == ZERO:
        return ZERO, []
    if upper == ONE:
        return ONE, [Cube.top(mgr.num_vars)]
    key = (lower, upper)
    got = cache.get(key)
    if got is not None:
        return got

    level = min(mgr.level(lower), mgr.level(upper))
    var = mgr.var_order[level]
    l0, l1 = _cofactors(mgr, lower, level)
    u0, u1 = _cofactors(mgr, upper, level)

    # Cubes forced to contain ~x: in the 0-half but not allowed in the
    # 1-half.
    lower0 = mgr.and_(l0, mgr.not_(u1))
    cover0, cubes0 = _isop(mgr, lower0, u0, cache)

    # Cubes forced to contain x.
    lower1 = mgr.and_(l1, mgr.not_(u0))
    cover1, cubes1 = _isop(mgr, lower1, u1, cache)

    # What remains of the onset once the forced cubes are in place; it is
    # covered by cubes independent of x.
    rest0 = mgr.and_(l0, mgr.not_(cover0))
    rest1 = mgr.and_(l1, mgr.not_(cover1))
    lower_star = mgr.or_(rest0, rest1)
    upper_star = mgr.and_(u0, u1)
    cover_star, cubes_star = _isop(mgr, lower_star, upper_star, cache)

    x = mgr.var(var)
    cover = mgr.or_(
        mgr.or_(mgr.and_(mgr.not_(x), cover0), mgr.and_(x, cover1)),
        cover_star,
    )
    cubes = (
        [_with_literal(c, var, False) for c in cubes0]
        + [_with_literal(c, var, True) for c in cubes1]
        + cubes_star
    )
    cache[key] = (cover, cubes)
    return cover, cubes


def _cofactors(mgr: Bdd, u: int, level: int) -> tuple[int, int]:
    if mgr.level(u) == level:
        return mgr.lo(u), mgr.hi(u)
    return u, u


def _with_literal(cube: Cube, var: int, positive: bool) -> Cube:
    bit = 1 << var
    if positive:
        return Cube(cube.pos | bit, cube.neg, cube.num_vars)
    return Cube(cube.pos, cube.neg | bit, cube.num_vars)
