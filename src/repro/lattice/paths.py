"""Enumeration of irredundant lattice paths.

The products of the ``m x n`` lattice function are exactly the *minimal*
sets of switches forming a 4-connected top-to-bottom path; the products of
its dual are the minimal 8-connected left-to-right paths (Altun & Riedel
2012).  A minimal connecting set is an *induced* path that touches the
start plate only at its first cell and the goal plate only at its last
cell: any repeated plate contact or chord adjacency would allow dropping
cells, contradicting minimality.

The enumerator is a DFS over (last cell, visited mask, forbidden mask)
where the forbidden mask accumulates all neighbours of the path's earlier
cells — candidate extensions adjacent to anything but the last cell would
create a chord and are pruned.  Paths are yielded as cell bitmasks.

These routines regenerate Table I of the paper (see
:mod:`repro.lattice.count`) and feed the LM encoder with lattice products.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from repro.lattice.grid import Grid

__all__ = [
    "top_bottom_paths",
    "left_right_paths8",
    "iter_top_bottom_paths",
    "iter_left_right_paths8",
    "count_top_bottom_paths",
    "count_left_right_paths8",
]


def _iter_paths(
    grid: Grid, nbr: list[int], start_mask: int, goal_mask: int
) -> Iterator[int]:
    """DFS over induced paths from ``start_mask`` cells to ``goal_mask``.

    Interior cells avoid both plate masks; a path is emitted as soon as it
    reaches a goal cell (minimality: nothing may follow a goal contact).
    """
    size = grid.size
    starts = [i for i in range(size) if start_mask >> i & 1]
    # Degenerate case: a cell on both plates is a complete one-cell path.
    for s in starts:
        bit = 1 << s
        if goal_mask & bit:
            yield bit

    for s in starts:
        sbit = 1 << s
        if goal_mask & sbit:
            continue
        # stack entries: (last_cell, visited_mask, forbidden_mask)
        # forbidden = cells that would create a chord (neighbours of
        # path[:-1]) or revisit (visited) or re-touch the start plate.
        stack = [(s, sbit, sbit | start_mask)]
        while stack:
            last, visited, forbidden = stack.pop()
            candidates = nbr[last] & ~forbidden
            goal_hits = candidates & goal_mask
            while goal_hits:
                gbit = goal_hits & -goal_hits
                goal_hits ^= gbit
                yield visited | gbit
            rest = candidates & ~goal_mask
            new_forbidden = forbidden | nbr[last]
            while rest:
                cbit = rest & -rest
                rest ^= cbit
                stack.append((cbit.bit_length() - 1, visited | cbit, new_forbidden))


def iter_top_bottom_paths(grid: Grid) -> Iterator[int]:
    """Minimal 4-connected top-to-bottom paths (lattice function products)."""
    return _iter_paths(grid, grid.nbr4, grid.top_mask, grid.bottom_mask)


def iter_left_right_paths8(grid: Grid) -> Iterator[int]:
    """Minimal 8-connected left-to-right paths (dual function products)."""
    return _iter_paths(grid, grid.nbr8, grid.left_mask, grid.right_mask)


@lru_cache(maxsize=128)
def top_bottom_paths(rows: int, cols: int) -> tuple[int, ...]:
    """Memoized tuple of products (cell bitmasks) of the lattice function."""
    return tuple(iter_top_bottom_paths(Grid(rows, cols)))


@lru_cache(maxsize=128)
def left_right_paths8(rows: int, cols: int) -> tuple[int, ...]:
    """Memoized tuple of products of the dual lattice function."""
    return tuple(iter_left_right_paths8(Grid(rows, cols)))


def count_top_bottom_paths(rows: int, cols: int) -> int:
    """Number of products in the ``rows x cols`` lattice function."""
    count = 0
    for _ in iter_top_bottom_paths(Grid(rows, cols)):
        count += 1
    return count


def count_left_right_paths8(rows: int, cols: int) -> int:
    """Number of products in the dual of the ``rows x cols`` lattice function."""
    count = 0
    for _ in iter_left_right_paths8(Grid(rows, cols)):
        count += 1
    return count
