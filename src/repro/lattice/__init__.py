"""Switching-lattice substrate: geometry, paths, functions, assignments.

The hardware model the paper synthesizes for: a grid of four-terminal
switches where a function is realized by top-to-bottom connectivity
(and its dual by left-to-right connectivity):

* :class:`Grid` and the path machinery — enumeration/counting of
  top-bottom and (8-connected) left-right paths, the basis of both the
  LM encoding and Table I;
* :func:`lattice_function` / :func:`lattice_dual_function` — evaluate
  what a switch assignment actually computes (the independent checker
  used to verify every synthesized lattice);
* :class:`LatticeAssignment` — the result form (per-cell literals or
  constants), shared by the wire schema and renderers;
* fault analysis (:func:`fault_table`, minimal test sets) and ASCII/SVG
  rendering.
"""

from repro.lattice.grid import Grid
from repro.lattice.paths import (
    count_left_right_paths8,
    count_top_bottom_paths,
    iter_left_right_paths8,
    iter_top_bottom_paths,
    left_right_paths8,
    top_bottom_paths,
)
from repro.lattice.function import (
    lattice_dual_function,
    lattice_function,
    products_to_sop,
    switch_names,
)
from repro.lattice.assignment import CONST0, CONST1, Entry, LatticeAssignment
from repro.lattice.count import (
    PAPER_TABLE1,
    TableEntry,
    count_products,
    format_table1,
    products_table,
)
from repro.lattice.render import conducting_cells, render_ascii, render_svg
from repro.lattice.faults import (
    Fault,
    FaultReport,
    detecting_vectors,
    fault_coverage,
    fault_table,
    fault_universe,
    inject,
    minimal_test_set,
)
from repro.lattice.symmetry import (
    canonical_form,
    equivalent,
    flip_horizontal,
    flip_vertical,
    orbit,
    rotate_180,
)

__all__ = [
    "Grid",
    "top_bottom_paths",
    "left_right_paths8",
    "iter_top_bottom_paths",
    "iter_left_right_paths8",
    "count_top_bottom_paths",
    "count_left_right_paths8",
    "lattice_function",
    "lattice_dual_function",
    "products_to_sop",
    "switch_names",
    "Entry",
    "LatticeAssignment",
    "CONST0",
    "CONST1",
    "TableEntry",
    "count_products",
    "products_table",
    "format_table1",
    "PAPER_TABLE1",
    "render_ascii",
    "render_svg",
    "conducting_cells",
    "flip_horizontal",
    "flip_vertical",
    "rotate_180",
    "orbit",
    "canonical_form",
    "equivalent",
    "Fault",
    "FaultReport",
    "inject",
    "fault_universe",
    "detecting_vectors",
    "fault_table",
    "minimal_test_set",
    "fault_coverage",
]
