"""Product counting for lattice functions — regenerates Table I.

Table I of the paper lists, for every ``2 <= m, n <= 8``, the number of
products of the ``m x n`` lattice function (top entry) and of its dual
(bottom entry).  :func:`products_table` recomputes the table by exhaustive
minimal-path enumeration; :data:`PAPER_TABLE1` pins the published values
so tests can assert exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lattice.paths import count_left_right_paths8, count_top_bottom_paths

__all__ = ["TableEntry", "products_table", "PAPER_TABLE1", "format_table1"]


@dataclass(frozen=True)
class TableEntry:
    rows: int
    cols: int
    products: int
    dual_products: int


#: Published Table I values: (m, n) -> (products, dual products).
PAPER_TABLE1: dict[tuple[int, int], tuple[int, int]] = {
    (2, 2): (2, 4), (2, 3): (3, 8), (2, 4): (4, 16), (2, 5): (5, 32),
    (2, 6): (6, 64), (2, 7): (7, 128), (2, 8): (8, 256),
    (3, 2): (4, 7), (3, 3): (9, 17), (3, 4): (16, 41), (3, 5): (25, 99),
    (3, 6): (36, 239), (3, 7): (49, 577), (3, 8): (64, 1393),
    (4, 2): (6, 10), (4, 3): (17, 28), (4, 4): (36, 78), (4, 5): (67, 216),
    (4, 6): (118, 600), (4, 7): (203, 1666), (4, 8): (344, 4626),
    (5, 2): (10, 13), (5, 3): (37, 41), (5, 4): (94, 139), (5, 5): (205, 453),
    (5, 6): (436, 1497), (5, 7): (957, 4981), (5, 8): (2146, 16539),
    (6, 2): (16, 16), (6, 3): (77, 56), (6, 4): (236, 250), (6, 5): (621, 1018),
    (6, 6): (1668, 4286), (6, 7): (4883, 18730), (6, 8): (14880, 81192),
    (7, 2): (26, 19), (7, 3): (163, 73), (7, 4): (602, 461), (7, 5): (1905, 2439),
    (7, 6): (6562, 13833), (7, 7): (26317, 86963), (7, 8): (110838, 539537),
    (8, 2): (42, 22), (8, 3): (343, 92), (8, 4): (1528, 872), (8, 5): (5835, 6004),
    (8, 6): (25686, 45788), (8, 7): (139231, 421182), (8, 8): (797048, 3779226),
}


def count_products(rows: int, cols: int) -> tuple[int, int]:
    """(#products of f_mxn, #products of its dual)."""
    return (
        count_top_bottom_paths(rows, cols),
        count_left_right_paths8(rows, cols),
    )


def products_table(max_m: int = 8, max_n: int = 8) -> list[TableEntry]:
    """Recompute Table I for ``2 <= m <= max_m``, ``2 <= n <= max_n``."""
    out = []
    for m in range(2, max_m + 1):
        for n in range(2, max_n + 1):
            p, d = count_products(m, n)
            out.append(TableEntry(m, n, p, d))
    return out


def format_table1(entries: list[TableEntry]) -> str:
    """Render entries in the paper's layout (products over dual products)."""
    if not entries:
        return "(empty)"
    ms = sorted({e.rows for e in entries})
    ns = sorted({e.cols for e in entries})
    by_key = {(e.rows, e.cols): e for e in entries}
    width = max(len(str(e.dual_products)) for e in entries) + 2
    header = "m/n".rjust(5) + "".join(str(n).rjust(width) for n in ns)
    lines = [header]
    for m in ms:
        top = str(m).rjust(5)
        bottom = " " * 5
        for n in ns:
            e = by_key.get((m, n))
            top += (str(e.products) if e else "-").rjust(width)
            bottom += (str(e.dual_products) if e else "-").rjust(width)
        lines.append(top)
        lines.append(bottom)
    return "\n".join(lines)
