"""Lattice functions as symbolic SOPs over switch variables.

For an ``m x n`` lattice, :func:`lattice_function` returns the Boolean
function whose inputs are the ``m*n`` switch control variables and whose
value is 1 exactly when the conducting switches contain a 4-connected
top-to-bottom path.  These explicit SOPs back the unit tests that pin the
paper's worked examples (``f_3x3`` and its 17-product dual) and the
duality theorem; the synthesis pipeline itself consumes the raw bitmask
products from :mod:`repro.lattice.paths`.
"""

from __future__ import annotations

from repro.errors import DimensionError
from repro.boolf.cube import Cube
from repro.boolf.sop import Sop
from repro.lattice.paths import left_right_paths8, top_bottom_paths

__all__ = [
    "lattice_function",
    "lattice_dual_function",
    "switch_names",
    "products_to_sop",
]

_MAX_SYMBOLIC_CELLS = 30  # 2**30 truth-table entries would be absurd anyway


def switch_names(rows: int, cols: int) -> list[str]:
    """Paper-style switch names: x1 .. x{m*n}, row-major."""
    return [f"x{i + 1}" for i in range(rows * cols)]


def products_to_sop(products: tuple[int, ...], rows: int, cols: int) -> Sop:
    """Convert path bitmasks into an SOP over the switch variables."""
    size = rows * cols
    if size > _MAX_SYMBOLIC_CELLS:
        raise DimensionError(
            f"symbolic lattice function limited to {_MAX_SYMBOLIC_CELLS} cells"
        )
    cubes = [Cube(mask, 0, size) for mask in products]
    return Sop(cubes, size, switch_names(rows, cols))


def lattice_function(rows: int, cols: int) -> Sop:
    """The lattice function ``f_{rows x cols}`` in ISOP form."""
    return products_to_sop(top_bottom_paths(rows, cols), rows, cols)


def lattice_dual_function(rows: int, cols: int) -> Sop:
    """The dual lattice function (8-connected left-right paths), ISOP form."""
    return products_to_sop(left_right_paths8(rows, cols), rows, cols)
