"""Switching-lattice geometry.

A :class:`Grid` describes an ``rows x cols`` array of four-terminal
switches.  Cell ``(r, c)`` has linear index ``r * cols + c``.  The top
plate touches every row-0 cell, the bottom plate every last-row cell; the
left plate touches every column-0 cell and the right plate every
last-column cell.  Neighbourhoods are precomputed as bitmasks, which is
what the path enumerator and the connectivity checker consume.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from repro.errors import DimensionError

__all__ = ["Grid"]


class Grid:
    """Geometry helper for an ``rows x cols`` switching lattice."""

    __slots__ = (
        "rows",
        "cols",
        "size",
        "nbr4",
        "nbr8",
        "top_mask",
        "bottom_mask",
        "left_mask",
        "right_mask",
    )

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise DimensionError(f"lattice must be at least 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.size = rows * cols
        self.nbr4 = [0] * self.size
        self.nbr8 = [0] * self.size
        for r in range(rows):
            for c in range(cols):
                i = r * cols + c
                for dr, dc, diag in (
                    (-1, 0, False),
                    (1, 0, False),
                    (0, -1, False),
                    (0, 1, False),
                    (-1, -1, True),
                    (-1, 1, True),
                    (1, -1, True),
                    (1, 1, True),
                ):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < rows and 0 <= cc < cols:
                        j = rr * cols + cc
                        self.nbr8[i] |= 1 << j
                        if not diag:
                            self.nbr4[i] |= 1 << j
        self.top_mask = sum(1 << c for c in range(cols))
        self.bottom_mask = sum(1 << ((rows - 1) * cols + c) for c in range(cols))
        self.left_mask = sum(1 << (r * cols) for r in range(rows))
        self.right_mask = sum(1 << (r * cols + cols - 1) for r in range(rows))

    # ------------------------------------------------------------- indexing
    def index(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise DimensionError(
                f"cell ({row},{col}) outside {self.rows}x{self.cols} lattice"
            )
        return row * self.cols + col

    def coords(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self.size:
            raise DimensionError(f"index {index} outside lattice")
        return divmod(index, self.cols)

    def cells(self) -> Iterator[tuple[int, int]]:
        for r in range(self.rows):
            for c in range(self.cols):
                yield r, c

    def row_cells(self, row: int) -> list[int]:
        return [row * self.cols + c for c in range(self.cols)]

    def col_cells(self, col: int) -> list[int]:
        return [r * self.cols + col for r in range(self.rows)]

    def transpose_index(self, index: int) -> int:
        r, c = divmod(index, self.cols)
        return c * self.rows + r

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return self.rows == other.rows and self.cols == other.cols

    def __hash__(self) -> int:
        return hash((self.rows, self.cols))

    def __repr__(self) -> str:
        return f"Grid({self.rows}x{self.cols})"


@lru_cache(maxsize=256)
def grid(rows: int, cols: int) -> Grid:
    """Memoized :class:`Grid` factory (grids are immutable)."""
    return Grid(rows, cols)
