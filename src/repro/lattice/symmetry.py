"""Lattice symmetries and canonical forms of assignments.

The lattice function is invariant under two geometric symmetries:

* **horizontal flip** (reverse every row) — relabels columns, preserving
  both the 4-connected top-bottom paths and the 8-connected left-right
  paths;
* **vertical flip** (reverse the row order) — swaps the top and bottom
  plates, which are interchangeable because conduction is symmetric.

Together they generate a 4-element group (identity, h, v, hv = 180°
rotation).  Transposition is *not* a symmetry of the realized top-bottom
function (it exchanges the roles of the plates and the sides), so it is
deliberately excluded from the group — it belongs to the primal/dual
story instead.

:func:`canonical_form` picks a deterministic representative of an
assignment's orbit, letting search procedures and tests deduplicate
solutions that differ only by these symmetries.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.lattice.assignment import LatticeAssignment

__all__ = [
    "flip_horizontal",
    "flip_vertical",
    "rotate_180",
    "orbit",
    "canonical_form",
    "equivalent",
]


def flip_horizontal(assignment: LatticeAssignment) -> LatticeAssignment:
    """Reverse every row (mirror across the vertical axis)."""
    entries = [
        assignment.entry(r, assignment.cols - 1 - c)
        for r in range(assignment.rows)
        for c in range(assignment.cols)
    ]
    return LatticeAssignment(
        assignment.rows,
        assignment.cols,
        entries,
        assignment.num_vars,
        assignment.names,
    )


def flip_vertical(assignment: LatticeAssignment) -> LatticeAssignment:
    """Reverse the row order (swap the top and bottom plates)."""
    entries = [
        assignment.entry(assignment.rows - 1 - r, c)
        for r in range(assignment.rows)
        for c in range(assignment.cols)
    ]
    return LatticeAssignment(
        assignment.rows,
        assignment.cols,
        entries,
        assignment.num_vars,
        assignment.names,
    )


def rotate_180(assignment: LatticeAssignment) -> LatticeAssignment:
    """Half-turn rotation = horizontal then vertical flip."""
    return flip_vertical(flip_horizontal(assignment))


_GROUP: list[Callable[[LatticeAssignment], LatticeAssignment]] = [
    lambda a: a,
    flip_horizontal,
    flip_vertical,
    rotate_180,
]


def orbit(assignment: LatticeAssignment) -> Iterator[LatticeAssignment]:
    """All images of the assignment under the symmetry group (may repeat)."""
    for op in _GROUP:
        yield op(assignment)


def _key(assignment: LatticeAssignment) -> tuple:
    return tuple(
        (entry.var if entry.var is not None else -1, entry.positive)
        for entry in assignment.entries
    )


def canonical_form(assignment: LatticeAssignment) -> LatticeAssignment:
    """The lexicographically smallest member of the orbit."""
    return min(orbit(assignment), key=_key)


def equivalent(a: LatticeAssignment, b: LatticeAssignment) -> bool:
    """True iff the assignments differ only by a lattice symmetry."""
    if (a.rows, a.cols, a.num_vars) != (b.rows, b.cols, b.num_vars):
        return False
    return canonical_form(a) == canonical_form(b)
