"""Assigned lattices and the independent connectivity checker.

A :class:`LatticeAssignment` maps every switch of an ``m x n`` lattice to a
*target literal* — a literal of the target function or a constant 0/1 —
exactly as the LM problem demands.  Its :meth:`realized_truthtable` method
evaluates the lattice the physical way: for each input vector, mark the
conducting switches and test 4-connected top-to-bottom connectivity by
flood fill.  This deliberately shares no code with the path enumerator or
the SAT encoder, so it serves as an independent referee for every solution
the library produces (bounds constructions, SAT decodes, merges).

Assignments also support the geometric surgery the bound constructions
need: horizontal stacking with isolation columns, bottom-padding with
constant-1 rows (function-preserving: a minimal top-bottom path stops at
its first bottom-plate contact, so appended all-ON rows only extend paths
straight down through constant switches), transposition, and pretty
printing in the style of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import DimensionError
from repro.boolf.cube import literal_name
from repro.boolf.truthtable import TruthTable
from repro.lattice.grid import Grid

__all__ = ["Entry", "LatticeAssignment", "CONST0", "CONST1"]


@dataclass(frozen=True)
class Entry:
    """One switch's assignment: a literal ``(var, positive)`` or a constant.

    ``var is None`` marks a constant whose value is ``positive``.
    """

    var: Optional[int]
    positive: bool

    @staticmethod
    def lit(var: int, positive: bool = True) -> "Entry":
        if var < 0:
            raise DimensionError("literal variable must be non-negative")
        return Entry(var, positive)

    @staticmethod
    def const(value: bool) -> "Entry":
        return Entry(None, bool(value))

    @property
    def is_const(self) -> bool:
        return self.var is None

    def evaluate(self, minterm: int) -> bool:
        if self.var is None:
            return self.positive
        return bool(minterm >> self.var & 1) == self.positive

    def to_string(self, names: Optional[Sequence[str]] = None) -> str:
        if self.var is None:
            return "1" if self.positive else "0"
        return literal_name(self.var, self.positive, list(names) if names else None)


CONST0 = Entry.const(False)
CONST1 = Entry.const(True)


class LatticeAssignment:
    """A fully assigned ``rows x cols`` switching lattice."""

    __slots__ = ("grid", "entries", "num_vars", "names")

    def __init__(
        self,
        rows: int,
        cols: int,
        entries: Iterable[Entry],
        num_vars: int,
        names: Optional[Sequence[str]] = None,
    ) -> None:
        self.grid = Grid(rows, cols)
        self.entries = list(entries)
        if len(self.entries) != self.grid.size:
            raise DimensionError(
                f"expected {self.grid.size} entries, got {len(self.entries)}"
            )
        for entry in self.entries:
            if entry.var is not None and entry.var >= num_vars:
                raise DimensionError(
                    f"entry references variable {entry.var} outside universe"
                )
        self.num_vars = num_vars
        self.names = list(names) if names is not None else None

    # ------------------------------------------------------------ accessors
    @property
    def rows(self) -> int:
        return self.grid.rows

    @property
    def cols(self) -> int:
        return self.grid.cols

    @property
    def size(self) -> int:
        return self.grid.size

    def entry(self, row: int, col: int) -> Entry:
        return self.entries[self.grid.index(row, col)]

    # ----------------------------------------------------------- evaluation
    def conducting_mask(self, minterm: int) -> int:
        """Bitmask of switches that are ON for the given input vector."""
        mask = 0
        for i, entry in enumerate(self.entries):
            if entry.evaluate(minterm):
                mask |= 1 << i
        return mask

    def _connected(self, conducting: int, nbr: list[int], start: int, goal: int) -> bool:
        frontier = conducting & start
        if not frontier:
            return False
        reached = frontier
        while frontier:
            if reached & goal:
                return True
            nxt = 0
            while frontier:
                bit = frontier & -frontier
                frontier ^= bit
                nxt |= nbr[bit.bit_length() - 1]
            frontier = nxt & conducting & ~reached
            reached |= frontier
        return bool(reached & goal)

    def evaluate(self, minterm: int) -> bool:
        """Top-to-bottom 4-connected conduction for one input vector."""
        conducting = self.conducting_mask(minterm)
        return self._connected(
            conducting, self.grid.nbr4, self.grid.top_mask, self.grid.bottom_mask
        )

    def evaluate_dual_side(self, minterm: int) -> bool:
        """Left-to-right 8-connected conduction for one input vector."""
        conducting = self.conducting_mask(minterm)
        return self._connected(
            conducting, self.grid.nbr8, self.grid.left_mask, self.grid.right_mask
        )

    def realized_truthtable(self) -> TruthTable:
        """The function realized between the top and bottom plates."""
        values = np.zeros(1 << self.num_vars, dtype=bool)
        for m in range(1 << self.num_vars):
            values[m] = self.evaluate(m)
        return TruthTable(values, self.num_vars)

    def realized_dual_side_truthtable(self) -> TruthTable:
        """The function realized between the left and right plates (8-conn)."""
        values = np.zeros(1 << self.num_vars, dtype=bool)
        for m in range(1 << self.num_vars):
            values[m] = self.evaluate_dual_side(m)
        return TruthTable(values, self.num_vars)

    def realizes(self, target: TruthTable) -> bool:
        """True iff the lattice realizes ``target`` exactly (all vectors)."""
        if target.num_vars != self.num_vars:
            raise DimensionError("target universe mismatch")
        return self.realized_truthtable() == target

    # ------------------------------------------------------------- surgery
    def transposed(self) -> "LatticeAssignment":
        entries = [
            self.entries[r * self.cols + c]
            for c in range(self.cols)
            for r in range(self.rows)
        ]
        return LatticeAssignment(
            self.cols, self.rows, entries, self.num_vars, self.names
        )

    def padded_bottom(self, extra_rows: int, fill: Entry = CONST1) -> "LatticeAssignment":
        """Append ``extra_rows`` constant rows below (function-preserving
        when ``fill`` is the constant 1; see module docstring)."""
        if extra_rows < 0:
            raise DimensionError("extra_rows must be non-negative")
        entries = list(self.entries) + [fill] * (extra_rows * self.cols)
        return LatticeAssignment(
            self.rows + extra_rows, self.cols, entries, self.num_vars, self.names
        )

    def trimmed(self) -> "LatticeAssignment":
        """Remove inert edge lanes: all-constant-0 first/last columns and
        all-constant-1 first/last rows.

        An all-OFF edge column carries no path; an all-ON edge row only
        extends every path by free switches.  Each removal is re-verified
        against the current realized function, so the result is guaranteed
        function-preserving even in degenerate corner cases.
        """
        current = self
        target = self.realized_truthtable()
        changed = True
        while changed and current.size > 1:
            changed = False
            for candidate in current._edge_trims():
                if candidate.realized_truthtable() == target:
                    current = candidate
                    changed = True
                    break
        return current

    def _edge_trims(self) -> list["LatticeAssignment"]:
        out = []
        rows, cols = self.rows, self.cols

        def col_is(col: int, entry: Entry) -> bool:
            return all(self.entry(r, col) == entry for r in range(rows))

        def row_is(row: int, entry: Entry) -> bool:
            return all(self.entry(row, c) == entry for c in range(cols))

        if cols > 1 and col_is(0, CONST0):
            out.append(self._drop_col(0))
        if cols > 1 and col_is(cols - 1, CONST0):
            out.append(self._drop_col(cols - 1))
        if rows > 1 and row_is(0, CONST1):
            out.append(self._drop_row(0))
        if rows > 1 and row_is(rows - 1, CONST1):
            out.append(self._drop_row(rows - 1))
        return out

    def _drop_col(self, col: int) -> "LatticeAssignment":
        entries = [
            self.entry(r, c)
            for r in range(self.rows)
            for c in range(self.cols)
            if c != col
        ]
        return LatticeAssignment(
            self.rows, self.cols - 1, entries, self.num_vars, self.names
        )

    def _drop_row(self, row: int) -> "LatticeAssignment":
        entries = [
            self.entry(r, c)
            for r in range(self.rows)
            for c in range(self.cols)
            if r != row
        ]
        return LatticeAssignment(
            self.rows - 1, self.cols, entries, self.num_vars, self.names
        )

    @staticmethod
    def hstack(
        parts: Sequence["LatticeAssignment"],
        isolation: Optional[Entry] = None,
        pad_fill: Entry = CONST1,
    ) -> "LatticeAssignment":
        """Place lattices side by side, optionally separated by a constant
        isolation column; shorter parts are padded at the bottom.

        With ``isolation = CONST0`` the realized function is the OR of the
        parts' functions: the all-OFF column blocks every 4-connected path
        from crossing between blocks.
        """
        if not parts:
            raise DimensionError("hstack needs at least one part")
        num_vars = parts[0].num_vars
        names = parts[0].names
        for part in parts:
            if part.num_vars != num_vars:
                raise DimensionError("hstack parts must share the variable universe")
        rows = max(part.rows for part in parts)
        padded = [part.padded_bottom(rows - part.rows, pad_fill) for part in parts]
        blocks: list[LatticeAssignment] = []
        for k, part in enumerate(padded):
            if k > 0 and isolation is not None:
                blocks.append(
                    LatticeAssignment(rows, 1, [isolation] * rows, num_vars, names)
                )
            blocks.append(part)
        cols = sum(b.cols for b in blocks)
        entries: list[Entry] = []
        for r in range(rows):
            for block in blocks:
                entries.extend(
                    block.entries[r * block.cols : (r + 1) * block.cols]
                )
        return LatticeAssignment(rows, cols, entries, num_vars, names)

    # -------------------------------------------------------------- dunders
    def to_text(self) -> str:
        cells = [
            [self.entry(r, c).to_string(self.names) for c in range(self.cols)]
            for r in range(self.rows)
        ]
        width = max(len(s) for row in cells for s in row)
        return "\n".join(" ".join(s.rjust(width) for s in row) for row in cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatticeAssignment):
            return NotImplemented
        return (
            self.grid == other.grid
            and self.entries == other.entries
            and self.num_vars == other.num_vars
        )

    def __repr__(self) -> str:
        return (
            f"LatticeAssignment({self.rows}x{self.cols}, num_vars={self.num_vars})"
        )
