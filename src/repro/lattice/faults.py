"""Single-switch fault analysis for assigned lattices.

The switching-lattice literature the paper builds on ([4]: Alexandrescu
et al., "Logic synthesis and testing techniques for switching
nano-crossbar arrays") treats manufacturing defects as *stuck* switches:

* **stuck-OFF** — the switch never conducts (behaves as constant 0);
* **stuck-ON** — the switch always conducts (behaves as constant 1).

Because an assigned lattice is just a grid of entries, injecting a fault
is replacing one entry with a constant; the faulty machine is itself a
:class:`~repro.lattice.assignment.LatticeAssignment`, so everything
(evaluation, rendering, checking) applies to it unchanged.

This module provides the standard test-engineering queries on top:

* :func:`inject` — the faulty lattice for one (cell, polarity) fault;
* :func:`fault_universe` — every single fault of a lattice;
* :func:`detecting_vectors` — input vectors whose output differs from
  the fault-free lattice (the fault's *test set*);
* :func:`fault_table` — detectability of every fault, separating
  *redundant* faults (undetectable — the realized function does not
  change) from testable ones;
* :func:`minimal_test_set` — a small set of vectors covering all
  testable faults (greedy set cover, optimal when the greedy bound
  collapses);
* :func:`fault_coverage` — coverage of a given vector set.

Faults at cells already assigned the matching constant are *vacuous*
(the machine is unchanged); they are excluded from the universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import DimensionError
from repro.lattice.assignment import CONST0, CONST1, LatticeAssignment

__all__ = [
    "Fault",
    "FaultReport",
    "inject",
    "fault_universe",
    "detecting_vectors",
    "fault_table",
    "minimal_test_set",
    "fault_coverage",
]

STUCK_OFF = "stuck-off"
STUCK_ON = "stuck-on"


@dataclass(frozen=True)
class Fault:
    """A single stuck switch: cell ``(row, col)`` stuck ON or OFF."""

    row: int
    col: int
    kind: str  # STUCK_OFF | STUCK_ON

    def __post_init__(self) -> None:
        if self.kind not in (STUCK_OFF, STUCK_ON):
            raise DimensionError(f"unknown fault kind {self.kind!r}")

    def __str__(self) -> str:
        return f"({self.row},{self.col}) {self.kind}"


def inject(assignment: LatticeAssignment, fault: Fault) -> LatticeAssignment:
    """The faulty lattice: the fault's cell replaced by a constant."""
    if not (0 <= fault.row < assignment.rows and 0 <= fault.col < assignment.cols):
        raise DimensionError(f"fault cell {fault} outside the lattice")
    replacement = CONST1 if fault.kind == STUCK_ON else CONST0
    entries = list(assignment.entries)
    entries[fault.row * assignment.cols + fault.col] = replacement
    return LatticeAssignment(
        assignment.rows,
        assignment.cols,
        entries,
        assignment.num_vars,
        assignment.names,
    )


def fault_universe(assignment: LatticeAssignment) -> list[Fault]:
    """All non-vacuous single faults, in row-major, OFF-before-ON order."""
    faults: list[Fault] = []
    for row in range(assignment.rows):
        for col in range(assignment.cols):
            entry = assignment.entry(row, col)
            if entry != CONST0:
                faults.append(Fault(row, col, STUCK_OFF))
            if entry != CONST1:
                faults.append(Fault(row, col, STUCK_ON))
    return faults


def detecting_vectors(
    assignment: LatticeAssignment, fault: Fault
) -> list[int]:
    """Input vectors on which the faulty lattice's output differs."""
    good = assignment.realized_truthtable()
    bad = inject(assignment, fault).realized_truthtable()
    return (good ^ bad).onset()


@dataclass
class FaultReport:
    """Full single-fault analysis of one lattice."""

    assignment: LatticeAssignment
    testable: dict[Fault, list[int]]  # fault -> its detecting vectors
    redundant: list[Fault]

    @property
    def num_faults(self) -> int:
        return len(self.testable) + len(self.redundant)

    def vectors_for(self, fault: Fault) -> list[int]:
        if fault in self.testable:
            return self.testable[fault]
        return []


def fault_table(assignment: LatticeAssignment) -> FaultReport:
    """Classify every single fault as testable or redundant."""
    testable: dict[Fault, list[int]] = {}
    redundant: list[Fault] = []
    for fault in fault_universe(assignment):
        vectors = detecting_vectors(assignment, fault)
        if vectors:
            testable[fault] = vectors
        else:
            redundant.append(fault)
    return FaultReport(assignment, testable, redundant)


def minimal_test_set(report: FaultReport) -> list[int]:
    """Greedy minimum set of input vectors detecting every testable fault.

    Greedy set cover: repeatedly pick the vector detecting the most
    still-undetected faults (ties broken by smaller vector for
    determinism).  Guaranteed to cover all testable faults.
    """
    remaining = set(report.testable)
    # vector -> set of faults it detects
    by_vector: dict[int, set[Fault]] = {}
    for fault, vectors in report.testable.items():
        for vec in vectors:
            by_vector.setdefault(vec, set()).add(fault)
    tests: list[int] = []
    while remaining:
        best = max(
            by_vector,
            key=lambda v: (len(by_vector[v] & remaining), -v),
        )
        gained = by_vector[best] & remaining
        if not gained:  # pragma: no cover - defensive; cannot happen
            raise DimensionError("greedy cover stalled")
        tests.append(best)
        remaining -= gained
    return sorted(tests)


def fault_coverage(
    report: FaultReport, vectors: Iterable[int]
) -> float:
    """Fraction of testable faults detected by the given vectors (1.0 =
    full coverage; vacuously 1.0 when there are no testable faults)."""
    vector_set = set(vectors)
    if not report.testable:
        return 1.0
    detected = sum(
        1
        for fault, det in report.testable.items()
        if vector_set & set(det)
    )
    return detected / len(report.testable)
