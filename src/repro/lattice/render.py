"""Rendering assigned lattices as framed ASCII art and SVG.

The paper's figures (Fig. 1(c)/(d), Fig. 4) draw lattices as boxed grids
between a top and a bottom plate.  :func:`render_ascii` reproduces that
style for terminals and docs; :func:`render_svg` produces a standalone
vector figure with optional highlighting of a conducting path for a given
input vector (the shaded blocks of Fig. 1(c)).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DimensionError
from repro.lattice.assignment import LatticeAssignment

__all__ = ["render_ascii", "render_svg", "conducting_cells"]


def conducting_cells(
    assignment: LatticeAssignment, minterm: int
) -> set[tuple[int, int]]:
    """Cells on some top-to-bottom conducting component for ``minterm``.

    Returns the ON cells 4-connected to the top plate whose component also
    touches the bottom plate — the cells worth shading in a figure.  Empty
    when the lattice does not conduct.
    """
    grid = assignment.grid
    on = {
        (r, c)
        for r in range(grid.rows)
        for c in range(grid.cols)
        if assignment.entry(r, c).evaluate(minterm)
    }
    # Flood components from the top row; keep components reaching bottom.
    result: set[tuple[int, int]] = set()
    seen: set[tuple[int, int]] = set()
    for start_col in range(grid.cols):
        start = (0, start_col)
        if start not in on or start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            r, c = frontier.pop()
            for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                nbr = (nr, nc)
                if nbr in on and nbr not in component:
                    component.add(nbr)
                    frontier.append(nbr)
        seen |= component
        if any(r == grid.rows - 1 for r, _ in component):
            result |= component
    return result


def render_ascii(
    assignment: LatticeAssignment,
    minterm: Optional[int] = None,
    show_plates: bool = True,
) -> str:
    """Framed grid rendering; with ``minterm`` conducting cells get ``*``.

    Example (2x3 lattice)::

        ============= top
        | a  | b' | 1 |
        | c* | 0  | d |
        ============= bottom
    """
    highlight = (
        conducting_cells(assignment, minterm) if minterm is not None else set()
    )
    cells = []
    for r in range(assignment.rows):
        row = []
        for c in range(assignment.cols):
            text = assignment.entry(r, c).to_string(assignment.names)
            if (r, c) in highlight:
                text += "*"
            row.append(text)
        cells.append(row)
    width = max(len(s) for row in cells for s in row)
    body_lines = [
        "| " + " | ".join(s.ljust(width) for s in row) + " |" for row in cells
    ]
    if not show_plates:
        return "\n".join(body_lines)
    bar = "=" * len(body_lines[0])
    return "\n".join([f"{bar} top", *body_lines, f"{bar} bottom"])


def render_svg(
    assignment: LatticeAssignment,
    minterm: Optional[int] = None,
    cell_size: int = 48,
    margin: int = 12,
    plate_height: int = 10,
) -> str:
    """Standalone SVG drawing of the lattice in the paper's figure style.

    Switches are boxes labelled with their assigned literal; the top and
    bottom plates are solid bars.  When ``minterm`` is given, cells on a
    conducting top-bottom component are shaded (Fig. 1(c) style).
    """
    if cell_size <= 0:
        raise DimensionError("cell_size must be positive")
    rows, cols = assignment.rows, assignment.cols
    width = 2 * margin + cols * cell_size
    height = 2 * margin + rows * cell_size + 2 * plate_height
    highlight = (
        conducting_cells(assignment, minterm) if minterm is not None else set()
    )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        '<style>text{font-family:monospace;dominant-baseline:central;'
        "text-anchor:middle}</style>",
        # Top plate.
        f'<rect x="{margin}" y="{margin}" width="{cols * cell_size}" '
        f'height="{plate_height}" fill="#333"/>',
    ]
    top = margin + plate_height
    for r in range(rows):
        for c in range(cols):
            x = margin + c * cell_size
            y = top + r * cell_size
            fill = "#ffd27f" if (r, c) in highlight else "#ffffff"
            label = assignment.entry(r, c).to_string(assignment.names)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell_size}" '
                f'height="{cell_size}" fill="{fill}" stroke="#333"/>'
            )
            parts.append(
                f'<text x="{x + cell_size / 2:.1f}" '
                f'y="{y + cell_size / 2:.1f}" '
                f'font-size="{cell_size // 3}">{_escape(label)}</text>'
            )
    bottom_y = top + rows * cell_size
    parts.append(
        f'<rect x="{margin}" y="{bottom_y}" width="{cols * cell_size}" '
        f'height="{plate_height}" fill="#333"/>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
